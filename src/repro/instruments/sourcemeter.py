"""A source-measure unit for connection leakage characterisation.

Reproduces the Table 2 methodology verbatim: "We used a source meter to
apply a voltage to the driving endpoint of each connection and measure
the resulting current.  We measured each connection with digital logic
endpoints in both LOW and HIGH states by applying either 0 V or 2.4 V
... We measured analog endpoints under the worst-case condition of
2.4 V."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog.connections import Connection, EDBConnectionHarness, LineState
from repro.sim import units


@dataclass(frozen=True)
class CurrentStats:
    """Min/avg/max of a set of current samples, in amperes."""

    minimum: float
    average: float
    maximum: float

    def as_nanoamps(self) -> tuple[float, float, float]:
        """``(min, avg, max)`` in nanoamps, Table 2's unit."""
        return (
            self.minimum / units.NA,
            self.average / units.NA,
            self.maximum / units.NA,
        )


class SourceMeter:
    """Applies a voltage to a connection endpoint and measures DC current."""

    HIGH_VOLTAGE = 2.4  # the maximum voltage that can arise on any line
    LOW_VOLTAGE = 0.0

    def __init__(self, samples_per_reading: int = 50) -> None:
        if samples_per_reading < 1:
            raise ValueError("need at least one sample per reading")
        self.samples_per_reading = samples_per_reading

    def measure(
        self, connection: Connection, state: LineState, voltage: float | None = None
    ) -> CurrentStats:
        """Characterise one connection in one drive state."""
        if voltage is None:
            voltage = (
                self.LOW_VOLTAGE if state is LineState.LOW else self.HIGH_VOLTAGE
            )
        samples = [
            connection.measure(voltage, state)
            for _ in range(self.samples_per_reading)
        ]
        return CurrentStats(
            minimum=min(samples),
            average=sum(samples) / len(samples),
            maximum=max(samples),
        )

    def characterise_harness(
        self, harness: EDBConnectionHarness
    ) -> dict[str, dict[LineState, CurrentStats]]:
        """The full Table 2 sweep over every connection and state."""
        out: dict[str, dict[LineState, CurrentStats]] = {}
        for name in harness.names():
            connection = harness.connection(name)
            out[name] = {
                state: self.measure(connection, state)
                for state in connection.states
            }
        return out

    @staticmethod
    def worst_case_total(
        sweep: dict[str, dict[LineState, CurrentStats]]
    ) -> float:
        """Sum of worst-case-magnitude currents across all connections."""
        total = 0.0
        for states in sweep.values():
            total += max(
                max(abs(stats.minimum), abs(stats.maximum))
                for stats in states.values()
            )
        return total
