"""A sampled-trace oscilloscope over simulation state.

Channels are probes: callables returning the live value of an analog
net (e.g. ``lambda: power.vcap``) or the state of a digital line.  The
scope samples every channel at a fixed rate while armed, using the
simulation kernel's event queue — so anything that advances simulated
time (the target executing, EDB charging, idle charging periods) gets
sampled uniformly, exactly like probing a live board.

The evaluation uses the scope for the paper's waveform figures (7, 9)
and as the independent measurement path in Table 3.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import units
from repro.sim.kernel import Event, Simulator


class Oscilloscope:
    """Multi-channel sampling scope.

    Parameters
    ----------
    sim:
        Simulation kernel.
    sample_rate:
        Samples per second per channel (default 10 kHz — ample for
        millisecond-scale charge/discharge waveforms).
    """

    def __init__(self, sim: Simulator, sample_rate: float = 10 * units.KHZ) -> None:
        if sample_rate <= 0.0:
            raise ValueError(f"sample rate must be positive (got {sample_rate})")
        self.sim = sim
        self.sample_rate = sample_rate
        self._probes: dict[str, Callable[[], float]] = {}
        self._samples: dict[str, list[tuple[float, float]]] = {}
        self._event: Event | None = None

    # -- channel setup -----------------------------------------------------
    def add_channel(self, name: str, probe: Callable[[], float]) -> None:
        """Attach a probe to a named channel."""
        if name in self._probes:
            raise ValueError(f"channel {name!r} already attached")
        self._probes[name] = probe
        self._samples[name] = []

    def add_digital_channel(self, name: str, probe: Callable[[], bool]) -> None:
        """Attach a digital probe (stored as 0.0/1.0)."""
        self.add_channel(name, lambda: 1.0 if probe() else 0.0)

    # -- acquisition ---------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True while the scope is sampling."""
        return self._event is not None

    def start(self) -> None:
        """Begin sampling all channels (immediate first sample)."""
        if self._event is not None:
            return
        self._capture()
        self._event = self.sim.call_every(1.0 / self.sample_rate, self._capture)

    def stop(self) -> None:
        """Stop sampling."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _capture(self) -> None:
        now = self.sim.now
        for name, probe in self._probes.items():
            self._samples[name].append((now, probe()))

    def single_shot(self) -> dict[str, float]:
        """Take one immediate sample of every channel; returns the values."""
        self._capture()
        return {name: samples[-1][1] for name, samples in self._samples.items()}

    # -- readout ------------------------------------------------------------------
    def channels(self) -> list[str]:
        """All attached channel names."""
        return sorted(self._probes)

    def samples(self, channel: str) -> tuple[list[float], list[float]]:
        """``(times, values)`` for a channel."""
        try:
            data = self._samples[channel]
        except KeyError:
            raise KeyError(
                f"no channel {channel!r}; have {self.channels()}"
            ) from None
        return [t for t, _ in data], [v for _, v in data]

    def window(
        self, channel: str, t0: float, t1: float
    ) -> tuple[list[float], list[float]]:
        """Samples of a channel restricted to ``[t0, t1)``."""
        times, values = self.samples(channel)
        pairs = [(t, v) for t, v in zip(times, values) if t0 <= t < t1]
        return [t for t, _ in pairs], [v for _, v in pairs]

    def last_value(self, channel: str) -> float:
        """Most recent sample of a channel."""
        data = self._samples[channel]
        if not data:
            raise ValueError(f"channel {channel!r} has no samples yet")
        return data[-1][1]

    def clear(self) -> None:
        """Drop all captured samples (channels stay attached)."""
        for name in self._samples:
            self._samples[name] = []

    def render_ascii(
        self,
        channel: str,
        width: int = 72,
        height: int = 12,
        t0: float | None = None,
        t1: float | None = None,
    ) -> str:
        """A terminal-friendly waveform rendering (for examples/docs)."""
        times, values = self.samples(channel)
        if t0 is not None or t1 is not None:
            lo = t0 if t0 is not None else times[0]
            hi = t1 if t1 is not None else times[-1]
            times, values = self.window(channel, lo, hi)
        if not values:
            return "(no samples)"
        vmin, vmax = min(values), max(values)
        span = (vmax - vmin) or 1.0
        grid = [[" "] * width for _ in range(height)]
        n = len(values)
        for col in range(width):
            index = min(n - 1, col * n // width)
            row = int((values[index] - vmin) / span * (height - 1))
            grid[height - 1 - row][col] = "*"
        lines = ["".join(row) for row in grid]
        header = (
            f"{channel}: {vmin:.3f} .. {vmax:.3f} over "
            f"{(times[-1] - times[0]) * 1e3:.1f} ms"
        )
        return "\n".join([header] + lines)
