"""Bench instruments used by the evaluation harness.

The paper validates EDB with a Tektronix MDO4104 mixed-signal
oscilloscope and a Keithley 2450 SourceMeter.  Both are *measurement*
devices: they observe the system without participating in it.  Their
simulated counterparts sample simulation state on their own schedule:

- :class:`~repro.instruments.oscilloscope.Oscilloscope` — multi-channel
  sampling of analog probes (Vcap, Vreg) and digital lines (GPIO, code
  markers) at a configurable rate;
- :class:`~repro.instruments.sourcemeter.SourceMeter` — applies a
  voltage to one connection endpoint and measures the resulting DC
  current (the Table 2 methodology).
"""

from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.sourcemeter import SourceMeter

__all__ = ["Oscilloscope", "SourceMeter"]
