"""Design-space exploration for energy-harvesting applications.

The paper's related work (§6.1) describes CCTS, a simulator "useful for
exploring the design space for a new energy-harvesting application" —
what capacitor, what range, what duty cycle.  This module provides that
exploration over our power models: sweep capacitor sizes and reader
distances, and characterise each operating point by

- charge time (dark, to the turn-on threshold),
- discharge time under a given active load,
- duty cycle and charge/discharge cycles per second,
- usable work per cycle (in MCU cycles and in joules).

The numbers come from running the actual electrical models, not closed
forms, so they respect the RC charging law and the load/harvest
interaction (including operating points that never brown out).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.capacitor import StorageCapacitor
from repro.power.harvester import RFHarvester
from repro.power.regulator import LinearRegulator
from repro.power.supply import ChargingTimeout, PowerSystem
from repro.power.wisp import WispPowerConstants
from repro.sim import units
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class OperatingPoint:
    """One characterised (capacitance, distance, load) point."""

    capacitance: float
    distance_m: float
    load_current: float
    charge_time_s: float
    discharge_time_s: float | None  # None: never browns out (sustained)
    work_per_cycle_cycles: int | None
    work_per_cycle_j: float | None

    @property
    def sustained(self) -> bool:
        """True when harvest covers the load indefinitely."""
        return self.discharge_time_s is None

    @property
    def duty_cycle(self) -> float:
        """Active fraction of each charge/discharge period (1.0 if sustained)."""
        if self.sustained:
            return 1.0
        total = self.charge_time_s + self.discharge_time_s
        return self.discharge_time_s / total if total > 0 else 0.0

    @property
    def cycles_per_second(self) -> float:
        """Charge/discharge cycles per second (0 if sustained)."""
        if self.sustained:
            return 0.0
        return 1.0 / (self.charge_time_s + self.discharge_time_s)


class DesignSpaceExplorer:
    """Sweeps power-system parameters and characterises each point.

    Parameters
    ----------
    constants:
        Baseline device constants (thresholds, clock); capacitance is
        overridden per point.
    max_discharge_time:
        Give up calling a point intermittent after this long on a
        single discharge (it is effectively sustained).
    """

    def __init__(
        self,
        constants: WispPowerConstants | None = None,
        max_discharge_time: float = 2.0,
    ) -> None:
        self.constants = constants or WispPowerConstants()
        self.max_discharge_time = max_discharge_time

    def characterise(
        self,
        capacitance: float,
        distance_m: float,
        load_current: float | None = None,
    ) -> OperatingPoint:
        """Measure one operating point by simulating it."""
        c = self.constants
        load = (
            load_current
            if load_current is not None
            else c.active_current + c.system_current
        )
        sim = Simulator(seed=99)
        power = PowerSystem(
            sim,
            RFHarvester(
                tx_power_dbm=c.reader_tx_power_dbm, distance_m=distance_m
            ),
            StorageCapacitor(
                capacitance, voltage=c.brownout_voltage, max_voltage=3.3
            ),
            LinearRegulator(),
            turn_on_voltage=c.turn_on_voltage,
            brownout_voltage=c.brownout_voltage,
        )
        try:
            charge_time = power.charge_until_on(timeout=30.0)
        except ChargingTimeout:
            return OperatingPoint(
                capacitance=capacitance,
                distance_m=distance_m,
                load_current=load,
                charge_time_s=float("inf"),
                discharge_time_s=None,
                work_per_cycle_cycles=None,
                work_per_cycle_j=None,
            )
        # Discharge under constant load, tracking delivered work.
        step = 50 * units.US
        start = sim.now
        energy = 0.0
        while power.is_on:
            if sim.now - start > self.max_discharge_time:
                return OperatingPoint(
                    capacitance=capacitance,
                    distance_m=distance_m,
                    load_current=load,
                    charge_time_s=charge_time,
                    discharge_time_s=None,
                    work_per_cycle_cycles=None,
                    work_per_cycle_j=None,
                )
            sim.advance(step)
            energy += load * power.vreg * step
            power.step(step, load_current=load)
        discharge_time = sim.now - start
        return OperatingPoint(
            capacitance=capacitance,
            distance_m=distance_m,
            load_current=load,
            charge_time_s=charge_time,
            discharge_time_s=discharge_time,
            work_per_cycle_cycles=int(discharge_time * c.clock_hz),
            work_per_cycle_j=energy,
        )

    def sweep(
        self,
        capacitances: list[float],
        distances: list[float],
        load_current: float | None = None,
    ) -> list[OperatingPoint]:
        """Characterise the full cross product."""
        return [
            self.characterise(c, d, load_current)
            for c in capacitances
            for d in distances
        ]

    @staticmethod
    def render_table(points: list[OperatingPoint]) -> str:
        """A fixed-width report of a sweep."""
        lines = [
            "cap_uF  dist_m  charge_ms  discharge_ms  duty%  cyc/s  "
            "work_kcycles  work_uJ"
        ]
        for p in points:
            if p.charge_time_s == float("inf"):
                lines.append(
                    f"{p.capacitance / units.UF:6.1f}  {p.distance_m:6.2f}  "
                    "   (cannot reach turn-on at this range)"
                )
                continue
            if p.sustained:
                lines.append(
                    f"{p.capacitance / units.UF:6.1f}  {p.distance_m:6.2f}  "
                    f"{p.charge_time_s * 1e3:9.1f}  "
                    "   sustained (never browns out)"
                )
                continue
            lines.append(
                f"{p.capacitance / units.UF:6.1f}  {p.distance_m:6.2f}  "
                f"{p.charge_time_s * 1e3:9.1f}  "
                f"{p.discharge_time_s * 1e3:12.1f}  "
                f"{100 * p.duty_cycle:5.1f}  {p.cycles_per_second:5.1f}  "
                f"{p.work_per_cycle_cycles / 1e3:12.1f}  "
                f"{p.work_per_cycle_j / units.UJ:7.1f}"
            )
        return "\n".join(lines)
