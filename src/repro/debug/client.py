"""A thin typed client for the EDB debug server.

:class:`DebugClient` speaks newline-delimited JSON-RPC 2.0 over either
a TCP connection (:meth:`DebugClient.connect_tcp`) or a spawned stdio
server subprocess (:meth:`DebugClient.spawn_stdio`).  Remote failures
surface as :class:`DebugRpcError` carrying the server's error code.

:class:`RemoteSession` binds a session id so call sites read like the
console::

    with DebugClient.spawn_stdio() as client:
        session = client.create_session(app="fibonacci", seed=42)
        session.trace("energy")
        session.charge(2.4)
        print(session.run(0.5)["status"])
        events = session.poll_trace()["events"]

Transport failures are **typed and terminal**: a dropped connection, a
response timeout, or desynchronised framing raises
:class:`~repro.debug.errors.SessionLost` (a :class:`ConnectionError`)
and marks the client dead — later calls fail fast instead of blocking
on a corpse.  :meth:`DebugClient.connect_tcp` retries the initial
connect with exponential backoff (a server still binding its socket is
not an error), and applies its ``timeout`` per request, so a wedged or
stalled server surfaces as ``SessionLost`` instead of a hang.
"""

from __future__ import annotations

import itertools
import json
import socket
import subprocess
import sys
import time
from typing import Any, Callable

from repro.debug import protocol
from repro.debug.errors import SessionLost


class DebugRpcError(Exception):
    """The server answered with a JSON-RPC error object."""

    def __init__(self, code: int, message: str, data: Any = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.data = data


class DebugClient:
    """One connection to a debug server (context manager)."""

    def __init__(
        self,
        send_line: Callable[[str], None],
        recv_line: Callable[[], str],
        close: Callable[[], None],
    ) -> None:
        self._send_line = send_line
        self._recv_line = recv_line
        self._close = close
        self._ids = itertools.count(1)
        self._lost: SessionLost | None = None

    # -- constructors -------------------------------------------------------
    @classmethod
    def connect_tcp(
        cls,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        retries: int = 3,
        backoff_s: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "DebugClient":
        """Connect to a running ``--port`` server.

        The connect is retried ``retries`` times with exponential
        backoff (``backoff_s * 2**attempt``) — a server that has not
        finished binding yet is a race, not a failure.  ``timeout``
        then applies **per request**: a response that takes longer
        raises :class:`SessionLost`.
        """
        attempt = 0
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError:
                if attempt >= retries:
                    raise
                sleep(backoff_s * (2**attempt))
                attempt += 1
        sock.settimeout(timeout if timeout else None)
        reader = sock.makefile("r", encoding="utf-8", newline="\n")

        def send(line: str) -> None:
            sock.sendall(line.encode("utf-8"))

        def close() -> None:
            reader.close()
            sock.close()

        return cls(send, reader.readline, close)

    @classmethod
    def spawn_stdio(
        cls,
        python: str | None = None,
        extra_args: list[str] | None = None,
        env: dict[str, str] | None = None,
    ) -> "DebugClient":
        """Spawn ``python -m repro.debug.server`` and talk over its pipes."""
        command = [
            python or sys.executable,
            "-m",
            "repro.debug.server",
            *(extra_args or []),
        ]
        process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
            env=env,
        )

        def send(line: str) -> None:
            assert process.stdin is not None
            process.stdin.write(line)
            process.stdin.flush()

        def recv() -> str:
            assert process.stdout is not None
            return process.stdout.readline()

        def close() -> None:
            if process.stdin is not None:
                process.stdin.close()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

        client = cls(send, recv, close)
        client.process = process
        return client

    # -- transport ----------------------------------------------------------
    def _lose(self, why: str, cause: BaseException | None = None) -> SessionLost:
        """Mark the transport dead; every call from now on fails fast."""
        self._lost = SessionLost(why)
        try:
            self._close()
        except OSError:
            pass
        raise self._lost from cause

    def call(self, method: str, **params: Any) -> Any:
        """One JSON-RPC call; returns the result or raises DebugRpcError.

        Transport failures — drop, timeout, broken framing — raise
        :class:`SessionLost` and kill the client; server-side failures
        raise :class:`DebugRpcError` and the connection stays usable.
        """
        if self._lost is not None:
            raise self._lost
        request_id = next(self._ids)
        request = {
            "jsonrpc": protocol.JSONRPC_VERSION,
            "id": request_id,
            "method": method,
        }
        if params:
            request["params"] = params
        try:
            self._send_line(json.dumps(request) + "\n")
            line = self._recv_line()
        except SessionLost:
            raise
        except OSError as exc:  # timeouts are OSError too
            self._lose(f"transport failed during {method!r}: {exc}", exc)
        if not line:
            self._lose(f"server closed the connection during {method!r}")
        try:
            response = json.loads(line)
        except ValueError as exc:
            self._lose(f"unparseable response line during {method!r}", exc)
        if response.get("id") != request_id:
            self._lose(
                f"out-of-order response: sent id {request_id}, "
                f"got {response.get('id')!r}"
            )
        if "error" in response:
            error = response["error"]
            raise DebugRpcError(
                error.get("code", 0), error.get("message", ""), error.get("data")
            )
        return response["result"]

    def close(self) -> None:
        self._close()

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- typed surface ------------------------------------------------------
    def ping(self) -> dict:
        return self.call("debug.ping")

    def create_session(self, **params: Any) -> "RemoteSession":
        info = self.call("session.create", **params)
        return RemoteSession(self, info["session"], info)

    def list_sessions(self) -> list[dict]:
        return self.call("session.list")["sessions"]


class RemoteSession:
    """Client-side handle to one server session."""

    def __init__(self, client: DebugClient, session_id: str, info: dict) -> None:
        self.client = client
        self.id = session_id
        self.info = info

    def call(self, method: str, **params: Any) -> Any:
        return self.client.call(method, session=self.id, **params)

    def close(self) -> dict:
        return self.call("session.close")

    def status(self) -> dict:
        return self.call("session.status")

    # breakpoints -----------------------------------------------------------
    def break_code(self, breakpoint_id: int, one_shot: bool = False) -> int:
        return self.call("break.add_code", id=breakpoint_id, one_shot=one_shot)[
            "handle"
        ]

    def break_energy(self, threshold_v: float, one_shot: bool = False) -> int:
        return self.call(
            "break.add_energy", threshold_v=threshold_v, one_shot=one_shot
        )["handle"]

    def break_combined(
        self, breakpoint_id: int, threshold_v: float, one_shot: bool = False
    ) -> int:
        return self.call(
            "break.add_combined",
            id=breakpoint_id,
            threshold_v=threshold_v,
            one_shot=one_shot,
        )["handle"]

    def set_breakpoint_enabled(self, handle: int, enabled: bool) -> dict:
        return self.call("break.set_enabled", handle=handle, enabled=enabled)

    def remove_breakpoint(self, handle: int) -> dict:
        return self.call("break.remove", handle=handle)

    def breakpoints(self) -> list[dict]:
        return self.call("break.list")["breakpoints"]

    def on_break(self, actions: list[dict]) -> dict:
        return self.call("break.on_hit", actions=actions)

    def break_log(self, cursor: int = 0) -> dict:
        return self.call("break.log", cursor=cursor)

    # watches / tracing -----------------------------------------------------
    def watch_pc(self, pc: int) -> dict:
        return self.call("watch.pc", pc=pc)

    def unwatch_pc(self, pc: int) -> dict:
        return self.call("unwatch.pc", pc=pc)

    def set_watchpoint_enabled(self, wp_id: int, enabled: bool) -> dict:
        return self.call("watch.set_enabled", id=wp_id, enabled=enabled)

    def trace(self, stream: str) -> dict:
        return self.call("trace.enable", stream=stream)

    def untrace(self, stream: str) -> dict:
        return self.call("trace.disable", stream=stream)

    def poll_trace(
        self, cursor: int = 0, limit: int = 1024, stream: str | None = None
    ) -> dict:
        params: dict[str, Any] = {"cursor": cursor, "limit": limit}
        if stream is not None:
            params["stream"] = stream
        return self.call("trace.poll", **params)

    # energy / memory / registers -------------------------------------------
    def charge(self, volts: float) -> float:
        return self.call("energy.charge", volts=volts)["vcap"]

    def discharge(self, volts: float) -> float:
        return self.call("energy.discharge", volts=volts)["vcap"]

    def vcap(self) -> dict:
        return self.call("energy.vcap")

    def read_mem(self, address: int, count: int = 2) -> bytes:
        return bytes.fromhex(
            self.call("mem.read", address=address, count=count)["hex"]
        )

    def write_u16(self, address: int, value: int) -> dict:
        return self.call("mem.write", address=address, value=value)

    def write_mem(self, address: int, data: bytes) -> dict:
        return self.call("mem.write", address=address, data=data.hex())

    def registers(self) -> list[int]:
        return self.call("regs.read")["registers"]

    # execution -------------------------------------------------------------
    def run(self, duration: float, **params: Any) -> dict:
        return self.call("run", duration=duration, **params)

    def emulate(self, cycles: int, **params: Any) -> dict:
        return self.call("emulate", cycles=cycles, **params)

    def divergence_context(self, tail: int = 64) -> dict:
        return self.call("debug.divergence_context", tail=tail)
