"""The debug-server entry point: ``python -m repro.debug.server``.

Two transports, one wire format (newline-delimited JSON-RPC 2.0):

- **stdio** (default): requests on stdin, responses on stdout — the
  mode an MCP-style tool host or a supervising agent uses, one server
  per conversation;
- **TCP** (``--port N``): a threaded server accepting any number of
  concurrent clients on ``--host`` (default 127.0.0.1).  All clients
  share one :class:`~repro.debug.service.DebugService`, so a session
  created on one connection can be driven from another — and two
  sessions never share simulator state regardless of which connection
  created them.

Malformed input never kills the server: parse errors, bad envelopes,
unknown methods, and method failures all come back as JSON-RPC error
objects on the same line-oriented channel.  Nor does *hostile* input:
request lines are read with a byte bound (``--max-request-bytes``) —
an oversized line is drained and answered with ``-32600`` instead of
being buffered without limit — and batch arrays are capped at
:data:`MAX_BATCH_ITEMS` requests.  ``--session-ttl`` /
``--session-idle`` bound session lifetimes so abandoned clients cannot
leak simulators (see :class:`~repro.debug.service.DebugService`).

``SIGTERM`` drains gracefully on both transports: in-flight work
finishes, every session is closed (detaching its EDB), and the process
exits 0 — the supervisor-friendly sibling of Ctrl-C.

``--port 0`` binds an ephemeral port; the server always announces
``EDB debug server listening on HOST:PORT`` on stderr (and flushes), so
spawning tooling can scrape the bound address.
"""

from __future__ import annotations

import argparse
import signal
import socketserver
import sys
import threading
from typing import Any, Callable, TextIO

from repro.debug import protocol
from repro.debug.errors import InternalError, InvalidRequest, RpcError
from repro.debug.service import DebugService

#: Request-line byte bound.  A line longer than this is not a debugging
#: workload — it is a bug or an attack — and gets ``-32600`` instead of
#: an unbounded buffer.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: Most requests a single batch array may carry.
MAX_BATCH_ITEMS = 64


def handle_decoded(service: DebugService, decoded: Any) -> Any | None:
    """Execute one decoded wire message (request or batch).

    Returns the response object, a batch of responses, or ``None`` when
    nothing must be sent (a lone notification, or an empty batch of
    notifications — note an *empty array* is an invalid request per the
    JSON-RPC spec and gets an error).
    """
    if isinstance(decoded, list):
        if not decoded:
            return protocol.error_response(
                None, protocol.InvalidRequest("empty batch")
            )
        if len(decoded) > MAX_BATCH_ITEMS:
            return protocol.error_response(
                None,
                protocol.InvalidRequest(
                    f"batch of {len(decoded)} requests exceeds the "
                    f"{MAX_BATCH_ITEMS}-request limit"
                ),
            )
        responses = [
            r for r in (_handle_one(service, item) for item in decoded) if r
        ]
        return responses or None
    return _handle_one(service, decoded)


def _handle_one(service: DebugService, obj: Any) -> dict | None:
    try:
        request = protocol.parse_request(obj)
    except RpcError as exc:
        request_id = obj.get("id") if isinstance(obj, dict) else None
        return protocol.error_response(request_id, exc)
    try:
        result = service.dispatch(request.method, dict(request.params))
    except RpcError as exc:
        return (
            None
            if request.is_notification
            else protocol.error_response(request.id, exc)
        )
    except Exception as exc:  # noqa: BLE001 - absolute backstop
        return (
            None
            if request.is_notification
            else protocol.error_response(
                request.id, InternalError(f"{type(exc).__name__}: {exc}")
            )
        )
    if request.is_notification:
        return None
    return protocol.result_response(request.id, result)


def handle_line(service: DebugService, line: str) -> str | None:
    """One wire line in, zero or one wire lines out."""
    line = line.strip()
    if not line:
        return None
    try:
        decoded = protocol.decode_line(line)
    except RpcError as exc:
        return protocol.encode(protocol.error_response(None, exc))
    response = handle_decoded(service, decoded)
    return protocol.encode(response) if response is not None else None


def read_bounded(readline: Callable[[int], Any], limit: int):
    """One newline-delimited record through a byte-bounded ``readline``.

    Returns ``(record, oversized)``: ``record`` is ``None`` at EOF;
    ``oversized`` is True when the record exceeded ``limit`` — the
    over-long record is **drained** (read and discarded up to its
    newline, in ``limit``-sized slices that are never accumulated) so
    the line framing recovers and the connection can keep being served.
    Works for both text and binary streams.
    """
    record = readline(limit)
    if not record:
        return None, False
    newline = "\n" if isinstance(record, str) else b"\n"
    if record.endswith(newline) or len(record) < limit:
        return record, False
    while True:  # drain without buffering
        chunk = readline(limit)
        if not chunk or chunk.endswith(newline):
            return record, True


def oversized_response(limit: int) -> str:
    """The wire line answering a request that blew the byte bound."""
    return protocol.encode(
        protocol.error_response(
            None,
            InvalidRequest(f"request line exceeds {limit} bytes"),
        )
    )


class _GracefulExit(Exception):
    """Raised by the stdio SIGTERM handler to unwind the read loop."""


def _install_sigterm(handler) -> Any:
    """Install a SIGTERM handler if possible; returns the old one.

    Signal handlers only work in the main thread (and not at all on
    some embedders); everywhere else the server simply has no graceful
    SIGTERM path, which is also what it had before.
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    try:
        return signal.signal(signal.SIGTERM, handler)
    except (ValueError, OSError, AttributeError):
        return None


def _restore_sigterm(old) -> None:
    if old is not None:
        try:
            signal.signal(signal.SIGTERM, old)
        except (ValueError, OSError):
            pass


def serve_stdio(
    service: DebugService,
    in_stream: TextIO | None = None,
    out_stream: TextIO | None = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
) -> None:
    """Serve newline-delimited JSON-RPC until EOF (or SIGTERM) on stdin."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout

    def on_sigterm(signum, frame):
        raise _GracefulExit

    old_handler = _install_sigterm(on_sigterm)
    try:
        while True:
            line, oversized = read_bounded(
                in_stream.readline, max_request_bytes
            )
            if line is None:
                break
            response = (
                oversized_response(max_request_bytes)
                if oversized
                else handle_line(service, line)
            )
            if response is not None:
                out_stream.write(response)
                out_stream.flush()
    except _GracefulExit:
        pass
    finally:
        _restore_sigterm(old_handler)
        service.close_all()


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: DebugService = self.server.service  # type: ignore[attr-defined]
        limit: int = getattr(
            self.server, "max_request_bytes", DEFAULT_MAX_REQUEST_BYTES
        )
        while True:
            raw, oversized = read_bounded(self.rfile.readline, limit)
            if raw is None:
                return  # client hung up
            if oversized:
                response: str | None = oversized_response(limit)
            else:
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    line = raw.decode("utf-8", errors="replace")
                response = handle_line(service, line)
            if response is not None:
                try:
                    self.wfile.write(response.encode("utf-8"))
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return


class DebugTCPServer(socketserver.ThreadingTCPServer):
    """Threaded line-oriented JSON-RPC server over one shared service."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: DebugService,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.max_request_bytes = max_request_bytes


def serve_tcp(
    service: DebugService,
    host: str,
    port: int,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
) -> None:
    """Serve TCP clients until Ctrl-C or SIGTERM (both drain cleanly)."""
    with DebugTCPServer((host, port), service, max_request_bytes) as server:
        bound_host, bound_port = server.server_address[:2]
        print(
            f"EDB debug server listening on {bound_host}:{bound_port}",
            file=sys.stderr,
            flush=True,
        )

        def on_sigterm(signum, frame):
            # shutdown() blocks until the serve loop exits, and the
            # handler runs *in* the serving thread — hand it off.
            threading.Thread(target=server.shutdown, daemon=True).start()

        old_handler = _install_sigterm(on_sigterm)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            _restore_sigterm(old_handler)
            service.close_all()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.debug.server",
        description=(
            "JSON-RPC 2.0 debug server over the simulated EDB "
            "(newline-delimited JSON; stdio by default, TCP with --port)"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve TCP on this port (0 = ephemeral) instead of stdio",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default loopback)"
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="cap on concurrently open sessions",
    )
    parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=DEFAULT_MAX_REQUEST_BYTES,
        help="byte bound on one request line; longer lines are drained "
        "and answered with -32600 (default: %(default)s)",
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="reap sessions older than this, however busy (default: never)",
    )
    parser.add_argument(
        "--session-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="reap sessions unused for this long (default: never)",
    )
    args = parser.parse_args(argv)
    if args.max_request_bytes < 2:
        parser.error("--max-request-bytes must be >= 2")
    service = DebugService(
        **(
            {"max_sessions": args.max_sessions}
            if args.max_sessions
            else {}
        ),
        session_ttl_s=args.session_ttl,
        session_idle_s=args.session_idle,
    )
    if args.port is None:
        serve_stdio(service, max_request_bytes=args.max_request_bytes)
    else:
        serve_tcp(
            service,
            args.host,
            args.port,
            max_request_bytes=args.max_request_bytes,
        )


if __name__ == "__main__":
    main()
