"""The debug-server entry point: ``python -m repro.debug.server``.

Two transports, one wire format (newline-delimited JSON-RPC 2.0):

- **stdio** (default): requests on stdin, responses on stdout — the
  mode an MCP-style tool host or a supervising agent uses, one server
  per conversation;
- **TCP** (``--port N``): a threaded server accepting any number of
  concurrent clients on ``--host`` (default 127.0.0.1).  All clients
  share one :class:`~repro.debug.service.DebugService`, so a session
  created on one connection can be driven from another — and two
  sessions never share simulator state regardless of which connection
  created them.

Malformed input never kills the server: parse errors, bad envelopes,
unknown methods, and method failures all come back as JSON-RPC error
objects on the same line-oriented channel.

``--port 0`` binds an ephemeral port; the server always announces
``EDB debug server listening on HOST:PORT`` on stderr (and flushes), so
spawning tooling can scrape the bound address.
"""

from __future__ import annotations

import argparse
import socketserver
import sys
from typing import Any, TextIO

from repro.debug import protocol
from repro.debug.errors import InternalError, RpcError
from repro.debug.service import DebugService


def handle_decoded(service: DebugService, decoded: Any) -> Any | None:
    """Execute one decoded wire message (request or batch).

    Returns the response object, a batch of responses, or ``None`` when
    nothing must be sent (a lone notification, or an empty batch of
    notifications — note an *empty array* is an invalid request per the
    JSON-RPC spec and gets an error).
    """
    if isinstance(decoded, list):
        if not decoded:
            return protocol.error_response(
                None, protocol.InvalidRequest("empty batch")
            )
        responses = [
            r for r in (_handle_one(service, item) for item in decoded) if r
        ]
        return responses or None
    return _handle_one(service, decoded)


def _handle_one(service: DebugService, obj: Any) -> dict | None:
    try:
        request = protocol.parse_request(obj)
    except RpcError as exc:
        request_id = obj.get("id") if isinstance(obj, dict) else None
        return protocol.error_response(request_id, exc)
    try:
        result = service.dispatch(request.method, dict(request.params))
    except RpcError as exc:
        return (
            None
            if request.is_notification
            else protocol.error_response(request.id, exc)
        )
    except Exception as exc:  # noqa: BLE001 - absolute backstop
        return (
            None
            if request.is_notification
            else protocol.error_response(
                request.id, InternalError(f"{type(exc).__name__}: {exc}")
            )
        )
    if request.is_notification:
        return None
    return protocol.result_response(request.id, result)


def handle_line(service: DebugService, line: str) -> str | None:
    """One wire line in, zero or one wire lines out."""
    line = line.strip()
    if not line:
        return None
    try:
        decoded = protocol.decode_line(line)
    except RpcError as exc:
        return protocol.encode(protocol.error_response(None, exc))
    response = handle_decoded(service, decoded)
    return protocol.encode(response) if response is not None else None


def serve_stdio(
    service: DebugService,
    in_stream: TextIO | None = None,
    out_stream: TextIO | None = None,
) -> None:
    """Serve newline-delimited JSON-RPC until EOF on the input stream."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    for line in in_stream:
        response = handle_line(service, line)
        if response is not None:
            out_stream.write(response)
            out_stream.flush()
    service.close_all()


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: DebugService = self.server.service  # type: ignore[attr-defined]
        while True:
            raw = self.rfile.readline()
            if not raw:
                return  # client hung up
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError:
                line = raw.decode("utf-8", errors="replace")
            response = handle_line(service, line)
            if response is not None:
                try:
                    self.wfile.write(response.encode("utf-8"))
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return


class DebugTCPServer(socketserver.ThreadingTCPServer):
    """Threaded line-oriented JSON-RPC server over one shared service."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: DebugService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def serve_tcp(service: DebugService, host: str, port: int) -> None:
    """Serve TCP clients forever (Ctrl-C to stop)."""
    with DebugTCPServer((host, port), service) as server:
        bound_host, bound_port = server.server_address[:2]
        print(
            f"EDB debug server listening on {bound_host}:{bound_port}",
            file=sys.stderr,
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            service.close_all()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.debug.server",
        description=(
            "JSON-RPC 2.0 debug server over the simulated EDB "
            "(newline-delimited JSON; stdio by default, TCP with --port)"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve TCP on this port (0 = ephemeral) instead of stdio",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default loopback)"
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="cap on concurrently open sessions",
    )
    args = parser.parse_args(argv)
    service = (
        DebugService(max_sessions=args.max_sessions)
        if args.max_sessions
        else DebugService()
    )
    if args.port is None:
        serve_stdio(service)
    else:
        serve_tcp(service, args.host, args.port)


if __name__ == "__main__":
    main()
