"""Transport-independent debug sessions and JSON-RPC method dispatch.

One :class:`DebugService` owns any number of isolated debug sessions.
Each session is a complete, freshly-seeded simulation — kernel, power
system, target device, EDB board, executor — so two sessions can never
share breakpoint registries, monitor state, or RNG streams.  A single
service-wide lock serialises method execution (the simulator is not
thread-safe; sessions are cheap enough that serialisation is not a
bottleneck for a debugging workload).

Breakpoints are keyed by **server-assigned integer handles**, mapped to
the live :class:`~repro.core.breakpoints.Breakpoint` instances by
identity.  This is what makes ``break.remove`` exact in the presence of
duplicate registrations — together with the identity-based
``BreakpointManager.remove``, removing handle 7 removes exactly the
registration handle 7 names.

Memory and register access routes through a console-initiated
:class:`~repro.core.session.InteractiveSession` (tether, target-side
protocol exchange, restore), so every RPC access costs the target
exactly what the interactive console's ``read``/``write`` commands
cost.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Callable

from repro.campaign.apps import ADAPTERS, get_adapter
from repro.core.board import BreakEvent
from repro.core.breakpoints import Breakpoint
from repro.core.console import DebugConsole
from repro.core.debugger import EDB
from repro.core.session import InteractiveSession
from repro.debug.errors import (
    InvalidParams,
    MethodNotFound,
    RpcError,
    SessionLimit,
    SessionNotFound,
    TargetError,
    UnknownHandle,
)
from repro.campaign.watchdog import RunWatchdog
from repro.mcu.device import TargetDevice
from repro.power.wisp import make_wisp_power_system
from repro.runtime.executor import IntermittentExecutor
from repro.sim import units
from repro.sim.kernel import Simulator
from repro.testing import fast_wisp_constants, make_bench_target

#: Power-system presets for ``session.create``.
POWER_SYSTEMS = ("wisp", "fast", "bench")

#: Safety net: a long-lived server must not leak simulators.
DEFAULT_MAX_SESSIONS = 32

#: Default watchdog budget for ``run``/``emulate`` (simulated cycles).
#: Generous — a 2 s WISP run is ~8M cycles — but finite, so a livelocked
#: guest cannot wedge the server for good.  Override per call.
DEFAULT_MAX_CYCLES = 200_000_000

#: How many reaped session ids are remembered so that a client
#: reconnecting after its session expired gets a *specific* error
#: ("expired", with the reason) instead of a bare "no such session".
#: Bounded so an eternal server cannot leak memory one id at a time.
EXPIRED_MEMORY = 64


def _jsonable(value: Any) -> Any:
    """Fold simulator values into JSON-representable ones."""
    if isinstance(value, (bytes, bytearray)):
        return {"hex": bytes(value).hex()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _param(params: dict, name: str, kind, default=..., convert=None):
    """One validated keyword parameter (``...`` marks it required)."""
    if name not in params:
        if default is ...:
            raise InvalidParams(f"missing required param {name!r}")
        return default
    value = params[name]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if kind is int and isinstance(value, bool):
        raise InvalidParams(f"param {name!r} must be {kind.__name__}")
    if not isinstance(value, kind):
        raise InvalidParams(
            f"param {name!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}"
        )
    return convert(value) if convert else value


class _BreakAction:
    """One scripted step executed inside a breakpoint's session."""

    OPS = (
        "read",
        "read_u16",
        "write_u16",
        "vcap",
        "charge",
        "discharge",
        "registers",
    )

    def __init__(self, spec: dict) -> None:
        if not isinstance(spec, dict):
            raise InvalidParams("each action must be an object")
        self.op = _param(spec, "op", str)
        if self.op not in self.OPS:
            raise InvalidParams(
                f"unknown action op {self.op!r}; have {list(self.OPS)}"
            )
        self.address = _param(spec, "address", int, None)
        self.count = _param(spec, "count", int, 2)
        self.value = _param(spec, "value", int, None)
        self.volts = _param(spec, "volts", float, None)
        if self.op in ("read", "read_u16", "write_u16") and self.address is None:
            raise InvalidParams(f"action {self.op!r} needs an address")
        if self.op == "write_u16" and self.value is None:
            raise InvalidParams('action "write_u16" needs a value')
        if self.op in ("charge", "discharge") and self.volts is None:
            raise InvalidParams(f"action {self.op!r} needs volts")

    def apply(self, session: InteractiveSession) -> Any:
        if self.op == "read":
            return {"hex": session.read_bytes(self.address, self.count).hex()}
        if self.op == "read_u16":
            return session.read_u16(self.address)
        if self.op == "write_u16":
            session.write_u16(self.address, self.value)
            return self.value
        if self.op == "vcap":
            return session.vcap()
        if self.op == "charge":
            return session.charge(self.volts)
        if self.op == "discharge":
            return session.discharge(self.volts)
        if self.op == "registers":
            return session.registers()
        raise AssertionError(self.op)


class DebugSession:
    """One isolated simulated target with EDB attached.

    Everything a session touches hangs off its own freshly-seeded
    :class:`Simulator`; nothing is shared with sibling sessions.
    """

    def __init__(
        self,
        session_id: str,
        *,
        app: str,
        power: str,
        seed: int,
        protect: bool,
        iterations: int,
        distance_m: float | None,
        fading_sigma: float,
        sample_rate: float | None,
    ) -> None:
        if power not in POWER_SYSTEMS:
            raise InvalidParams(
                f"unknown power system {power!r}; have {list(POWER_SYSTEMS)}"
            )
        self.id = session_id
        self.app = app
        self.power_name = power
        self.seed = seed
        self.sim = Simulator(seed=seed)
        if power == "bench":
            self.device = make_bench_target(self.sim)
        elif power == "fast":
            self.device = TargetDevice(
                self.sim,
                make_wisp_power_system(
                    self.sim,
                    constants=fast_wisp_constants(),
                    distance_m=distance_m,
                    fading_sigma=fading_sigma,
                ),
                constants=fast_wisp_constants(),
            )
        else:
            self.device = TargetDevice(
                self.sim,
                make_wisp_power_system(
                    self.sim, distance_m=distance_m, fading_sigma=fading_sigma
                ),
            )
        self.edb = EDB(
            self.sim,
            self.device,
            sample_rate=sample_rate if sample_rate else 4 * units.KHZ,
        )
        self.adapter = get_adapter(app)
        self.program = self.adapter.build(protect, iterations)
        self.executor = IntermittentExecutor(
            self.sim, self.device, self.program, edb=self.edb.libedb()
        )
        # Server-assigned breakpoint handles -> live instances.
        self.handles: dict[int, Breakpoint] = {}
        self._next_handle = 1
        # Scripted on-break actions and their per-stop transcripts.
        self.break_actions: list[_BreakAction] = []
        self.break_log: list[dict] = []
        # Stamped by the owning service's clock (budget bookkeeping).
        self.created_at = 0.0
        self.last_used = 0.0
        self.edb.on_break(self._on_break)

    # -- breakpoint handle registry ---------------------------------------
    def register(self, bp: Breakpoint) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self.handles[handle] = bp
        return handle

    def lookup(self, handle: int) -> Breakpoint:
        try:
            return self.handles[handle]
        except KeyError:
            raise UnknownHandle(
                f"no breakpoint handle {handle} in session {self.id!r}"
            ) from None

    # -- live break servicing ----------------------------------------------
    def _on_break(self, event: BreakEvent, session: InteractiveSession) -> None:
        record: dict[str, Any] = {
            "reason": event.reason,
            "time": event.time,
            "vcap": event.vcap,
            "results": [],
        }
        if session is not None:
            for action in self.break_actions:
                record["results"].append(
                    {"op": action.op, "value": _jsonable(action.apply(session))}
                )
            record["transcript"] = list(session.transcript)
        self.break_log.append(record)

    # -- console-equivalent tethered access --------------------------------
    def in_session(self, action: Callable[[InteractiveSession], Any]) -> Any:
        """Run one host access inside a console-initiated session.

        The exact bracket :meth:`DebugConsole._in_session` uses: tether
        (unless already tethered by an open break/assert session), do
        the access through the target-side protocol, restore with the
        trim-up path.
        """
        board = self.edb.board
        assert board.energy is not None
        event = BreakEvent(
            reason="console",
            time=self.sim.now,
            vcap=self.device.power.vcap,
        )
        already_tethered = board.energy.in_active_task or self.edb.is_tethered
        if not already_tethered:
            board.energy.begin_task()
        try:
            return action(InteractiveSession(board, event))
        finally:
            if not already_tethered:
                board.energy.end_task(trim_up=True)

    def describe(self) -> dict:
        power = self.device.power
        cpu = self.device.cpu
        return {
            "session": self.id,
            "app": self.app,
            "power": self.power_name,
            "seed": self.seed,
            "time": self.sim.now,
            "vcap": power.vcap,
            "state": power.state.value,
            "tethered": power.is_tethered,
            "reboots": self.device.reboot_count,
            "cycles": self.device.cycles_executed,
            "breakpoints": len(self.handles),
            # Which execution tier served the session's work so far:
            # block translation, superblock traces, and the closed-form
            # energy fast-forward (spans opened / spends committed).
            "tier": {
                "blocks": {
                    "translated": cpu.blocks_translated,
                    "executed": cpu.blocks_executed,
                    "deopts": cpu.blocks_deopts,
                },
                "traces": {
                    "formed": cpu.traces_formed,
                    "executed": cpu.traces_executed,
                    "exits": cpu.trace_exits,
                },
                "fast_forward": {
                    "spans": self.device.ff_spans,
                    "spends": self.device.ff_spends,
                },
            },
        }

    def close(self) -> None:
        self.edb.detach()


class DebugService:
    """Session registry + JSON-RPC method table.

    Transport-independent: :meth:`dispatch` takes a method name and a
    params dict, returns a JSON-safe result, and signals failures by
    raising :class:`~repro.debug.errors.RpcError` subclasses.  The
    stdio/TCP server and in-process tests both sit on top of this.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        *,
        session_ttl_s: float | None = None,
        session_idle_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_sessions = max_sessions
        #: Wall-clock budgets; ``None`` disables the corresponding reap.
        #: ``session_ttl_s`` bounds a session's total lifetime,
        #: ``session_idle_s`` the gap between uses.  The clock is
        #: injectable so the reaper is testable without sleeping.
        self.session_ttl_s = session_ttl_s
        self.session_idle_s = session_idle_s
        self.clock = clock
        self.sessions: dict[str, DebugSession] = {}
        #: Recently reaped ids -> reason, for clean "expired" errors.
        self.expired: collections.OrderedDict[str, str] = (
            collections.OrderedDict()
        )
        self._next_session = 1
        self._lock = threading.RLock()
        self._methods: dict[str, Callable[[dict], Any]] = {
            "debug.ping": self._ping,
            "debug.methods": self._methods_list,
            "session.create": self._session_create,
            "session.list": self._session_list,
            "session.close": self._session_close,
            "session.status": self._session_status,
            "break.add_code": self._break_add_code,
            "break.add_energy": self._break_add_energy,
            "break.add_combined": self._break_add_combined,
            "break.set_enabled": self._break_set_enabled,
            "break.remove": self._break_remove,
            "break.list": self._break_list,
            "break.on_hit": self._break_on_hit,
            "break.log": self._break_log,
            "watch.pc": self._watch_pc,
            "unwatch.pc": self._unwatch_pc,
            "watch.set_enabled": self._watch_set_enabled,
            "energy.charge": self._energy_charge,
            "energy.discharge": self._energy_discharge,
            "energy.vcap": self._energy_vcap,
            "mem.read": self._mem_read,
            "mem.write": self._mem_write,
            "regs.read": self._regs_read,
            "trace.enable": self._trace_enable,
            "trace.disable": self._trace_disable,
            "trace.poll": self._trace_poll,
            "run": self._run,
            "emulate": self._emulate,
            "debug.divergence_context": self._divergence_context,
        }

    # -- dispatch -----------------------------------------------------------
    def dispatch(self, method: str, params: dict) -> Any:
        """Execute one method; raises :class:`RpcError` on any failure."""
        handler = self._methods.get(method)
        if handler is None:
            raise MethodNotFound(f"unknown method {method!r}")
        with self._lock:
            self._reap()
            try:
                return handler(params)
            except RpcError:
                raise
            except Exception as exc:  # noqa: BLE001 - server must survive
                raise TargetError.wrap(exc) from exc

    def _reap(self) -> None:
        """Close sessions over their wall/idle budget (lock held).

        Reaping happens on dispatch rather than on a timer thread: a
        server nobody talks to holds its sessions (harmless — they are
        inert simulators), and the moment anyone talks to it the
        budgets are enforced before the request runs.
        """
        if self.session_ttl_s is None and self.session_idle_s is None:
            return
        now = self.clock()
        for sid in list(self.sessions):
            session = self.sessions[sid]
            reason = None
            if (
                self.session_ttl_s is not None
                and now - session.created_at > self.session_ttl_s
            ):
                reason = f"exceeded its {self.session_ttl_s:g}s lifetime"
            elif (
                self.session_idle_s is not None
                and now - session.last_used > self.session_idle_s
            ):
                reason = f"idle longer than {self.session_idle_s:g}s"
            if reason is not None:
                session.close()
                del self.sessions[sid]
                self.expired[sid] = reason
                while len(self.expired) > EXPIRED_MEMORY:
                    self.expired.popitem(last=False)

    def close_all(self) -> None:
        """Tear down every open session (server shutdown)."""
        with self._lock:
            for session in self.sessions.values():
                session.close()
            self.sessions.clear()

    def _get(self, params: dict) -> DebugSession:
        session_id = _param(params, "session", str)
        try:
            session = self.sessions[session_id]
        except KeyError:
            reason = self.expired.get(session_id)
            if reason is not None:
                raise SessionNotFound(
                    f"session {session_id!r} expired ({reason}); "
                    f"create a new one"
                ) from None
            raise SessionNotFound(f"no session {session_id!r}") from None
        session.last_used = self.clock()
        return session

    # -- misc ----------------------------------------------------------------
    def _ping(self, params: dict) -> dict:
        from repro import __version__

        return {"pong": True, "version": __version__}

    def _methods_list(self, params: dict) -> dict:
        return {"methods": sorted(self._methods)}

    # -- session management -------------------------------------------------
    def _session_create(self, params: dict) -> dict:
        if len(self.sessions) >= self.max_sessions:
            raise SessionLimit(
                f"session limit of {self.max_sessions} reached; close one first"
            )
        app = _param(params, "app", str, "fibonacci")
        if app not in ADAPTERS:
            raise InvalidParams(
                f"unknown app {app!r}; available: {sorted(ADAPTERS)}"
            )
        session_id = f"s{self._next_session}"
        self._next_session += 1
        session = DebugSession(
            session_id,
            app=app,
            power=_param(params, "power", str, "wisp"),
            seed=_param(params, "seed", int, 1),
            protect=_param(params, "protect", bool, False),
            iterations=_param(params, "iterations", int, 16),
            distance_m=_param(params, "distance_m", float, None),
            fading_sigma=_param(params, "fading_sigma", float, 0.0),
            sample_rate=_param(params, "sample_rate", float, None),
        )
        # Budget bookkeeping is the service's (it owns the clock).
        session.created_at = session.last_used = self.clock()
        self.sessions[session_id] = session
        return session.describe()

    def _session_list(self, params: dict) -> dict:
        return {
            "sessions": [
                self.sessions[sid].describe() for sid in sorted(self.sessions)
            ]
        }

    def _session_close(self, params: dict) -> dict:
        session = self._get(params)
        session.close()
        del self.sessions[session.id]
        return {"closed": session.id}

    def _session_status(self, params: dict) -> dict:
        return self._get(params).describe()

    # -- breakpoints ----------------------------------------------------------
    def _break_add_code(self, params: dict) -> dict:
        session = self._get(params)
        bp = session.edb.break_at(
            _param(params, "id", int), one_shot=_param(params, "one_shot", bool, False)
        )
        return {"handle": session.register(bp), "breakpoint": bp.describe()}

    def _break_add_energy(self, params: dict) -> dict:
        session = self._get(params)
        bp = session.edb.break_on_energy(
            _param(params, "threshold_v", float),
            one_shot=_param(params, "one_shot", bool, False),
        )
        return {"handle": session.register(bp), "breakpoint": bp.describe()}

    def _break_add_combined(self, params: dict) -> dict:
        session = self._get(params)
        bp = session.edb.break_combined(
            _param(params, "id", int),
            _param(params, "threshold_v", float),
            one_shot=_param(params, "one_shot", bool, False),
        )
        return {"handle": session.register(bp), "breakpoint": bp.describe()}

    def _break_set_enabled(self, params: dict) -> dict:
        session = self._get(params)
        bp = session.lookup(_param(params, "handle", int))
        bp.enabled = _param(params, "enabled", bool)
        return {"handle": params["handle"], "breakpoint": bp.describe()}

    def _break_remove(self, params: dict) -> dict:
        session = self._get(params)
        handle = _param(params, "handle", int)
        bp = session.lookup(handle)
        removed = session.edb.breakpoints.remove(bp)
        del session.handles[handle]
        return {"handle": handle, "removed": removed}

    def _break_list(self, params: dict) -> dict:
        session = self._get(params)
        return {
            "breakpoints": [
                {
                    "handle": handle,
                    "kind": bp.kind.value,
                    "id": bp.breakpoint_id,
                    "threshold_v": bp.energy_threshold,
                    "enabled": bp.enabled,
                    "one_shot": bp.one_shot,
                    "hits": bp.hits,
                }
                for handle, bp in sorted(session.handles.items())
            ]
        }

    def _break_on_hit(self, params: dict) -> dict:
        """Install the scripted per-stop action list (replaces any prior).

        Breakpoints are serviced synchronously *inside* ``run`` — the
        wire client cannot be consulted mid-run — so the inspect/charge
        steps a console user would type into a live session are sent up
        front and executed in the breakpoint's
        :class:`InteractiveSession`, exactly as a console ``on_break``
        handler would.  ``break.log`` returns the per-stop transcripts.
        """
        session = self._get(params)
        actions = params.get("actions", [])
        if not isinstance(actions, list):
            raise InvalidParams('"actions" must be a list of action objects')
        session.break_actions = [_BreakAction(spec) for spec in actions]
        return {"actions": len(session.break_actions)}

    def _break_log(self, params: dict) -> dict:
        session = self._get(params)
        cursor = _param(params, "cursor", int, 0)
        if cursor < 0:
            raise InvalidParams('"cursor" must be >= 0')
        stops = session.break_log[cursor:]
        return {
            "stops": _jsonable(stops),
            "next_cursor": cursor + len(stops),
        }

    # -- raw-PC watches -------------------------------------------------------
    def _watch_pc(self, params: dict) -> dict:
        session = self._get(params)
        pc = _param(params, "pc", int)
        session.edb.watch_pc(pc)
        return {"pc": pc & 0xFFFF, "watched": True}

    def _unwatch_pc(self, params: dict) -> dict:
        session = self._get(params)
        pc = _param(params, "pc", int)
        session.edb.unwatch_pc(pc)
        return {"pc": pc & 0xFFFF, "watched": False}

    def _watch_set_enabled(self, params: dict) -> dict:
        """Console ``watch en|dis <id>``: mask a watchpoint id."""
        session = self._get(params)
        wp_id = _param(params, "id", int)
        enabled = _param(params, "enabled", bool)
        disabled = session.edb.monitor.disabled_watchpoints
        if enabled:
            disabled.discard(wp_id)
        else:
            disabled.add(wp_id)
        return {"id": wp_id, "enabled": enabled}

    # -- energy manipulation ---------------------------------------------------
    def _energy_charge(self, params: dict) -> dict:
        session = self._get(params)
        return {"vcap": session.edb.charge(self._volts(params))}

    def _energy_discharge(self, params: dict) -> dict:
        session = self._get(params)
        return {"vcap": session.edb.discharge(self._volts(params))}

    @staticmethod
    def _volts(params: dict) -> float:
        volts = _param(params, "volts", float)
        if not 0.0 <= volts <= 5.5:
            raise InvalidParams(f"volts {volts} out of range 0..5.5")
        return volts

    def _energy_vcap(self, params: dict) -> dict:
        session = self._get(params)
        power = session.device.power
        return {
            "vcap": power.vcap,
            "vreg": power.vreg,
            "state": power.state.value,
            "tethered": power.is_tethered,
        }

    # -- memory / registers (console-initiated sessions) ---------------------
    def _mem_read(self, params: dict) -> dict:
        session = self._get(params)
        address = _param(params, "address", int)
        count = _param(params, "count", int, 2)
        if count < 1:
            raise InvalidParams('"count" must be >= 1')
        data = session.in_session(lambda s: s.read_bytes(address, count))
        return {"address": address, "hex": data.hex()}

    def _mem_write(self, params: dict) -> dict:
        session = self._get(params)
        address = _param(params, "address", int)
        if "value" in params:
            value = _param(params, "value", int)
            session.in_session(lambda s: s.write_u16(address, value))
            return {"address": address, "written": 2}
        data_hex = _param(params, "data", str)
        try:
            data = bytes.fromhex(data_hex)
        except ValueError:
            raise InvalidParams(f'"data" is not valid hex: {data_hex!r}') from None
        if not data:
            raise InvalidParams('"data" must not be empty')
        session.in_session(lambda s: s.write_bytes(address, data))
        return {"address": address, "written": len(data)}

    def _regs_read(self, params: dict) -> dict:
        session = self._get(params)
        return {"registers": session.in_session(lambda s: s.registers())}

    # -- passive tracing -------------------------------------------------------
    def _trace_enable(self, params: dict) -> dict:
        session = self._get(params)
        stream = _param(params, "stream", str)
        try:
            session.edb.trace(stream)
        except ValueError as exc:
            raise InvalidParams(str(exc)) from None
        return {"stream": stream, "enabled": True}

    def _trace_disable(self, params: dict) -> dict:
        session = self._get(params)
        stream = _param(params, "stream", str)
        session.edb.untrace(stream)
        return {"stream": stream, "enabled": False}

    def _trace_poll(self, params: dict) -> dict:
        """Cursor-based incremental read of the monitor's event list.

        The cursor indexes the session's unified event list (all
        streams), so repeated polls see every event exactly once, in
        order, regardless of the optional ``stream`` filter (filtering
        happens after the slice; the cursor still advances over the
        filtered-out events).
        """
        session = self._get(params)
        cursor = _param(params, "cursor", int, 0)
        limit = _param(params, "limit", int, 1024)
        stream = _param(params, "stream", str, None)
        if cursor < 0:
            raise InvalidParams('"cursor" must be >= 0')
        if limit < 1:
            raise InvalidParams('"limit" must be >= 1')
        events = session.edb.monitor.events
        window = events[cursor : cursor + limit]
        out = [
            {
                "time": e.time,
                "stream": e.stream,
                "value": _jsonable(e.value),
                "vcap": e.vcap,
            }
            for e in window
            if stream is None or e.stream == stream
        ]
        next_cursor = cursor + len(window)
        return {
            "events": out,
            "next_cursor": next_cursor,
            "remaining": max(0, len(events) - next_cursor),
        }

    # -- execution --------------------------------------------------------------
    def _run(self, params: dict) -> dict:
        session = self._get(params)
        duration = _param(params, "duration", float)
        if duration <= 0:
            raise InvalidParams('"duration" must be > 0')
        max_cycles = _param(params, "max_cycles", int, DEFAULT_MAX_CYCLES)
        max_wall_s = _param(params, "max_wall_s", float, 0.0)
        with RunWatchdog(session.device, max_cycles, max_wall_s):
            result = session.executor.run(
                duration=duration,
                stop_on_fault=_param(params, "stop_on_fault", bool, False),
            )
        return {
            "status": result.status.value,
            "sim_time": result.sim_time,
            "boots": result.boots,
            "reboots": result.reboots,
            "faults": list(result.faults),
            "first_fault_time": result.first_fault_time,
            "detail": _jsonable(result.detail),
            "vcap": session.device.power.vcap,
        }

    def _emulate(self, params: dict) -> dict:
        from repro.core.emulation import IntermittenceEmulator

        session = self._get(params)
        cycles = _param(params, "cycles", int)
        if cycles < 1:
            raise InvalidParams('"cycles" must be >= 1')
        turn_on = _param(params, "turn_on_voltage", float, 2.4)
        max_cycles = _param(params, "max_cycles", int, DEFAULT_MAX_CYCLES)
        emulator = IntermittenceEmulator(session.edb, session.program)
        emulator.api = session.executor.api  # share the program's statics
        emulator._flashed = session.executor._flashed
        with RunWatchdog(session.device, max_cycles, 0.0):
            result = emulator.run(cycles=cycles, turn_on_voltage=turn_on)
        session.executor._flashed = True
        return {
            "cycles": [
                {
                    "index": c.index,
                    "turn_on_voltage": c.turn_on_voltage,
                    "start_time": c.start_time,
                    "active_time": c.active_time,
                    "outcome": c.outcome,
                    "detail": _jsonable(c.detail),
                }
                for c in result.cycles
            ],
            "outcome": result.outcome,
            "brownouts": result.count("brownout"),
            "faults": result.count("fault"),
        }

    # -- fault root-cause -------------------------------------------------------
    def _divergence_context(self, params: dict) -> dict:
        session = self._get(params)
        tail = _param(params, "tail", int, 64)
        if tail < 1:
            raise InvalidParams('"tail" must be >= 1')
        return session.edb.divergence_context(tail=tail)


def make_console(session: DebugSession, echo=None) -> DebugConsole:
    """A Table-1 console bound to a server session (debug/REPL helper)."""
    return DebugConsole(session.edb, executor=session.executor, echo=echo)
