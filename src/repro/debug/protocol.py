"""JSON-RPC 2.0 framing: newline-delimited JSON, one message per line.

Both transports (stdio and TCP) speak the same wire format: each
request and each response is a single ``\\n``-terminated JSON object.
This module owns envelope parsing/validation and response construction;
it knows nothing about sessions or the simulator.

Batch requests (a JSON array) are accepted per the spec and answered
with an array of responses.  Notifications (requests without an ``id``)
are executed but produce no response, again per the spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.debug.errors import InvalidRequest, ParseError, RpcError

JSONRPC_VERSION = "2.0"


@dataclass(frozen=True)
class Request:
    """One validated JSON-RPC request."""

    method: str
    params: dict[str, Any] = field(default_factory=dict)
    id: Any = None
    is_notification: bool = False


def parse_request(obj: Any) -> Request:
    """Validate one request object (already JSON-decoded).

    Raises :class:`InvalidRequest` on envelope violations and
    :class:`~repro.debug.errors.InvalidParams`-adjacent problems are
    left to the method layer — here only the JSON-RPC envelope is
    checked.
    """
    if not isinstance(obj, dict):
        raise InvalidRequest(f"request must be an object, got {type(obj).__name__}")
    if obj.get("jsonrpc") != JSONRPC_VERSION:
        raise InvalidRequest('missing/invalid "jsonrpc" (must be "2.0")')
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise InvalidRequest('"method" must be a non-empty string')
    params = obj.get("params", {})
    if params is None:
        params = {}
    if isinstance(params, list):
        # Positional params are legal JSON-RPC but every method here is
        # keyword-based; reject early with a clear message.
        raise InvalidRequest("positional params unsupported; pass an object")
    if not isinstance(params, dict):
        raise InvalidRequest('"params" must be an object')
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise InvalidRequest('"id" must be a string or number')
    return Request(
        method=method,
        params=params,
        id=request_id,
        is_notification="id" not in obj,
    )


def decode_line(line: str) -> Any:
    """Decode one wire line to a JSON value (request or batch)."""
    try:
        return json.loads(line)
    except ValueError as exc:
        raise ParseError(f"invalid JSON: {exc}") from None


def result_response(request_id: Any, result: Any) -> dict:
    """A successful JSON-RPC response object."""
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_response(request_id: Any, error: RpcError) -> dict:
    """A JSON-RPC error response object (``id`` may be ``None``)."""
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error.to_object()}


def encode(message: Any) -> str:
    """Serialise one response (or batch) to a single wire line.

    ``sort_keys`` keeps output deterministic — responses diff cleanly
    in tests and transcripts.
    """
    return json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
