"""Programmatic debug-server interface over the simulated EDB.

The paper's Table 1 console is one *user* of the debugger; this package
makes the same capability available to external tools and agents as a
long-lived JSON-RPC 2.0 server (newline-delimited JSON over stdio or
TCP) with explicit session management:

- :mod:`repro.debug.protocol` — JSON-RPC 2.0 framing and validation;
- :mod:`repro.debug.errors` — the error-code taxonomy;
- :mod:`repro.debug.service` — transport-independent sessions and
  method dispatch (`session.create`, `break.add_code`, `trace.poll`,
  `run`, ...);
- :mod:`repro.debug.server` — the ``python -m repro.debug.server``
  entry point serving stdio or multi-client TCP;
- :mod:`repro.debug.client` — a thin typed client
  (:class:`~repro.debug.client.DebugClient`).

Every target-side access (memory reads/writes, register dumps) routes
through a console-initiated :class:`~repro.core.session.InteractiveSession`,
so protocol cycles are costed exactly as the interactive console costs
them — the RPC surface changes who drives the debugger, not what the
target observes.
"""

from repro.debug.client import DebugClient, DebugRpcError, RemoteSession
from repro.debug.errors import RpcError, SessionLost
from repro.debug.service import DebugService

__all__ = [
    "DebugClient",
    "DebugRpcError",
    "DebugService",
    "RemoteSession",
    "RpcError",
    "SessionLost",
]
