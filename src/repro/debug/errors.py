"""JSON-RPC error taxonomy for the debug server.

The standard JSON-RPC 2.0 codes cover transport/envelope problems; the
``-320xx`` range carries the debugger's own failure modes.  Every error
a method raises is an :class:`RpcError` subclass, so the dispatcher can
turn *any* failure into a well-formed error object instead of killing
the server (or the connection).
"""

from __future__ import annotations

from typing import Any

# Standard JSON-RPC 2.0 codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# Implementation-defined codes (server errors: -32000..-32099).
TARGET_ERROR = -32000  # the simulated target/debugger raised
SESSION_NOT_FOUND = -32001
UNKNOWN_HANDLE = -32002
SESSION_LIMIT = -32003


class RpcError(Exception):
    """An error with a JSON-RPC code, ready to serialise."""

    code = INTERNAL_ERROR

    def __init__(self, message: str, data: Any = None) -> None:
        super().__init__(message)
        self.message = message
        self.data = data

    def to_object(self) -> dict:
        """The JSON-RPC ``error`` member for a response."""
        obj: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.data is not None:
            obj["data"] = self.data
        return obj


class ParseError(RpcError):
    code = PARSE_ERROR


class InvalidRequest(RpcError):
    code = INVALID_REQUEST


class MethodNotFound(RpcError):
    code = METHOD_NOT_FOUND


class InvalidParams(RpcError):
    code = INVALID_PARAMS


class InternalError(RpcError):
    code = INTERNAL_ERROR


class TargetError(RpcError):
    """The simulated debugger/target failed executing the method."""

    code = TARGET_ERROR

    @classmethod
    def wrap(cls, exc: BaseException) -> "TargetError":
        return cls(f"{type(exc).__name__}: {exc}")


class SessionNotFound(RpcError):
    code = SESSION_NOT_FOUND


class UnknownHandle(RpcError):
    code = UNKNOWN_HANDLE


class SessionLimit(RpcError):
    code = SESSION_LIMIT


class SessionLost(ConnectionError):
    """The transport under a client died mid-conversation.

    Not an :class:`RpcError`: no server answered — the connection
    dropped, a response timed out, or framing desynchronised.  It
    subclasses :class:`ConnectionError` so existing ``except
    ConnectionError`` callers keep working, while new callers can
    distinguish a lost transport (reconnect, new session) from a
    server-reported failure (``DebugRpcError``).  Once a client raises
    this, the connection is dead: every later call fails fast with the
    same error instead of blocking on a corpse.
    """
