"""Seed-derived host-fault plans: the chaos campaign's randomness.

The campaign's fault axes (brown-out placement, environment, FRAM
corruption) attack the *guest*; a :class:`HostFaultPlan` attacks the
**host tooling itself** — the journal file, the snapshot payloads, the
debug server's wire.  Plans are drawn exactly like every other fault
axis in this codebase: from one ``random.Random`` seeded by
:func:`repro.sim.rng.derive_seed`, so a chaos run is replayable from
its master seed alone and adding a new axis never perturbs the draws
of existing ones.

Axes (each independently enable-able):

- ``journal_tear`` — truncate the journal at a fractional byte offset,
  the on-disk signature of a host killed mid-``write``;
- ``journal_corrupt`` — flip one bit at a fractional byte offset, the
  signature of a failing disk or a concurrent writer;
- ``journal_enospc`` — the journal's backing stream starts refusing
  writes after N lines (disk full / revoked permissions);
- ``snapshot_corrupt`` — rot one captured snapshot in memory (every
  ``snapshot_period``-th capture), which the restore-time checksum
  must catch;
- ``rpc_corrupt`` / ``rpc_truncate`` / ``rpc_drop`` / ``rpc_stall`` —
  damage the debug client's wire: flip a byte in request N, send
  request N without its terminating newline, drop the connection
  instead of sending request N, or stall for ``rpc_stall_s`` before
  request N.

The plan only *decides*; the injectors in
:mod:`repro.resilience.chaosio` and :mod:`repro.resilience.transport`
carry the decisions out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.rng import derive_seed

#: Every host-fault axis a plan can draw.  Order is meaningful only as
#: documentation; draws happen unconditionally for *all* axes so the
#: seed->plan mapping is stable under any axis subset.
HOST_FAULT_AXES = (
    "journal_tear",
    "journal_corrupt",
    "journal_enospc",
    "snapshot_corrupt",
    "rpc_corrupt",
    "rpc_truncate",
    "rpc_drop",
    "rpc_stall",
)


@dataclass(frozen=True)
class RpcFaultPlan:
    """Wire-level faults for one debug-client connection.

    Requests are numbered from 1 in transport order.  ``None`` means
    the axis never fires on this connection.
    """

    corrupt_request: int | None = None
    corrupt_byte_frac: float = 0.0  # position within the line, 0..1
    corrupt_bit: int = 0
    truncate_request: int | None = None
    truncate_frac: float = 0.5  # keep this fraction of the line
    drop_request: int | None = None
    stall_request: int | None = None
    stall_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (chaos-suite reports and golden files)."""
        return {
            "corrupt_request": self.corrupt_request,
            "corrupt_byte_frac": self.corrupt_byte_frac,
            "corrupt_bit": self.corrupt_bit,
            "truncate_request": self.truncate_request,
            "truncate_frac": self.truncate_frac,
            "drop_request": self.drop_request,
            "stall_request": self.stall_request,
            "stall_s": self.stall_s,
        }


@dataclass(frozen=True)
class HostFaultPlan:
    """The materialised host-fault decisions of one chaos run."""

    seed: int
    axes: tuple[str, ...]
    #: Fractional byte offset to truncate the journal at (``journal_tear``).
    journal_tear_frac: float | None = None
    #: Fractional byte offset / bit to flip (``journal_corrupt``).
    journal_flip_frac: float | None = None
    journal_flip_bit: int = 0
    #: The journal stream refuses writes after this many lines
    #: (``journal_enospc``).
    journal_fail_after: int | None = None
    #: Corrupt every Nth snapshot capture (``snapshot_corrupt``).
    snapshot_period: int | None = None
    rpc: RpcFaultPlan = RpcFaultPlan()

    def enabled(self, axis: str) -> bool:
        return axis in self.axes

    def to_dict(self) -> dict:
        """JSON-ready form (chaos-suite reports and golden files)."""
        return {
            "seed": self.seed,
            "axes": list(self.axes),
            "journal_tear_frac": self.journal_tear_frac,
            "journal_flip_frac": self.journal_flip_frac,
            "journal_flip_bit": self.journal_flip_bit,
            "journal_fail_after": self.journal_fail_after,
            "snapshot_period": self.snapshot_period,
            "rpc": self.rpc.to_dict(),
        }


def plan_host_faults(
    seed: int, axes: tuple[str, ...] = HOST_FAULT_AXES
) -> HostFaultPlan:
    """Draw one chaos run's host-fault plan from the master seed.

    Every axis is drawn unconditionally in a fixed order — disabled
    axes simply discard their draws — so enabling or disabling an axis
    never changes what the other axes do for the same seed (the same
    discipline as :func:`repro.campaign.faults.plan_faults`).
    """
    unknown = set(axes) - set(HOST_FAULT_AXES)
    if unknown:
        raise ValueError(
            f"unknown host-fault axes {sorted(unknown)}; "
            f"have {list(HOST_FAULT_AXES)}"
        )
    rng = random.Random(derive_seed(seed, "host-faults"))
    tear_frac = round(rng.uniform(0.05, 0.98), 6)
    flip_frac = round(rng.uniform(0.05, 0.98), 6)
    flip_bit = rng.randint(0, 7)
    fail_after = rng.randint(1, 8)
    snapshot_period = rng.randint(2, 6)
    rpc_draws = {
        "corrupt_request": rng.randint(2, 6),
        "corrupt_byte_frac": round(rng.uniform(0.1, 0.9), 6),
        "corrupt_bit": rng.randint(0, 7),
        "truncate_request": rng.randint(2, 6),
        "truncate_frac": round(rng.uniform(0.2, 0.8), 6),
        "drop_request": rng.randint(2, 6),
        "stall_request": rng.randint(2, 6),
        "stall_s": round(rng.uniform(0.05, 0.5), 6),
    }
    enabled = set(axes)
    rpc = RpcFaultPlan(
        corrupt_request=(
            rpc_draws["corrupt_request"] if "rpc_corrupt" in enabled else None
        ),
        corrupt_byte_frac=rpc_draws["corrupt_byte_frac"],
        corrupt_bit=rpc_draws["corrupt_bit"],
        truncate_request=(
            rpc_draws["truncate_request"] if "rpc_truncate" in enabled else None
        ),
        truncate_frac=rpc_draws["truncate_frac"],
        drop_request=(
            rpc_draws["drop_request"] if "rpc_drop" in enabled else None
        ),
        stall_request=(
            rpc_draws["stall_request"] if "rpc_stall" in enabled else None
        ),
        stall_s=rpc_draws["stall_s"],
    )
    return HostFaultPlan(
        seed=seed,
        axes=tuple(a for a in HOST_FAULT_AXES if a in enabled),
        journal_tear_frac=tear_frac if "journal_tear" in enabled else None,
        journal_flip_frac=flip_frac if "journal_corrupt" in enabled else None,
        journal_flip_bit=flip_bit,
        journal_fail_after=(
            fail_after if "journal_enospc" in enabled else None
        ),
        snapshot_period=(
            snapshot_period if "snapshot_corrupt" in enabled else None
        ),
        rpc=rpc,
    )
