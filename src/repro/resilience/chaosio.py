"""Host-fault injectors for artifacts: journals and snapshots.

Two kinds of damage, matching the two ways a host artifact rots:

- **At-rest damage** to a file that already exists —
  :func:`tear_file` (the torn tail of a host killed mid-write) and
  :func:`flip_bit` (a failing disk, a concurrent writer).  The
  journal-aware wrappers :func:`tear_journal` / :func:`corrupt_journal`
  aim inside the *body* so the damage exercises quarantine-and-resume
  rather than the (fatal, and separately tested) header mismatch.
- **In-flight damage** while the artifact is being produced —
  :class:`ChaosJournalWriter` makes the journal's backing file start
  refusing writes after N lines, tearing the line it dies inside
  (disk-full semantics), and :func:`chaos_capture` wraps
  :func:`repro.snapshot.capture` so every Nth snapshot rots in memory
  after its checksum is taken.

All randomness comes from ``random.Random`` instances the caller seeds
via :func:`repro.sim.rng.derive_seed` (usually through a
:class:`~repro.resilience.plan.HostFaultPlan`), so every injected fault
is replayable from the master seed.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Callable

from repro.campaign.config import CampaignConfig
from repro.campaign.journal import JournalWriter, frame_line
from repro.resilience.plan import HostFaultPlan
from repro.sim.rng import derive_seed
from repro.snapshot import DeviceSnapshot, capture


def _resolve_offset(size: int, at: int | float, lo: int = 0) -> int:
    """Turn an absolute or fractional position into a byte offset."""
    if isinstance(at, float):
        offset = lo + int((size - lo) * at)
    else:
        offset = at
    return max(lo, min(size - 1, offset)) if size else 0


def tear_file(path: str | Path, at: int | float) -> int:
    """Truncate ``path`` at ``at`` (byte offset, or fraction of size).

    Returns the offset torn at.  This is the exact on-disk signature of
    a process killed inside a buffered write: everything before the
    offset intact, everything after gone, the final line unterminated.
    """
    path = Path(path)
    size = path.stat().st_size
    offset = _resolve_offset(size, at)
    with path.open("r+b") as fh:
        fh.truncate(offset)
    return offset


def flip_bit(path: str | Path, at: int | float, bit: int = 0) -> int:
    """Flip one bit of ``path`` in place; returns the byte offset.

    ``at`` is a byte offset or a fraction of the file size; ``bit``
    selects the bit within that byte.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"cannot flip a bit in empty file {path}")
    offset = _resolve_offset(size, at)
    with path.open("r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)[0]
        fh.seek(offset)
        fh.write(bytes([byte ^ (1 << (bit & 7))]))
    return offset


def _body_start(path: Path) -> int:
    """Byte offset of the first journal body line (past the header)."""
    with path.open("rb") as fh:
        header = fh.readline()
    return len(header)


def tear_journal(path: str | Path, frac: float) -> int:
    """Tear a journal within its *body* (the header stays intact).

    ``frac`` positions the tear within the body region.  A torn header
    is a different (fatal, and separately tested) failure —
    :class:`~repro.campaign.journal.JournalMismatch` — so chaos tears
    aim where quarantine-and-resume is the contract.
    """
    path = Path(path)
    lo = _body_start(path)
    size = path.stat().st_size
    if size <= lo:
        return size  # header-only journal: nothing to tear
    offset = _resolve_offset(size, frac, lo=lo + 1)
    with path.open("r+b") as fh:
        fh.truncate(offset)
    return offset


def corrupt_journal(path: str | Path, frac: float, bit: int = 0) -> int | None:
    """Flip one body bit of a journal; returns the offset (None if empty)."""
    path = Path(path)
    lo = _body_start(path)
    size = path.stat().st_size
    if size <= lo:
        return None
    offset = _resolve_offset(size, frac, lo=lo)
    return flip_bit(path, offset, bit)


class ChaosJournalWriter(JournalWriter):
    """A journal writer whose disk fills up mid-campaign.

    After ``fail_after`` successfully written lines (the header counts
    as the first), the next write tears mid-line — a prefix of the
    frame lands on disk — and raises ``OSError`` with disk-full
    semantics.  :meth:`JournalWriter.chunk_done` downgrades that to a
    :class:`~repro.campaign.errors.CampaignWarning` and the campaign
    continues in memory; a later ``--resume`` newline-terminates the
    torn debris, quarantines it, and re-executes the lost runs.
    """

    def __init__(
        self,
        path: str | Path,
        config: CampaignConfig,
        fail_after: int,
        *,
        tear_frac: float = 0.5,
        fresh: bool = True,
        fsync: bool = False,
    ) -> None:
        if fail_after < 1:
            raise ValueError("fail_after must be >= 1 (the header must land)")
        self.fail_after = fail_after
        self.tear_frac = tear_frac
        self.lines_written = 0
        super().__init__(path, config, fresh, fsync=fsync)

    @classmethod
    def from_plan(
        cls,
        path: str | Path,
        config: CampaignConfig,
        plan: HostFaultPlan,
        *,
        fresh: bool = True,
        fsync: bool = False,
    ) -> "ChaosJournalWriter | JournalWriter":
        """The plan's journal writer: chaotic iff ``journal_enospc`` drew."""
        if plan.journal_fail_after is None:
            return JournalWriter(path, config, fresh, fsync=fsync)
        return cls(
            path,
            config,
            plan.journal_fail_after,
            fresh=fresh,
            fsync=fsync,
        )

    def _write_line(self, payload: dict) -> None:
        if self.lines_written >= self.fail_after:
            frame = frame_line(payload)
            keep = max(1, int(len(frame) * self.tear_frac))
            self._file.write(frame[:keep])
            self._file.flush()
            raise OSError(28, "No space left on device (injected)")
        super()._write_line(payload)
        self.lines_written += 1


def corrupt_snapshot(snap: DeviceSnapshot, rng: random.Random) -> dict:
    """Flip one memory-page bit of a captured snapshot, in place.

    Models post-capture rot (a host memory error, a torn spill).  The
    flip lands *after* the capture-time checksum was taken, so a
    subsequent :func:`repro.snapshot.restore` must refuse with
    :class:`~repro.snapshot.SnapshotIntegrityError`.  Returns where the
    flip landed (for assertions and logs).
    """
    names = [
        name
        for name in sorted(snap.memory_pages)
        if any(len(page) for page in snap.memory_pages[name])
    ]
    if not names:
        raise ValueError("snapshot has no memory pages to corrupt")
    name = rng.choice(names)
    pages = list(snap.memory_pages[name])
    index = rng.choice([i for i, page in enumerate(pages) if len(page)])
    page = bytearray(pages[index])
    offset = rng.randrange(len(page))
    bit = rng.randrange(8)
    page[offset] ^= 1 << bit
    pages[index] = bytes(page)
    snap.memory_pages = {**snap.memory_pages, name: tuple(pages)}
    return {"region": name, "page": index, "offset": offset, "bit": bit}


def chaos_capture(
    plan: HostFaultPlan,
    base_capture: Callable = capture,
) -> Callable:
    """A drop-in for :func:`repro.snapshot.capture` that rots snapshots.

    Every ``plan.snapshot_period``-th capture is corrupted (via
    :func:`corrupt_snapshot`, seeded from the plan) after its checksum
    is taken.  With the ``snapshot_corrupt`` axis disabled this is a
    transparent pass-through.  Intended for monkeypatching the fork
    engine's capture path in the chaos suite; the restore-time checksum
    plus the fork engine's from-reset fallback must keep the campaign
    report byte-identical regardless.
    """
    rng = random.Random(derive_seed(plan.seed, "snapshot-rot"))
    state = {"captures": 0}

    def wrapped(device, tracker=None):
        snap = base_capture(device, tracker)
        state["captures"] += 1
        if (
            plan.snapshot_period
            and state["captures"] % plan.snapshot_period == 0
        ):
            corrupt_snapshot(snap, rng)
        return snap

    return wrapped
