"""Wire-fault injection for the debug client's transport.

A :class:`ChaosTransport` sits between a
:class:`~repro.debug.client.DebugClient` and its real byte stream,
damaging the *request* path according to an
:class:`~repro.resilience.plan.RpcFaultPlan`:

- **corrupt** — one character of request N is bit-flipped, so the
  server sees garbage (or a differently-shaped request) and must
  answer with a JSON-RPC error instead of dying;
- **truncate** — request N is sent without its terminating newline,
  so it merges with request N+1 into one garbage line (the
  line-oriented protocol's version of a partial write);
- **drop** — the connection is closed instead of sending request N,
  the client-visible signature of a server reboot or a network cut;
- **stall** — request N is delayed by ``stall_s`` before sending,
  which a client-side per-request timeout must bound.

The server-facing contract these faults probe: **no wire input may
kill the server or leak a session**; the client-facing contract:
transport failures surface as typed errors
(:class:`~repro.debug.errors.SessionLost` / ``DebugRpcError``), never
as hangs or interpreter-level exceptions.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.debug.client import DebugClient
from repro.resilience.plan import RpcFaultPlan


class ChaosTransport:
    """Fault-injecting wrapper around (send, recv, close) callables."""

    def __init__(
        self,
        send_line: Callable[[str], None],
        recv_line: Callable[[], str],
        close: Callable[[], None],
        plan: RpcFaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._send = send_line
        self._recv = recv_line
        self._close = close
        self.plan = plan
        self.requests = 0
        self.dropped = False
        self.injected: list[str] = []
        self._sleep = sleep

    def send(self, line: str) -> None:
        self.requests += 1
        n = self.requests
        plan = self.plan
        if self.dropped:
            raise ConnectionError("chaos: connection already dropped")
        if plan.stall_request == n and plan.stall_s > 0:
            self.injected.append(f"stall:{n}")
            self._sleep(plan.stall_s)
        if plan.drop_request == n:
            self.injected.append(f"drop:{n}")
            self.dropped = True
            self._close()
            raise ConnectionError(
                f"chaos: connection dropped before request {n}"
            )
        if plan.truncate_request == n:
            self.injected.append(f"truncate:{n}")
            body = line.rstrip("\n")
            keep = max(1, int(len(body) * plan.truncate_frac))
            self._send(body[:keep])  # no newline: merges into the next line
            return
        if plan.corrupt_request == n:
            self.injected.append(f"corrupt:{n}")
            body = line.rstrip("\n")
            index = min(
                len(body) - 1,
                max(0, int(len(body) * plan.corrupt_byte_frac)),
            )
            flipped = chr((ord(body[index]) ^ (1 << plan.corrupt_bit)) & 0x7F)
            if flipped == "\n":  # keep the damage inside one line
                flipped = "\x00"
            self._send(body[:index] + flipped + body[index + 1 :] + "\n")
            return
        self._send(line)

    def recv(self) -> str:
        if self.dropped:
            return ""  # what a real read on a dead socket yields
        return self._recv()

    def close(self) -> None:
        if not self.dropped:
            self._close()
        self.dropped = True


def chaos_client(client: DebugClient, plan: RpcFaultPlan) -> DebugClient:
    """Interpose a :class:`ChaosTransport` onto an existing client.

    Returns a new :class:`DebugClient` sharing the original's byte
    stream but with the plan's wire faults injected; the transport is
    exposed as ``.transport`` for assertions.  Close the returned
    client (not the original) when done.
    """
    transport = ChaosTransport(
        client._send_line, client._recv_line, client._close, plan
    )
    wrapped = DebugClient(transport.send, transport.recv, transport.close)
    wrapped.transport = transport
    return wrapped
