"""Host-fault resilience: deterministic chaos injection for the tooling.

The campaign engine and debug server promise determinism and
byte-identical reports *for the guest's faults*; this package attacks
the **host side** of that promise — the journal file, the snapshot
payloads, the debug server's wire — with faults that are themselves
seed-derived and replayable:

- :mod:`repro.resilience.plan` — :class:`HostFaultPlan` /
  :func:`plan_host_faults`: one seed-derived decision record per chaos
  run, drawn with the same fixed-order discipline as the campaign's
  guest-fault axes;
- :mod:`repro.resilience.chaosio` — journal tears, bit flips,
  disk-full writers, snapshot rot;
- :mod:`repro.resilience.transport` — corrupted / truncated / dropped
  / stalled debug-client requests.

The recovery machinery it exercises lives with the artifacts it
protects: CRC framing and quarantine in
:mod:`repro.campaign.journal`, restore-time checksums in
:mod:`repro.snapshot`, bounded parsing and session reaping in
:mod:`repro.debug`.  The chaos suite (``tests/test_resilience.py``)
asserts the end-to-end contract: a campaign that survived injected
host faults produces a report **byte-identical** to a fault-free run,
and no wire input kills the debug server.  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.chaosio import (
    ChaosJournalWriter,
    chaos_capture,
    corrupt_journal,
    corrupt_snapshot,
    flip_bit,
    tear_file,
    tear_journal,
)
from repro.resilience.plan import (
    HOST_FAULT_AXES,
    HostFaultPlan,
    RpcFaultPlan,
    plan_host_faults,
)
from repro.resilience.transport import ChaosTransport, chaos_client

__all__ = [
    "HOST_FAULT_AXES",
    "ChaosJournalWriter",
    "ChaosTransport",
    "HostFaultPlan",
    "RpcFaultPlan",
    "chaos_capture",
    "chaos_client",
    "corrupt_journal",
    "corrupt_snapshot",
    "flip_bit",
    "plan_host_faults",
    "tear_file",
    "tear_journal",
]
