"""The differential oracle: intermittent vs continuous execution.

The paper's core observation is that intermittence bugs *cannot*
manifest on continuous power (§2, §3.1) — which is exactly what makes
continuous execution a sound reference: any schedule-invariant
observable that differs between an intermittent run and the same
program on continuous power is evidence of an intermittence bug.

The oracle is deliberately conservative about what counts as a
divergence, because a fault-injection campaign lives or dies by its
false-positive rate:

- only the adapter's ``invariant_keys`` are compared — observables
  that legitimately depend on the reboot schedule (progress counters,
  list lengths) never enter the comparison;
- a run that merely ran out of simulated time or energy, with clean
  memory and matching invariants, is *inconclusive*, not divergent —
  slow progress is the expected cost of intermittent power, not a bug;
- memory faults under intermittence are divergences only when the
  continuous control is fault-free (a program that crashes on a bench
  supply is just broken, not intermittence-broken).
"""

from __future__ import annotations

from dataclasses import dataclass, field

AGREE = "agree"
DIVERGED = "diverged"
INCONCLUSIVE = "inconclusive"
#: A watchdog budget expired before the workload finished — the run is
#: conservatively reported as possibly non-terminating (a livelock, or
#: just a budget set too tight), never as a divergence.
NONTERMINATING = "nonterminating"
#: The run never produced a comparable pair of observations; see
#: :mod:`repro.campaign.errors` for the structured error taxonomy.
ERROR = "error"

VERDICTS = (AGREE, DIVERGED, INCONCLUSIVE, NONTERMINATING, ERROR)


@dataclass(frozen=True)
class Observation:
    """What one execution leg looked like when it ended."""

    status: str
    faults: int
    boots: int
    reboots: int
    observables: dict
    detail: str | None = None

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "faults": self.faults,
            "boots": self.boots,
            "reboots": self.reboots,
            "observables": dict(self.observables),
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Verdict:
    """The oracle's ruling on one run."""

    verdict: str
    reason: str
    diff: dict = field(default_factory=dict)

    @property
    def diverged(self) -> bool:
        return self.verdict == DIVERGED

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "reason": self.reason,
            "diff": dict(self.diff),
        }


def compare(
    intermittent: Observation,
    continuous: Observation,
    invariant_keys: tuple[str, ...],
) -> Verdict:
    """Rule on one (intermittent, continuous) pair of observations."""
    if continuous.status == "nonterminating":
        # The *control* burned its whole budget: the workload does not
        # terminate even on continuous power, so no differential ruling
        # is possible — but surface the non-termination loudly instead
        # of filing it under the generic broken-control bucket.
        return Verdict(
            NONTERMINATING,
            f"continuous control exceeded its watchdog budget "
            f"({continuous.detail or 'no detail'}); the workload may "
            f"not terminate at all",
        )
    if continuous.faults or continuous.status != "completed":
        return Verdict(
            INCONCLUSIVE,
            f"continuous control did not complete cleanly "
            f"(status={continuous.status}, faults={continuous.faults})",
        )
    if intermittent.faults:
        return Verdict(
            DIVERGED,
            f"{intermittent.faults} memory fault(s) under intermittent "
            f"power, none under continuous power",
        )
    if intermittent.status == "assert_failed":
        return Verdict(
            DIVERGED, "invariant assertion failed under intermittent power"
        )
    diff = {
        key: {
            "intermittent": intermittent.observables.get(key),
            "continuous": continuous.observables.get(key),
        }
        for key in invariant_keys
        if intermittent.observables.get(key) != continuous.observables.get(key)
    }
    if diff:
        return Verdict(
            DIVERGED, "schedule-invariant observables differ", diff=diff
        )
    if intermittent.status == "nonterminating":
        # The watchdog unwound the leg.  Memory was clean and the
        # invariants matched at the cut point, so there is no evidence
        # of an intermittence bug — but unlike a plain timeout the run
        # burned its whole cycle/wall budget without finishing, which
        # deserves its own conservative verdict (possible livelock).
        return Verdict(
            NONTERMINATING,
            f"watchdog budget expired before the workload finished "
            f"({intermittent.detail or 'no detail'}); possible livelock",
        )
    if intermittent.status == "completed":
        return Verdict(AGREE, "completed with matching invariants")
    return Verdict(
        INCONCLUSIVE,
        f"intermittent run ended with {intermittent.status}; "
        f"invariants match but the workload did not finish",
    )
