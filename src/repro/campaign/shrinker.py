"""Delta-debugging shrinker for diverging reboot schedules.

A diverging run arrives with the full brown-out schedule the recorder
observed — often dozens of reboots, almost all of them irrelevant.  The
shrinker minimizes that schedule with the classic ddmin algorithm
[Zeller & Hildebrandt, TSE'02]: repeatedly try removing chunks of the
schedule, keep any candidate that still diverges when replayed on the
bench target, and tighten the granularity until no single entry can be
removed.

The result is the campaign's most valuable artefact: "this program
corrupts memory after a *single* reboot placed 247 operations into a
boot" is actionable in a way a 60-reboot trace never is — it is the
minimal schedule a developer replays under EDB to watch the bug happen.
"""

from __future__ import annotations

from typing import Callable


def ddmin(
    items: list[int],
    still_fails: Callable[[list[int]], bool],
    max_tests: int = 192,
) -> list[int]:
    """Minimize ``items`` while ``still_fails`` holds.

    ``still_fails(candidate)`` must return ``True`` when the candidate
    schedule still reproduces the divergence.  The caller guarantees
    ``still_fails(items)`` is ``True``; the result is 1-minimal up to
    the test budget (every test is a full bench replay, so the budget
    caps shrink cost on pathological schedules).
    """
    items = list(items)
    tests = 0

    def check(candidate: list[int]) -> bool:
        nonlocal tests
        tests += 1
        return still_fails(candidate)

    granularity = 2
    while len(items) >= 2 and tests < max_tests:
        chunk = max(1, (len(items) + granularity - 1) // granularity)
        subsets = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for skip in range(len(subsets)):
            if tests >= max_tests:
                break
            complement = [
                entry
                for j, subset in enumerate(subsets)
                if j != skip
                for entry in subset
            ]
            if complement and check(complement):
                items = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_schedule(
    schedule: list[int],
    still_fails: Callable[[list[int]], bool],
    max_tests: int = 192,
) -> list[int] | None:
    """Minimize a recorded schedule, or ``None`` if it does not replay.

    A schedule can fail to replay when the divergence depended on
    something the bench replay does not reproduce (a corruption flip,
    an energy-trajectory effect): the campaign reports such runs
    unshrunk rather than pretending the replay is faithful.

    A replay that *raises* (the candidate schedule drives the guest
    into territory the recorded run never visited) is treated exactly
    like one that does not reproduce: the candidate is rejected, and if
    even the full schedule raises the result is ``None``.  Shrinking is
    a post-pass over an already-complete record — it must never
    propagate an exception out of the campaign's final stretch.
    """
    if not schedule:
        return None

    def tolerant(candidate: list[int]) -> bool:
        try:
            return still_fails(candidate)
        except Exception:
            return False

    if not tolerant(list(schedule)):
        return None
    return ddmin(list(schedule), tolerant, max_tests=max_tests)
