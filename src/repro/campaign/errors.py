"""Structured error taxonomy for supervised campaign execution.

A campaign must never lose a run index: whatever goes wrong — the
guest program raising something the executor does not model, the
campaign engine itself misbehaving, a watchdog budget expiring, or a
worker process dying outright — the scheduler records exactly one
structured record for that index and keeps going.  The taxonomy is the
vocabulary those records use:

``guest_fault``
    The simulated application (or the simulation of it) raised an
    exception the run loop does not model.  The bug is on the guest
    side of the fence; the rest of the campaign is unaffected.
``host_fault``
    The campaign engine itself failed outside guest execution —
    planning, observation plumbing, record assembly.  These are *our*
    bugs; the CLI exits non-zero when any is present.
``budget_exceeded``
    A watchdog budget (simulated cycles or wall clock) expired outside
    a leg's own handling — e.g. a wall-clock alarm fired during the
    oracle or observation phase.  (A budget expiring *inside* a leg is
    handled more precisely: the leg ends with a ``nonterminating``
    status and the oracle rules ``NONTERMINATING``.)
``worker_lost``
    The worker process executing this run died (segfault, OOM kill,
    ``os._exit``) and retries with backoff plus chunk splitting
    quarantined the failure down to this index.

Error records are **deterministic** for a fixed seed: messages carry
exception types and text, never wall-clock times, PIDs, or memory
addresses, so a report containing error records is still byte-identical
across repetitions.
"""

from __future__ import annotations

from repro.campaign.config import CampaignConfig
from repro.campaign.oracle import ERROR
from repro.sim.rng import derive_seed

#: The four ways a run can fail outside the oracle's vocabulary.
GUEST_FAULT = "guest_fault"
HOST_FAULT = "host_fault"
BUDGET_EXCEEDED = "budget_exceeded"
WORKER_LOST = "worker_lost"

ERROR_KINDS = (GUEST_FAULT, HOST_FAULT, BUDGET_EXCEEDED, WORKER_LOST)

#: Error kinds that indicate the *engine* (not the workload) failed.
#: Their presence makes the CLI exit non-zero unconditionally.
HOST_SIDE_KINDS = (HOST_FAULT, WORKER_LOST)


class CampaignWarning(UserWarning):
    """A non-fatal host-side problem the campaign recovered from.

    Emitted (via :mod:`warnings`) for conditions that degrade
    durability or observability without threatening the report's
    correctness: a journal append failing mid-campaign, corrupted
    journal lines quarantined during a resume.  Warnings deliberately
    live *outside* the report, which stays byte-identical to a
    fault-free run.
    """


class RunError(Exception):
    """Base of the taxonomy; every subclass pins its ``kind``."""

    kind = HOST_FAULT

    def __init__(self, message: str, detail: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.detail = detail

    def to_dict(self) -> dict:
        """JSON-ready form for the run record."""
        return {
            "kind": self.kind,
            "message": self.message,
            "detail": self.detail,
        }

    @classmethod
    def wrap(cls, exc: BaseException, detail: str | None = None) -> "RunError":
        """Fold an arbitrary exception into this taxonomy entry.

        Already-classified errors pass through unchanged so a guest
        fault is never re-labelled a host fault by an outer guard.
        """
        if isinstance(exc, RunError):
            return exc
        return cls(f"{type(exc).__name__}: {exc}", detail=detail)


class GuestFault(RunError):
    """The simulated application failed in a way the run loop does not model."""

    kind = GUEST_FAULT


class HostFault(RunError):
    """The campaign engine failed outside guest execution."""

    kind = HOST_FAULT


class BudgetError(RunError):
    """A watchdog budget expired outside a leg's own handling."""

    kind = BUDGET_EXCEEDED


class WorkerLost(RunError):
    """The worker process executing this run died."""

    kind = WORKER_LOST


def error_record(
    config: CampaignConfig,
    index: int,
    error: RunError,
    plan: dict | None = None,
) -> dict:
    """One complete, report-ready record for a run that never finished.

    The record has the same top-level keys as a normal run record so
    the report builder, the summary, and downstream consumers never
    need to special-case its shape — leg observations are simply
    ``None`` and the verdict is the conservative ``error``.
    """
    return {
        "index": index,
        "seed": derive_seed(config.seed, "run", index),
        "plan": plan,
        "injected_reboots": 0,
        "observed_schedule": [],
        "intermittent": None,
        "continuous": None,
        "error": error.to_dict(),
        "verdict": {
            "verdict": ERROR,
            "reason": f"{error.kind}: {error.message}",
            "diff": {},
        },
    }
