"""Campaign configuration: the single source of truth for a sweep.

A :class:`CampaignConfig` fully determines a campaign: the application
under test, the number of randomized runs, the master seed every
per-run decision is derived from, and the bounds of each fault-
injection axis.  Two campaigns with equal configs produce byte-
identical reports — that is the contract the scheduler, the workers,
and the tests all rely on, so every field here must be a plain,
picklable, JSON-serializable value.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

#: The fault-placement strategies a run can draw (see ``faults.py``).
FAULT_MODES = ("op_index", "energy_level", "commit_boundary", "organic")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines one fault-injection campaign.

    Parameters
    ----------
    app:
        Registered application name (see ``repro.campaign.apps``).
    runs:
        Number of randomized intermittent executions.
    seed:
        Master seed; every run seed, fault plan, and simulator seed is
        derived from it (never from global randomness).
    workers:
        Worker processes; 1 runs inline in the calling process.
    protect:
        Run the app's intermittence-protected variant (repair-on-boot
        list, task-model commits) instead of the naive one.
    iterations:
        Workload size handed to the app adapter (loop iterations to
        complete, list length to reach, ...).
    duration:
        Simulated-time budget per intermittent run, in seconds.
    modes:
        Subset of :data:`FAULT_MODES` the planner may draw from.
    min_reboots / max_reboots:
        Injected-reboot count range per run (op_index / energy_level /
        commit_boundary modes).
    min_ops / max_ops:
        Ops-into-boot range for op-index placement.
    distance_range:
        Harvester distance perturbation bounds, in metres.
    fading_range:
        Log-normal fading sigma bounds, in dB.
    duty_chance:
        Probability a run also gets reader duty-cycle modulation.
    corrupt_checkpoints:
        Enable the bit-flip axis against the app's protected FRAM
        state (measures corruption *detection*, see docs/CAMPAIGN.md).
    shrink:
        Minimize diverging runs to their smallest reboot schedule.
    shrink_limit:
        Maximum number of diverging runs to shrink.
    capture:
        Re-run the first diverging run with EDB attached in passive
        mode and embed the monitor context in the report.
    chunk:
        Work-unit size shipped to each worker process (0 = auto).
    max_cycles:
        Watchdog: simulated-cycle budget per execution leg (0 = off).
        Deterministic — a fixed seed trips at the same instruction
        every time, so reports stay byte-identical.
    max_wall_s:
        Watchdog: wall-clock budget, enforced per leg by a cheap
        monotonic poll in the post-work hook and per run by a SIGALRM
        alarm where available (0 = off).  Inherently non-deterministic;
        use as a generous backstop, not a tuning knob.
    max_retries:
        Supervision: how many *solo* worker-loss failures a chunk may
        accumulate before its runs are recorded as ``worker_lost``.
    retry_backoff:
        Supervision: base of the exponential backoff (seconds) slept
        before retrying a chunk whose worker died.
    mode:
        ``"sample"`` draws every run's fault plan independently at
        random (the classic campaign); ``"fuzz"`` runs the coverage-
        guided search of :mod:`repro.campaign.fuzz`, mutating fault
        schedules (and stimulus bytes, for apps that take input)
        between rounds.
    fuzz_rounds:
        Fuzz mode only: how many search rounds the run budget is split
        into.  Round one seeds the corpus with uniform-random
        schedules; every later round mutates the corpus.  ``1`` makes
        fuzz mode degenerate into pure uniform sampling — the baseline
        the acceptance test compares against.
    """

    app: str = "linked_list"
    runs: int = 100
    seed: int = 0
    workers: int = 1
    protect: bool = False
    iterations: int = 16
    duration: float = 3.0
    modes: tuple[str, ...] = ("op_index", "energy_level", "commit_boundary", "organic")
    min_reboots: int = 1
    max_reboots: int = 6
    min_ops: int = 5
    max_ops: int = 400
    distance_range: tuple[float, float] = (1.2, 2.2)
    fading_range: tuple[float, float] = (0.0, 2.0)
    duty_chance: float = 0.25
    corrupt_checkpoints: bool = False
    shrink: bool = True
    shrink_limit: int = 3
    capture: bool = False
    chunk: int = 0
    max_cycles: int = 0
    max_wall_s: float = 0.0
    max_retries: int = 3
    retry_backoff: float = 0.05
    mode: str = "sample"
    fuzz_rounds: int = 8

    def __post_init__(self) -> None:
        if self.runs < 0:
            raise ValueError(f"runs must be >= 0 (got {self.runs})")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1 (got {self.workers})")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1 (got {self.iterations})")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive (got {self.duration})")
        if not self.modes:
            raise ValueError("at least one fault mode is required")
        unknown = set(self.modes) - set(FAULT_MODES)
        if unknown:
            raise ValueError(
                f"unknown fault modes {sorted(unknown)}; valid: {FAULT_MODES}"
            )
        if not 1 <= self.min_reboots <= self.max_reboots:
            raise ValueError(
                f"need 1 <= min_reboots <= max_reboots "
                f"(got {self.min_reboots}..{self.max_reboots})"
            )
        if not 1 <= self.min_ops <= self.max_ops:
            raise ValueError(
                f"need 1 <= min_ops <= max_ops (got {self.min_ops}..{self.max_ops})"
            )
        lo, hi = self.distance_range
        if not 0.0 < lo <= hi:
            raise ValueError(f"bad distance range {self.distance_range}")
        lo, hi = self.fading_range
        if not 0.0 <= lo <= hi:
            raise ValueError(f"bad fading range {self.fading_range}")
        if not 0.0 <= self.duty_chance <= 1.0:
            raise ValueError(f"duty chance out of [0, 1]: {self.duty_chance}")
        if self.max_cycles < 0:
            raise ValueError(f"max_cycles must be >= 0 (got {self.max_cycles})")
        if self.max_wall_s < 0.0:
            raise ValueError(f"max_wall_s must be >= 0 (got {self.max_wall_s})")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1 (got {self.max_retries})")
        if self.retry_backoff < 0.0:
            raise ValueError(
                f"retry_backoff must be >= 0 (got {self.retry_backoff})"
            )
        if self.mode not in ("sample", "fuzz"):
            raise ValueError(
                f"unknown campaign mode {self.mode!r}; "
                f"valid: 'sample', 'fuzz'"
            )
        if self.fuzz_rounds < 1:
            raise ValueError(
                f"fuzz_rounds must be >= 1 (got {self.fuzz_rounds})"
            )
        if self.mode == "fuzz" and 0 < self.runs < self.fuzz_rounds:
            raise ValueError(
                f"fuzz mode needs runs >= fuzz_rounds "
                f"(got runs={self.runs}, fuzz_rounds={self.fuzz_rounds})"
            )
        if self.mode == "fuzz" and self.capture:
            # The capture pass re-derives its fault plan from the run
            # seed, which does not exist for mutated genotypes.
            raise ValueError("capture is not supported in fuzz mode")

    # -- (de)serialization ------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (tuples become lists; JSON/pickle friendly)."""
        out = asdict(self)
        out["modes"] = list(self.modes)
        out["distance_range"] = list(self.distance_range)
        out["fading_range"] = list(self.fading_range)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("modes", "distance_range", "fading_range"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)
