"""Coverage-guided fault fuzzing: the campaign engine as a *search*.

The sampling campaign (``mode="sample"``) draws every run's fault plan
independently; whether run 412 learns anything from run 3 is luck.
This module turns the same machinery into feedback-driven search:

- **Coverage signal.**  Every intermittent leg runs with a
  :class:`~repro.mcu.coverage.CoverageRecorder` attached: the ordered
  set of dynamic basic-block entry PCs the CPU executed.  The recorder
  hooks both the single-step and translated-block dispatch paths at the
  points they agree by construction (reset entries and taken control
  transfers), so the signature is bit-identical with the block cache on
  or off — coverage never perturbs what it measures, the same
  energy-interference-free discipline EDB applies to hardware.
- **Corpus.**  Seeds — fault schedule plus stimulus bytes — survive
  only when they reach new blocks or produce a new verdict
  (:mod:`repro.campaign.corpus`).
- **Mutators.**  ``nudge`` / ``splice`` / ``havoc`` over schedules and
  byte-level stimulus mutation, every draw taken from a
  ``random.Random`` seeded by :func:`~repro.sim.rng.derive_seed` — a
  fuzz campaign is replayable from its master seed alone.
- **Scheduler.**  Rounds run through the same supervised
  :class:`~repro.campaign.scheduler._Supervisor` (crash isolation,
  journaling, resume) with a fuzz-specific worker; seeds that share a
  stimulus fork their schedule prefixes from one snapshot chain, and
  diverging survivors shrink through the existing ddmin pass.

Everything here honours the engine's byte-identity contract: for a
fixed config the report is identical across worker counts, snapshot
on/off, block cache on/off, and journal resume.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.errors import (
    BudgetError,
    GuestFault,
    HostFault,
    RunError,
    error_record,
)
from repro.campaign.faults import FaultPlan, RebootRecorder
from repro.campaign.forking import (
    ForkSession,
    _continuous_key,
    _memoizable,
)
from repro.campaign.journal import JournalWriter, load_journal
from repro.campaign.oracle import DIVERGED, Observation, compare
from repro.campaign.report import build_report
from repro.campaign.runner import (
    _install_injectors,
    _observation,
    verdict_for_schedule,
)
from repro.campaign.shrinker import shrink_schedule
from repro.campaign.watchdog import RunWatchdog
from repro.mcu.coverage import CoverageRecorder
from repro.runtime.executor import IntermittentExecutor
from repro.sim.kernel import BudgetExceeded, Simulator
from repro.sim.rng import derive_seed
from repro.testing import make_fast_target, time_limit

from repro.campaign.corpus import Corpus


# -- genotype plumbing -------------------------------------------------------
def fuzz_plan(config: CampaignConfig, schedule) -> FaultPlan:
    """The fault plan a fuzz genotype maps to.

    Fuzz plans pin the environment (fixed distance, zero fading, no
    duty modulation, no corruption flips) so the intermittent leg is a
    deterministic function of the schedule and stimulus alone — which
    both makes mutation feedback meaningful and makes *every* fuzz run
    fork-eligible (see :func:`repro.campaign.forking._group_key`).
    """
    return FaultPlan(
        mode="op_index",
        ops_schedule=tuple(int(n) for n in schedule),
        distance_m=round(float(config.distance_range[0]), 4),
        fading_sigma=0.0,
        duty=None,
        flips=(),
    )


class _StimulusAdapter:
    """An app adapter bound to one stimulus byte string.

    Delegates everything to the underlying adapter except ``build``,
    which routes through the adapter's ``build_fuzz`` hook so the
    program under test consumes exactly this genotype's input.  It has
    no ``prepare`` attribute on purpose: bound adapters stay memoizable
    and fork-eligible.
    """

    def __init__(self, adapter, stimulus: bytes) -> None:
        self._adapter = adapter
        self._stimulus = bytes(stimulus)
        self.stimulus_hex = self._stimulus.hex()
        self.name = adapter.name
        self.invariant_keys = adapter.invariant_keys

    def build(self, protect: bool, iterations: int):
        return self._adapter.build_fuzz(protect, iterations, self._stimulus)

    def observe(self, program, api) -> dict:
        return self._adapter.observe(program, api)

    def state_ranges(self, program, api) -> list:
        return self._adapter.state_ranges(program, api)


def _bind(adapter, stimulus_hex: str | None):
    if stimulus_hex is None:
        return adapter
    return _StimulusAdapter(adapter, bytes.fromhex(stimulus_hex))


# -- mutators ----------------------------------------------------------------
def _clamp_schedule(
    rng: random.Random, schedule: list[int], config: CampaignConfig
) -> list[int]:
    """Force a candidate schedule into the config's schedulable box."""
    out = [min(max(int(v), config.min_ops), config.max_ops) for v in schedule]
    while len(out) > config.max_reboots:
        out.pop(rng.randrange(len(out)))
    while len(out) < config.min_reboots:
        out.append(rng.randint(config.min_ops, config.max_ops))
    return out


def random_schedule(rng: random.Random, config: CampaignConfig) -> list[int]:
    """A uniform-random schedule — round zero, and the empty-corpus fallback."""
    count = rng.randint(config.min_reboots, config.max_reboots)
    return [
        rng.randint(config.min_ops, config.max_ops) for _ in range(count)
    ]


def nudge(
    rng: random.Random, schedule: list[int], config: CampaignConfig
) -> list[int]:
    """Shift one brown-out by a small signed op-count delta.

    The local move: a divergence window is usually a handful of ops
    wide, so sliding one placement explores the neighbourhood of a
    productive seed.
    """
    if not schedule:
        return random_schedule(rng, config)
    out = list(schedule)
    position = rng.randrange(len(out))
    span = max(1, (config.max_ops - config.min_ops) // 8)
    delta = rng.randint(1, span) * rng.choice((-1, 1))
    out[position] = min(
        max(out[position] + delta, config.min_ops), config.max_ops
    )
    return _clamp_schedule(rng, out, config)


def splice(
    rng: random.Random,
    schedule: list[int],
    donor: list[int],
    config: CampaignConfig,
) -> list[int]:
    """Crossover: a prefix of one seed's schedule, a suffix of another's.

    Prefix-preserving on purpose — spliced children share their leading
    boots with the parent, which is exactly what the snapshot chain
    forks for free.
    """
    if not schedule or not donor:
        return random_schedule(rng, config)
    cut_a = rng.randint(1, len(schedule))
    cut_b = rng.randint(0, len(donor))
    return _clamp_schedule(
        rng, list(schedule[:cut_a]) + list(donor[cut_b:]), config
    )


def havoc(
    rng: random.Random, schedule: list[int], config: CampaignConfig
) -> list[int]:
    """A short burst of random edits: insert, delete, replace, duplicate."""
    out = list(schedule)
    for _ in range(rng.randint(1, 4)):
        roll = rng.randrange(4)
        if roll == 0 and len(out) < config.max_reboots:
            out.insert(
                rng.randint(0, len(out)),
                rng.randint(config.min_ops, config.max_ops),
            )
        elif roll == 1 and len(out) > config.min_reboots:
            out.pop(rng.randrange(len(out)))
        elif roll == 2 and out:
            out[rng.randrange(len(out))] = rng.randint(
                config.min_ops, config.max_ops
            )
        elif roll == 3 and out and len(out) < config.max_reboots:
            position = rng.randrange(len(out))
            out.insert(position, out[position])
    return _clamp_schedule(rng, out, config)


#: Stimulus strings never grow past this; the cursor wraps anyway, so
#: longer inputs only dilute the mutation budget.
MAX_STIMULUS = 64


def mutate_stimulus(
    rng: random.Random,
    stimulus: bytes,
    *,
    require_input: bool,
    max_len: int = MAX_STIMULUS,
) -> bytes:
    """Byte-level stimulus mutation: flips, edits, inserts, duplication.

    With ``require_input`` the result is never empty — an app that
    reads its input port must always have at least one byte to serve.
    """
    out = bytearray(stimulus)
    for _ in range(rng.randint(1, 4)):
        roll = rng.randrange(5)
        if roll == 0 and out:
            position = rng.randrange(len(out))
            out[position] ^= 1 << rng.randrange(8)
        elif roll == 1 and out:
            out[rng.randrange(len(out))] = rng.randrange(256)
        elif roll == 2 and len(out) < max_len:
            out.insert(rng.randint(0, len(out)), rng.randrange(256))
        elif roll == 3 and (len(out) > 1 or (out and not require_input)):
            out.pop(rng.randrange(len(out)))
        elif roll == 4 and out and len(out) < max_len:
            position = rng.randrange(len(out))
            count = rng.randint(1, min(4, len(out) - position))
            out[position:position] = out[position : position + count]
    if require_input and not out:
        out.append(rng.randrange(256))
    return bytes(out[:max_len])


# -- job generation ----------------------------------------------------------
def _round_slices(runs: int, rounds: int) -> list[list[int]]:
    """Split run indices into contiguous per-round slices.

    Earlier rounds absorb the remainder, so every index belongs to
    exactly one round and round boundaries are pure functions of
    ``(runs, fuzz_rounds)`` — resume regenerates them identically.
    """
    base, extra = divmod(runs, rounds)
    slices = []
    start = 0
    for index in range(rounds):
        size = base + (1 if index < extra else 0)
        slices.append(list(range(start, start + size)))
        start += size
    return slices


def _make_job(
    config: CampaignConfig,
    round_no: int,
    index: int,
    corpus: Corpus,
    seeds: list[dict],
    default_stimulus_hex: str | None,
    requires_stimulus: bool,
) -> dict:
    """One run's genotype, derived deterministically from the master seed.

    The only state feeding a job besides the seed is the corpus — whose
    evolution is itself deterministic — so a resumed campaign
    regenerates exactly the jobs the interrupted one ran.
    """
    rng = random.Random(derive_seed(config.seed, "fuzz", round_no, index))
    job = {
        "index": index,
        "round": round_no,
        "op": "random",
        "parent": None,
        "schedule": random_schedule(rng, config),
        "stimulus": default_stimulus_hex,
    }
    if round_no == 0:
        if index < len(seeds):
            seed = seeds[index]
            job["op"] = "seed"
            job["schedule"] = _clamp_schedule(
                rng, [int(n) for n in seed["schedule"]], config
            )
            if requires_stimulus and seed.get("stimulus"):
                job["stimulus"] = seed["stimulus"]
        return job
    if not corpus.entries:
        return job
    parent = corpus.pick(rng)
    roll = rng.random()
    if roll < 0.35:
        op = "nudge"
        schedule = nudge(rng, parent["schedule"], config)
    elif roll < 0.70:
        op = "havoc"
        schedule = havoc(rng, parent["schedule"], config)
    else:
        donor = corpus.pick(rng)
        op = "splice"
        schedule = splice(rng, parent["schedule"], donor["schedule"], config)
    stimulus_hex = parent["stimulus"] or default_stimulus_hex
    if requires_stimulus and stimulus_hex is not None and rng.random() < 0.6:
        mutated = mutate_stimulus(
            rng, bytes.fromhex(stimulus_hex), require_input=True
        )
        stimulus_hex = mutated.hex()
        op += "+stim"
    job.update(
        op=op, parent=parent["index"], schedule=schedule,
        stimulus=stimulus_hex,
    )
    return job


# -- execution legs ----------------------------------------------------------
def _coverage_target(plan: FaultPlan) -> Callable:
    """A ``make_target`` that attaches coverage *before* flash.

    Both the from-reset leg and the fork session build their device
    through this, so flash-time execution is recorded identically on
    either path — the precondition for forked coverage matching
    from-reset coverage byte for byte.
    """

    def make_target(sim: Simulator):
        target = make_fast_target(
            sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
        )
        target.cpu.coverage = CoverageRecorder()
        return target

    return make_target


def _fuzz_intermittent_leg(
    config: CampaignConfig, adapter, plan: FaultPlan, leg_seed: int
) -> tuple[Observation, list[int], int, tuple[list[int], str]]:
    """The from-reset intermittent leg, plus its coverage readout.

    Mirrors :func:`repro.campaign.runner.run_intermittent_leg` hook for
    hook (fuzz plans never carry flips, so no corruptor) with coverage
    attached pre-flash.
    """
    sim = Simulator(seed=leg_seed)
    sim.trace.enabled = False  # see runner.run_intermittent_leg
    target = _coverage_target(plan)(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    recorder = RebootRecorder(target)
    injectors = _install_injectors(target, plan)
    with RunWatchdog(target, config.max_cycles, config.max_wall_s):
        result = executor.run(duration=config.duration, stop_on_fault=True)
    observation = _observation(result, adapter.observe(program, executor.api))
    injected = sum(getattr(i, "injections", 0) for i in injectors)
    coverage = target.cpu.coverage
    return (
        observation,
        recorder.schedule(),
        injected,
        (list(coverage.blocks()), coverage.signature()),
    )


#: Continuous-leg memo keyed by config *and* stimulus — the forking
#: module's memo deliberately omits stimulus (sampling campaigns have
#: none), so fuzz keeps its own.
_continuous_memo: dict[tuple, Observation] = {}


def _fuzz_continuous_leg(
    config: CampaignConfig, adapter, leg_seed: int, *, snapshot: bool
) -> Observation:
    """The control leg for one genotype, memoized per stimulus.

    Same honesty rule as :func:`repro.campaign.forking.
    continuous_observation`: a result is cached only when the leg
    verifiably consumed zero randomness, making it independent of
    ``leg_seed`` — so memoized and from-reset campaigns stay
    byte-identical.
    """
    key = _continuous_key(config) + (getattr(adapter, "stimulus_hex", None),)
    if snapshot:
        hit = _continuous_memo.get(key)
        if hit is not None:
            return hit
    sim = Simulator(seed=leg_seed)
    sim.trace.enabled = False  # see runner.run_intermittent_leg
    target = make_fast_target(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    with RunWatchdog(target, config.max_cycles, config.max_wall_s):
        result = executor.run_continuous(duration=config.duration)
    observation = _observation(result, adapter.observe(program, executor.api))
    if snapshot and sim.rng.untouched and _memoizable(observation):
        _continuous_memo[key] = observation
    return observation


def _fuzz_record(
    job: dict,
    run_seed: int,
    plan: FaultPlan,
    injected: int,
    schedule: list[int],
    intermittent: Observation,
    continuous: Observation,
    verdict,
    coverage: tuple[list[int], str],
) -> dict:
    blocks, signature = coverage
    return {
        "index": job["index"],
        "seed": run_seed,
        "plan": plan.to_dict(),
        "injected_reboots": injected,
        "observed_schedule": schedule,
        "intermittent": intermittent.to_dict(),
        "continuous": continuous.to_dict(),
        "verdict": verdict.to_dict(),
        "fuzz": {
            "round": job["round"],
            "op": job["op"],
            "parent": job["parent"],
            "stimulus": job["stimulus"],
            "coverage": {"blocks": list(blocks), "signature": signature},
        },
    }


def execute_fuzz_run(
    config: CampaignConfig, job: dict, *, snapshot: bool = False
) -> dict:
    """Execute one fuzz genotype from reset: both legs plus the oracle."""
    adapter = _bind(get_adapter(config.app), job["stimulus"])
    run_seed = derive_seed(config.seed, "run", job["index"])
    plan = fuzz_plan(config, job["schedule"])
    try:
        intermittent, schedule, injected, coverage = _fuzz_intermittent_leg(
            config, adapter, plan, derive_seed(run_seed, "intermittent")
        )
        continuous = _fuzz_continuous_leg(
            config, adapter, derive_seed(run_seed, "continuous"),
            snapshot=snapshot,
        )
    except BudgetExceeded:
        raise  # classified as budget_exceeded, not as a guest fault
    except Exception as exc:
        raise GuestFault.wrap(exc, detail="raised while executing a leg") from exc
    verdict = compare(intermittent, continuous, adapter.invariant_keys)
    return _fuzz_record(
        job, run_seed, plan, injected, schedule, intermittent, continuous,
        verdict, coverage,
    )


def execute_fuzz_run_safe(
    config: CampaignConfig, job: dict, *, snapshot: bool = False
) -> dict:
    """Supervised :func:`execute_fuzz_run`: always exactly one record.

    Error records carry no ``fuzz`` key (the run produced no coverage);
    the corpus and the coverage stanza tolerate that shape.
    """
    try:
        with time_limit(config.max_wall_s):
            return execute_fuzz_run(config, job, snapshot=snapshot)
    except BudgetExceeded as exc:
        return error_record(
            config, job["index"],
            BudgetError.wrap(exc, detail="outside a leg"),
        )
    except RunError as exc:
        return error_record(config, job["index"], exc)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - the supervision boundary
        return error_record(
            config, job["index"],
            HostFault.wrap(exc, detail="outside guest execution"),
        )


# -- the fuzz worker ---------------------------------------------------------
def _fuzz_chunk_worker(
    config_dict: dict, jobs: list[dict], snapshot: bool = False,
    batch: bool = True,
) -> tuple[list[dict], dict]:
    """Worker entry point for fuzz chunks (picklable, module-level).

    With snapshots on, jobs sharing a stimulus execute through one
    :class:`~repro.campaign.forking.ForkSession` — every fuzz plan is
    op-index with a pinned environment, so shared schedule prefixes
    fork from the same snapshot chain.  ``batch`` is accepted for
    supervisor signature parity but unused: fuzz groups fork a
    *coverage-instrumented* target whose per-block recorder is exactly
    the per-lane state the lock-step lane engine cannot share, so they
    stay on the ForkSession path.  Returns ``(records, tier_delta)``
    like :func:`repro.campaign.scheduler._chunk_worker`.
    """
    from repro.campaign.runner import tier_stats_delta, tier_stats_snapshot

    config = CampaignConfig.from_dict(config_dict)
    before = tier_stats_snapshot()
    if not snapshot:
        return [
            execute_fuzz_run_safe(config, job, snapshot=False) for job in jobs
        ], tier_stats_delta(before)
    adapter = get_adapter(config.app)
    if hasattr(adapter, "prepare"):
        # Per-run specialisation: nothing is shareable.
        return [
            execute_fuzz_run_safe(config, job, snapshot=True) for job in jobs
        ], tier_stats_delta(before)
    groups: dict[str | None, list[dict]] = {}
    for job in jobs:
        groups.setdefault(job["stimulus"], []).append(job)
    records: dict[int, dict] = {}
    for members in groups.values():
        if len(members) < 2:
            for job in members:
                records[job["index"]] = execute_fuzz_run_safe(
                    config, job, snapshot=True
                )
        else:
            records.update(_execute_fuzz_group(config, adapter, members))
    return [records[job["index"]] for job in jobs], tier_stats_delta(before)


def _execute_fuzz_group(
    config: CampaignConfig, adapter, members: list[dict]
) -> dict[int, dict]:
    """Execute one same-stimulus group through a shared fork session.

    Mirrors :func:`repro.campaign.forking._execute_group`: lexicographic
    schedule order for prefix reuse, the zero-RNG honesty check after
    the fact, and a from-reset fallback for any member a session
    failure (or the honesty check) taints.
    """
    bound = _bind(adapter, members[0]["stimulus"])
    pending = sorted(members, key=lambda job: tuple(job["schedule"]))
    records: dict[int, dict] = {}
    fallback: list[dict] = []
    first = pending[0]
    session = None
    try:
        session = ForkSession(
            config,
            bound,
            sim_seed=derive_seed(
                derive_seed(config.seed, "run", first["index"]), "intermittent"
            ),
            make_target=_coverage_target(fuzz_plan(config, first["schedule"])),
            mode="op_index",
            record_schedule=True,
        )
    except KeyboardInterrupt:
        raise
    except BaseException:
        fallback = pending
    if session is not None:
        try:
            for position, job in enumerate(pending):
                run_seed = derive_seed(config.seed, "run", job["index"])
                try:
                    with time_limit(config.max_wall_s):
                        intermittent, schedule, injected = session.execute(
                            job["schedule"]
                        )
                        recorder = session.target.cpu.coverage
                        coverage = (
                            list(recorder.blocks()), recorder.signature(),
                        )
                        continuous = _fuzz_continuous_leg(
                            config, bound,
                            derive_seed(run_seed, "continuous"),
                            snapshot=True,
                        )
                except KeyboardInterrupt:
                    raise
                except BaseException:
                    # Session state is suspect after any failure: this
                    # member and the rest of the group replay from reset.
                    fallback = pending[position:]
                    break
                verdict = compare(
                    intermittent, continuous, bound.invariant_keys
                )
                records[job["index"]] = _fuzz_record(
                    job, run_seed, fuzz_plan(config, job["schedule"]),
                    injected, schedule, intermittent, continuous, verdict,
                    coverage,
                )
            if not session.rng_untouched:
                # Some draw made the trajectory depend on the borrowed
                # seed: nothing the session produced can be trusted.
                records.clear()
                fallback = list(pending)
        finally:
            session.close()
    for job in fallback:
        records[job["index"]] = execute_fuzz_run_safe(
            config, job, snapshot=True
        )
    return records


# -- post-passes -------------------------------------------------------------
def _fuzz_shrink_pass(
    config: CampaignConfig, records: list[dict], snapshot: bool
) -> None:
    """ddmin the first ``shrink_limit`` diverging genotypes in place.

    Probes replay from reset on the bench supply with the genotype's
    own stimulus bound — one deterministic path regardless of the
    snapshot flag, so reports stay byte-identical across it.
    """
    diverging = [
        r for r in records if r["verdict"]["verdict"] == DIVERGED
    ][: config.shrink_limit]
    if not diverging:
        return
    adapter = get_adapter(config.app)
    for record in diverging:
        fuzz = record.get("fuzz")
        bound = _bind(adapter, None if fuzz is None else fuzz["stimulus"])
        try:
            continuous = _fuzz_continuous_leg(
                config, bound, derive_seed(config.seed, "shrink-control"),
                snapshot=snapshot,
            )
        except Exception:
            record["shrunk"] = None
            continue

        def still_fails(candidate: list[int]) -> bool:
            return verdict_for_schedule(
                config, bound, continuous, candidate
            ).diverged

        minimal = shrink_schedule(record["observed_schedule"], still_fails)
        record["shrunk"] = (
            None
            if minimal is None
            else {"schedule": minimal, "reboots": len(minimal)}
        )


def _coverage_stanza(
    jobs: dict[int, dict], records: list[dict], corpus: Corpus
) -> dict:
    """The report's ``coverage`` block: what the search found, per round."""
    covered: set[int] = set()
    verdicts: dict[str, int] = {}
    per_round: dict[int, dict] = {}
    for record in records:  # index order == consideration order
        job = jobs.get(record["index"])
        round_no = 0 if job is None else job["round"]
        stats = per_round.setdefault(
            round_no, {"runs": 0, "new_blocks": 0}
        )
        stats["runs"] += 1
        verdict = record["verdict"]["verdict"]
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        fuzz = record.get("fuzz")
        if fuzz is not None:
            new = [
                b for b in fuzz["coverage"]["blocks"] if b not in covered
            ]
            covered.update(new)
            stats["new_blocks"] += len(new)
    corpus_per_round: dict[int, int] = {}
    for entry in corpus.entries:
        corpus_per_round[entry["round"]] = (
            corpus_per_round.get(entry["round"], 0) + 1
        )
    rounds = []
    cumulative_blocks = 0
    cumulative_corpus = 0
    for round_no in sorted(per_round):
        stats = per_round[round_no]
        cumulative_blocks += stats["new_blocks"]
        cumulative_corpus += corpus_per_round.get(round_no, 0)
        rounds.append(
            {
                "round": round_no,
                "runs": stats["runs"],
                "new_blocks": stats["new_blocks"],
                "blocks": cumulative_blocks,
                "corpus": cumulative_corpus,
            }
        )
    return {
        "blocks": len(covered),
        "corpus": len(corpus.entries),
        "rounds": rounds,
        "verdicts": verdicts,
    }


# -- the public entry point --------------------------------------------------
def run_fuzz_campaign(
    config: CampaignConfig,
    progress: Callable[[int, int], None] | None = None,
    *,
    journal_path: str | None = None,
    resume_from: str | None = None,
    fail_fast: bool = False,
    snapshot: bool = True,
    batch: bool = True,
    corpus_path: str | None = None,
    journal_fsync: bool = False,
    stats: dict | None = None,
) -> dict:
    """Run a coverage-guided fuzz campaign and return its report.

    The run budget splits into ``config.fuzz_rounds`` rounds.  Round
    zero seeds the corpus (uniform-random schedules, plus any seeds
    from ``corpus_path``); every later round mutates corpus survivors.
    Each round executes under the same supervision as a sampling
    campaign — crash isolation, journaling, fail-fast — and the corpus
    is updated from finished records in index order, which keeps the
    whole search deterministic.

    ``corpus_path`` seeds round zero when the file exists and receives
    the final corpus when the campaign completes.  Journal/resume work
    exactly as in :func:`~repro.campaign.scheduler.run_campaign`: jobs
    are regenerated deterministically, so only missing indices execute.
    ``batch`` and ``stats`` also mirror :func:`run_campaign` — fuzz
    groups never enter the lane engine (see
    :func:`_fuzz_chunk_worker`), but the flag rides through for
    signature parity and ``stats`` aggregates worker tier counters.
    """
    from repro.campaign.runner import tier_stats_delta, tier_stats_snapshot
    from repro.campaign.scheduler import _Supervisor, _chunk_indices

    if journal_path is not None and resume_from is not None:
        raise ValueError("journal_path and resume_from are mutually exclusive")
    records: dict[int, dict] = {}
    journal: JournalWriter | None = None
    if resume_from is not None:
        records = load_journal(resume_from, config)
        journal = JournalWriter(
            resume_from, config, fresh=False, fsync=journal_fsync
        )
    elif journal_path is not None:
        journal = JournalWriter(
            journal_path, config, fresh=True, fsync=journal_fsync
        )

    adapter = get_adapter(config.app)
    requires_stimulus = bool(getattr(adapter, "requires_stimulus", False))
    default_stimulus_hex = (
        adapter.default_stimulus(config.iterations).hex()
        if requires_stimulus
        else None
    )
    seeds: list[dict] = []
    if corpus_path is not None:
        from pathlib import Path

        if Path(corpus_path).exists():
            seeds = Corpus.load_seeds(corpus_path)

    corpus = Corpus()
    jobs: dict[int, dict] = {}
    interrupted = False
    stopped = False
    stats_before = tier_stats_snapshot() if stats is not None else None
    try:
        for round_no, indices in enumerate(
            _round_slices(config.runs, config.fuzz_rounds)
        ):
            round_jobs = {
                index: _make_job(
                    config, round_no, index, corpus, seeds,
                    default_stimulus_hex, requires_stimulus,
                )
                for index in indices
            }
            jobs.update(round_jobs)
            missing = [i for i in indices if i not in records]
            if missing:
                supervisor = _Supervisor(
                    config, records, progress=progress, journal=journal,
                    fail_fast=fail_fast, snapshot=snapshot, batch=batch,
                    worker=_fuzz_chunk_worker, jobs=round_jobs, stats=stats,
                )
                supervisor.run(_chunk_indices(missing, config))
                stopped = stopped or supervisor.stop
            for index in indices:
                record = records.get(index)
                if record is not None:
                    corpus.consider(record)
            if stopped:
                break
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if journal is not None:
            journal.close()

    if not interrupted and not stopped:
        for index in range(config.runs):
            if index not in records:
                records[index] = error_record(
                    config, index,
                    HostFault("scheduler lost this run without a record"),
                )
    ordered = [records[i] for i in sorted(records)]
    complete = not interrupted and not stopped and len(ordered) == config.runs
    if complete and config.shrink:
        _fuzz_shrink_pass(config, ordered, snapshot)
    if stats is not None:
        # This process's own execution (serial chunks, the shrink
        # pass); pool worker deltas were folded in by the supervisors.
        for key, value in tier_stats_delta(stats_before).items():
            stats[key] = stats.get(key, 0) + value
    report = build_report(config, ordered)
    report["coverage"] = _coverage_stanza(jobs, ordered, corpus)
    if not complete:
        report["partial"] = {
            "completed": len(ordered),
            "total": config.runs,
            "interrupted": interrupted,
        }
    if corpus_path is not None and complete:
        corpus.save(corpus_path)
    return report
