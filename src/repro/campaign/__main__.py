"""``python -m repro.campaign`` entry point."""

import os
import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit like a killed
        # process (128+SIGPIPE), without a traceback.  Redirect stdout
        # to devnull so the interpreter's shutdown flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    raise SystemExit(code)
