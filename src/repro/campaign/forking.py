"""Snapshot/fork execution: share campaign prefixes instead of re-simulating.

Three snapshot-powered execution paths, all strictly optional (the
``--no-snapshot`` flag routes everything through the original
from-reset code) and all bound by the campaign engine's byte-identical
report contract:

- **Memoized control leg** (:func:`continuous_observation`).  The
  continuous-power leg runs tethered from flash to finish, so it never
  queries the harvester and never draws from a named RNG stream — its
  observation is independent of the leg seed.  One execution per worker
  process serves every run of the campaign.  The independence claim is
  *verified*, not assumed: the result is only cached when the leg's
  :class:`~repro.sim.rng.RngHub` stayed untouched.
- **Shrinker replay sessions** (:meth:`ForkSession.for_replay`).  ddmin
  probes replay brown-out schedules that share long prefixes; a session
  keeps one bench-supplied device alive, snapshots at every forced
  brown-out boundary, and replays each probe from the longest cached
  prefix instead of from reset.
- **Prefix-group forking** (:func:`execute_chunk`).  Runs whose fault
  plans share a deterministic environment (zero fading, equal distance
  and duty, no bit flips) and differ only in their injection schedule
  are executed through one session: the shared schedule prefix is
  simulated once, snapshotted at the divergence point, and the
  remaining legs fork from the snapshot.

Why the reports stay byte-identical: a boundary snapshot restores the
*entire* simulated world (memory, CPU, peripherals, capacitor voltage,
clock, event queue, RNG stream states) plus the injector/recorder
progress counters and the program's host-side scalar state, and the
executor resumes against the same absolute deadline (``run(until=...)``
— no float re-derivation).  The state at a forced-brown-out boundary is
a function of the consumed schedule prefix alone, so forking from the
snapshot replays exactly the instruction/energy trajectory a from-reset
run would produce.  Sessions that could be perturbed by their borrowed
seed are ruled out up front (adapters with a ``prepare`` hook, plans
with fading or corruption) and double-checked after the fact
(``RngHub.untouched``); any violation or mid-session failure falls back
to the legacy from-reset path for the affected runs.
"""

from __future__ import annotations

import random

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.faults import (
    CommitBoundaryTrigger,
    FaultPlan,
    RebootRecorder,
    ScheduledBrownouts,
    plan_faults,
)
from repro.campaign.oracle import Observation, compare
from repro.campaign.watchdog import RunWatchdog
from repro.power.harvester import RFHarvester
from repro.runtime.executor import IntermittentExecutor, RunStatus
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.snapshot import DirtyTracker, capture, restore
from repro.testing import make_bench_target, make_fast_target, time_limit

_BOUNDARY = "snapshot-boundary"

#: Host-side program state worth snapshotting.  Every application in
#: the repo keeps its behavioural host state (iteration counters,
#: completion tallies) in plain scalar attributes; container/object
#: attributes (a task runtime, the task list) hold either configuration
#: or purely diagnostic counters that never feed back into behaviour.
_SCALAR = (bool, int, float, str, bytes, type(None))


def _program_state(program) -> dict:
    return {k: v for k, v in vars(program).items() if isinstance(v, _SCALAR)}


def _restore_program_state(program, state: dict) -> None:
    for name, value in state.items():
        setattr(program, name, value)


# -- the memoized continuous control leg ------------------------------------
_continuous_memo: dict[tuple, Observation] = {}


def _continuous_key(config: CampaignConfig) -> tuple:
    # Everything the control leg's trajectory can depend on besides the
    # leg seed — and the seed is proven inert before a result is cached.
    return (
        config.app,
        config.protect,
        config.iterations,
        config.duration,
        config.max_cycles,
        config.max_wall_s,
    )


def _memoizable(observation: Observation) -> bool:
    # Wall-clock budget trips are host-timing noise; never let one run's
    # bad luck speak for the whole campaign.  Cycle trips and every
    # other status are deterministic.
    return observation.status != RunStatus.NONTERMINATING.value or (
        "wall-clock" not in (observation.detail or "")
    )


def continuous_observation(
    config: CampaignConfig, adapter, leg_seed: int
) -> Observation:
    """The continuous control leg, memoized per worker process.

    Bit-identical to :func:`repro.campaign.runner.run_continuous_leg`:
    a cache hit returns the observation of an execution that verifiably
    consumed zero randomness, making it independent of ``leg_seed``.
    Adapters with a ``prepare`` hook specialise per run and are never
    memoized.
    """
    from repro.campaign.runner import (  # deferred: no cycle
        _harvest_tier_stats,
        run_continuous_leg,
    )

    if hasattr(adapter, "prepare"):
        return run_continuous_leg(config, adapter, leg_seed)
    key = _continuous_key(config)
    hit = _continuous_memo.get(key)
    if hit is not None:
        return hit
    sim = Simulator(seed=leg_seed)
    sim.trace.enabled = False  # see runner.run_intermittent_leg
    target = make_fast_target(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    with RunWatchdog(target, config.max_cycles, config.max_wall_s):
        result = executor.run_continuous(duration=config.duration)
    _harvest_tier_stats(target)
    observation = Observation(
        status=result.status.value,
        faults=len(result.faults),
        boots=result.boots,
        reboots=result.reboots,
        observables=adapter.observe(program, executor.api),
        detail=None if result.detail is None else str(result.detail),
    )
    if sim.rng.untouched and _memoizable(observation):
        _continuous_memo[key] = observation
    return observation


# -- pausing injectors -------------------------------------------------------
class _PausingBrownouts(ScheduledBrownouts):
    """ScheduledBrownouts that parks the executor at each forced failure.

    The stop request is observed at the top of the executor's reboot
    loop — *after* the program has taken the power failure exactly as it
    would from the plain injector — which makes the pause point a clean
    snapshot boundary: the device state there is a function of the
    consumed schedule prefix alone.
    """

    def _force(self) -> None:
        super()._force()
        self.device.sim.request_stop(_BOUNDARY)


class _PausingCommitTrigger(CommitBoundaryTrigger):
    """CommitBoundaryTrigger with the same pause-at-boundary behaviour."""

    def _force(self) -> None:
        super()._force()
        self.device.sim.request_stop(_BOUNDARY)


# -- the fork session --------------------------------------------------------
class ForkSession:
    """One long-lived device executing many runs that share prefixes.

    The session flashes once and keeps a snapshot chain keyed by the
    consumed injection prefix.  ``execute(schedule)`` restores the
    longest cached prefix of ``schedule``, simulates only the suffix,
    and caches every new boundary it crosses.  Dirty-page tracking makes
    each boundary capture proportional to the pages written since the
    previous capture.

    Construction mirrors the from-reset legs hook-for-hook (recorder,
    then injector, then watchdog) so the post-work and reboot hook
    orders — which are behaviourally significant — match exactly.
    """

    def __init__(
        self,
        config: CampaignConfig,
        adapter,
        *,
        sim_seed: int,
        make_target,
        mode: str,
        record_schedule: bool,
    ) -> None:
        self.config = config
        self.adapter = adapter
        self.mode = mode
        self.sim = Simulator(seed=sim_seed)
        # Campaign legs never read the trace store; see
        # runner.run_intermittent_leg.
        self.sim.trace.enabled = False
        self.target = make_target(self.sim)
        self.program = adapter.build(config.protect, config.iterations)
        self.executor = IntermittentExecutor(self.sim, self.target, self.program)
        self.executor.flash()
        self.tracker = DirtyTracker(self.target.memory)
        self.recorder = RebootRecorder(self.target) if record_schedule else None
        if mode == "commit_boundary":
            self.injector = _PausingCommitTrigger(self.target, [])
        else:
            self.injector = _PausingBrownouts(self.target, [])
        self.watchdog = RunWatchdog(
            self.target, config.max_cycles, config.max_wall_s
        )
        # The same absolute deadline a from-reset run would compute at
        # its run() entry (post-flash ``now`` + duration), shared by
        # every segment of every schedule (see executor.run(until=...)).
        self._deadline = self.sim.now + config.duration
        self._base_reboots = self.target.reboot_count
        self._chain: dict[tuple[int, ...], tuple] = {}
        self._chain[()] = self._capture_node(0, (), None)

    @classmethod
    def for_replay(cls, config: CampaignConfig, adapter) -> "ForkSession":
        """A bench-supply session for the shrinker's ddmin probes."""
        return cls(
            config,
            adapter,
            sim_seed=derive_seed(config.seed, "replay"),
            make_target=make_bench_target,
            mode="op_index",
            record_schedule=False,
        )

    @classmethod
    def for_plan(
        cls, config: CampaignConfig, adapter, plan: FaultPlan, sim_seed: int
    ) -> "ForkSession":
        """A harvested-power session for a group of same-environment runs.

        ``sim_seed`` is borrowed from one member's intermittent leg; it
        is sound for the whole group only while the trajectory consumes
        zero randomness — the caller must check ``rng_untouched`` before
        trusting the session's results.
        """

        def make_target(sim: Simulator):
            target = make_fast_target(
                sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
            )
            if plan.duty is not None and isinstance(
                target.power.source, RFHarvester
            ):
                target.power.source.duty_period = plan.duty[0]
                target.power.source.duty_fraction = plan.duty[1]
            return target

        return cls(
            config,
            adapter,
            sim_seed=sim_seed,
            make_target=make_target,
            mode=plan.mode,
            record_schedule=True,
        )

    # -- bookkeeping -------------------------------------------------------
    @property
    def rng_untouched(self) -> bool:
        """True while the session has consumed zero randomness."""
        return self.sim.rng.untouched

    def _capture_node(self, boots: int, faults: tuple, first_fault) -> tuple:
        return (
            capture(self.target, self.tracker),
            self.injector.export_state(),
            self.recorder.export_state() if self.recorder else None,
            _program_state(self.program),
            (boots, faults, first_fault),
        )

    def _set_schedule(self, key: tuple[int, ...]) -> None:
        if self.mode == "commit_boundary":
            self.injector.counts = sorted(key)
        else:
            self.injector.schedule = list(key)

    def _consumed(self) -> int:
        """Schedule entries consumed at the current pause boundary."""
        if self.mode == "commit_boundary":
            return self.injector._index
        return self.injector._boot + 1

    def close(self) -> None:
        """Uninstall every hook the session holds (idempotent)."""
        self.tracker.remove()
        self.injector.remove()
        if self.recorder is not None:
            self.recorder.remove()
        self.watchdog.remove()

    # -- execution ---------------------------------------------------------
    def execute(
        self, schedule
    ) -> tuple[Observation, list[int], int]:
        """Run one schedule, forking from the longest cached prefix.

        Returns ``(observation, recorded_schedule, injections)`` exactly
        as the from-reset intermittent leg would; for replay sessions
        (no recorder) the recorded schedule is the input schedule.
        """
        key = tuple(int(n) for n in schedule)
        if self.mode == "commit_boundary":
            key = tuple(sorted(key))
        prefix: tuple[int, ...] = ()
        for k in range(len(key), 0, -1):
            if key[:k] in self._chain:
                prefix = key[:k]
                break
        snap, inj_state, rec_state, prog_state, meta = self._chain[prefix]
        restore(self.target, snap, self.tracker)
        self.injector.restore_state(inj_state)
        if self.recorder is not None:
            self.recorder.restore_state(rec_state)
        _restore_program_state(self.program, prog_state)
        self._set_schedule(key)
        self.watchdog.rearm_wall()
        self.sim.clear_stop()
        boots, faults, first_fault = meta
        faults = list(faults)
        status = RunStatus.TIMEOUT
        detail = None
        try:
            while True:
                result = self.executor.run(
                    until=self._deadline, stop_on_fault=True
                )
                boots += result.boots
                faults.extend(result.faults)
                if first_fault is None:
                    first_fault = result.first_fault_time
                if result.status is not RunStatus.INTERRUPTED:
                    status = result.status
                    detail = result.detail
                    break
                self.sim.clear_stop()
                consumed = self._consumed()
                if 0 < consumed <= len(key):
                    pkey = key[:consumed]
                    if pkey not in self._chain:
                        self._chain[pkey] = self._capture_node(
                            boots, tuple(faults), first_fault
                        )
        finally:
            # A force landing exactly at the deadline (or just before a
            # completion) can leave a stop pending past the terminal
            # segment; never let it leak into the next execute().
            self.sim.clear_stop()
        from repro.campaign.runner import _harvest_tier_stats  # no cycle

        # Snapshot restore zeroes the device's tier counters, so the
        # counters here are exactly this execute()'s delta — summing
        # per-execute keeps the process tallies double-count-free.
        _harvest_tier_stats(self.target)
        observation = Observation(
            status=status.value,
            faults=len(faults),
            boots=boots,
            reboots=self.target.reboot_count - self._base_reboots,
            observables=self.adapter.observe(self.program, self.executor.api),
            detail=None if detail is None else str(detail),
        )
        recorded = (
            self.recorder.schedule() if self.recorder is not None else list(key)
        )
        return observation, recorded, self.injector.injections


# -- prefix-grouped chunk execution ------------------------------------------
def _schedule_of(plan: FaultPlan) -> tuple[int, ...]:
    if plan.mode == "commit_boundary":
        return plan.commit_counts
    return plan.ops_schedule


def _group_key(plan: FaultPlan):
    """Group identity for fork-eligible plans, or ``None``.

    Eligibility is exactly the set of plans whose intermittent leg is a
    deterministic function of its injection schedule: a fixed
    environment (no fading — the only RNG consumer on the leg), no
    bit-flip corruption, and a schedule-driven injection axis.
    """
    if (
        plan.fading_sigma == 0.0
        and not plan.flips
        and plan.mode in ("op_index", "commit_boundary")
    ):
        return (plan.mode, plan.distance_m, plan.duty)
    return None


def execute_chunk(
    config: CampaignConfig, indices: list[int], batch: bool = True
) -> list[dict]:
    """Execute a chunk of runs, forking shared injection prefixes.

    The snapshot-mode worker entry point.  Runs whose plans are
    fork-eligible and share a group key execute through the lane engine
    (``batch`` on, NumPy present) or one :class:`ForkSession`;
    everything else (and every fallback) goes through the legacy
    supervised runner, so the records are byte-identical either way.
    ``batch`` is an execution-only switch like ``snapshot`` — it never
    enters the config or the report.
    """
    from repro.campaign.runner import execute_run_safe  # deferred: no cycle

    adapter = get_adapter(config.app)
    if hasattr(adapter, "prepare"):
        # Per-run specialisation (chaos): nothing is shareable.
        return [execute_run_safe(config, i, snapshot=True) for i in indices]
    groups: dict[object, list[tuple[int, int, FaultPlan]]] = {}
    for index in indices:
        run_seed = derive_seed(config.seed, "run", index)
        plan = plan_faults(
            config, random.Random(derive_seed(run_seed, "plan"))
        )
        key = _group_key(plan)
        groups.setdefault(
            key if key is not None else ("solo", index), []
        ).append((index, run_seed, plan))
    use_batch = batch
    if use_batch:
        from repro.batch import batching_enabled

        use_batch = batching_enabled()
    records: dict[int, dict] = {}
    for members in groups.values():
        if len(members) < 2:
            for index, _, _ in members:
                records[index] = execute_run_safe(config, index, snapshot=True)
            continue
        if use_batch:
            from repro.batch.engine import execute_batch_group  # needs numpy

            batched = execute_batch_group(config, adapter, members)
            if batched is not None:
                records.update(batched)
                continue
        records.update(_execute_group(config, adapter, members))
    return [records[index] for index in indices]


def _execute_group(
    config: CampaignConfig,
    adapter,
    members: list[tuple[int, int, FaultPlan]],
) -> dict[int, dict]:
    """Execute one fork-eligible group through a shared session.

    Any mid-session failure, and any violation of the zero-RNG honesty
    invariant, sends the affected members back through the legacy
    from-reset path — which also re-raises (and therefore re-classifies)
    deterministic guest failures exactly as a non-snapshot campaign
    would record them.
    """
    from repro.campaign.runner import execute_run_safe  # deferred: no cycle

    # Lexicographic schedule order maximises prefix reuse between
    # consecutive members; record order is re-established by index.
    pending = sorted(members, key=lambda m: _schedule_of(m[2]))
    records: dict[int, dict] = {}
    fallback: list[tuple[int, int, FaultPlan]] = []
    session = None
    try:
        session = ForkSession.for_plan(
            config,
            adapter,
            pending[0][2],
            derive_seed(pending[0][1], "intermittent"),
        )
    except KeyboardInterrupt:
        raise
    except BaseException:
        fallback = pending
    if session is not None:
        try:
            for position, (index, run_seed, plan) in enumerate(pending):
                try:
                    with time_limit(config.max_wall_s):
                        intermittent, schedule, injected = session.execute(
                            _schedule_of(plan)
                        )
                        continuous = continuous_observation(
                            config, adapter, derive_seed(run_seed, "continuous")
                        )
                except KeyboardInterrupt:
                    raise
                except BaseException:
                    # Session state is suspect after any failure: this
                    # member and the rest of the group replay from reset.
                    fallback = pending[position:]
                    break
                verdict = compare(
                    intermittent, continuous, adapter.invariant_keys
                )
                records[index] = {
                    "index": index,
                    "seed": run_seed,
                    "plan": plan.to_dict(),
                    "injected_reboots": injected,
                    "observed_schedule": schedule,
                    "intermittent": intermittent.to_dict(),
                    "continuous": continuous.to_dict(),
                    "verdict": verdict.to_dict(),
                }
            if not session.rng_untouched:
                # The honesty invariant failed: some draw made the
                # trajectory depend on the borrowed seed.  Nothing the
                # session produced can be trusted.
                records.clear()
                fallback = list(pending)
        finally:
            session.close()
    for index, _, _ in fallback:
        records[index] = execute_run_safe(config, index, snapshot=True)
    return records
