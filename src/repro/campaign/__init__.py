"""Deterministic fault-injection campaigns with a differential oracle.

A campaign runs an intermittent application hundreds of times under
randomized power-failure placement, harvesting-environment
perturbation, and (optionally) FRAM corruption, and compares every run
against the same program on continuous power — the paper's central
observation, that intermittence bugs cannot manifest on continuous
power, turned into an automated test oracle.

Typical use::

    from repro.campaign import CampaignConfig, run_campaign

    report = run_campaign(CampaignConfig(app="linked_list", runs=200,
                                         seed=42, workers=4))
    assert report["summary"]["diverged"] > 0  # the Figure 3 bug, found

or from the shell::

    python -m repro.campaign --app linked_list --runs 200 --workers 4 \
        --seed 42

See ``docs/CAMPAIGN.md`` for the full tour.
"""

from repro.campaign.apps import ADAPTERS, get_adapter
from repro.campaign.config import FAULT_MODES, CampaignConfig
from repro.campaign.errors import (
    ERROR_KINDS,
    BudgetError,
    CampaignWarning,
    GuestFault,
    HostFault,
    RunError,
    WorkerLost,
    error_record,
)
from repro.campaign.faults import (
    CommitBoundaryTrigger,
    EnergyLevelTrigger,
    FaultPlan,
    RebootRecorder,
    ScheduledBrownouts,
    StateCorruptor,
    plan_faults,
)
from repro.campaign.journal import (
    JournalMismatch,
    JournalScan,
    JournalWriter,
    load_journal,
    scan_journal,
)
from repro.campaign.oracle import (
    AGREE,
    DIVERGED,
    ERROR,
    INCONCLUSIVE,
    NONTERMINATING,
    Observation,
    Verdict,
    compare,
)
from repro.campaign.report import build_report, render_json, write_report
from repro.campaign.runner import (
    execute_run,
    execute_run_safe,
    replay_with_schedule,
    run_continuous_leg,
    run_intermittent_leg,
    verdict_for_schedule,
)
from repro.campaign.scheduler import run_campaign
from repro.campaign.shrinker import ddmin, shrink_schedule
from repro.campaign.watchdog import RunWatchdog

__all__ = [
    "ADAPTERS",
    "AGREE",
    "DIVERGED",
    "ERROR",
    "ERROR_KINDS",
    "INCONCLUSIVE",
    "NONTERMINATING",
    "BudgetError",
    "CampaignConfig",
    "CampaignWarning",
    "CommitBoundaryTrigger",
    "EnergyLevelTrigger",
    "FAULT_MODES",
    "FaultPlan",
    "GuestFault",
    "HostFault",
    "JournalMismatch",
    "JournalScan",
    "JournalWriter",
    "Observation",
    "RebootRecorder",
    "RunError",
    "RunWatchdog",
    "ScheduledBrownouts",
    "StateCorruptor",
    "Verdict",
    "WorkerLost",
    "build_report",
    "compare",
    "ddmin",
    "error_record",
    "execute_run",
    "execute_run_safe",
    "get_adapter",
    "load_journal",
    "plan_faults",
    "render_json",
    "replay_with_schedule",
    "run_campaign",
    "run_continuous_leg",
    "run_intermittent_leg",
    "scan_journal",
    "shrink_schedule",
    "verdict_for_schedule",
    "write_report",
]
