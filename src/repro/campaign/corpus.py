"""The fuzz corpus: seeds worth mutating, and why they were kept.

A *seed* is one genotype the fuzzer can replay — a fault schedule
(ops-per-boot brown-out placements) plus, for applications that consume
input, the stimulus byte string.  The corpus keeps exactly the seeds
that taught the campaign something: a run enters when it executed a
translated block no earlier run reached, or when it produced a verdict
no earlier run produced.  Everything else is discarded — mutating a run
that replayed known behaviour is wasted budget.

Determinism contract: :meth:`Corpus.consider` is called once per record
in run-index order, so for a fixed campaign seed the corpus evolves
identically across repetitions, worker counts, snapshot modes, and
journal resumes — which is what keeps fuzz reports byte-identical.

The on-disk form (``--corpus PATH``) is a small JSON document whose
entries seed round zero of a later campaign (:func:`Corpus.load_seeds`),
letting a fuzz campaign pick up the search where a previous one left
off without replaying its journal.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.campaign.oracle import AGREE

CORPUS_FORMAT = 1


class Corpus:
    """Novelty-keeping seed pool with campaign-wide coverage accounting."""

    def __init__(self) -> None:
        self.entries: list[dict] = []
        #: Every block entry PC any considered run has executed.
        self.covered: set[int] = set()
        #: Verdict histogram over every considered record (kept or not).
        self.verdicts: dict[str, int] = {}
        self._genotypes: set[tuple] = set()

    def __len__(self) -> int:
        return len(self.entries)

    def consider(self, record: dict) -> dict | None:
        """Account for one finished run; keep it if it was novel.

        Returns the corpus entry when the record was kept, else
        ``None``.  Error records (no ``fuzz`` key — the run never
        produced a leg) feed the verdict histogram but are never kept:
        there is no coverage to credit and no genotype worth mutating.
        """
        verdict = record["verdict"]["verdict"]
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
        first_verdict = self.verdicts[verdict] == 1
        fuzz = record.get("fuzz")
        if fuzz is None:
            return None
        blocks = fuzz["coverage"]["blocks"]
        new_blocks = [b for b in blocks if b not in self.covered]
        self.covered.update(blocks)
        schedule = record["plan"]["ops_schedule"]
        genotype = (tuple(schedule), fuzz["stimulus"])
        if genotype in self._genotypes:
            return None
        if not new_blocks and not first_verdict:
            return None
        intermittent = record["intermittent"] or {}
        entry = {
            "index": record["index"],
            "round": fuzz["round"],
            "op": fuzz["op"],
            "parent": fuzz["parent"],
            "schedule": list(schedule),
            "stimulus": fuzz["stimulus"],
            "signature": fuzz["coverage"]["signature"],
            "blocks": len(blocks),
            "new_blocks": len(new_blocks),
            "verdict": verdict,
            # Energy metadata: how much harvested lifetime the seed
            # consumed — boots taken and brown-outs injected.
            "boots": intermittent.get("boots", 0),
            "injected": record["injected_reboots"],
        }
        self.entries.append(entry)
        self._genotypes.add(genotype)
        return entry

    def pick(self, rng: random.Random) -> dict:
        """Draw one entry to mutate, biased toward productive seeds.

        Weight rises with the coverage the seed discovered and with
        interesting (non-agreeing) verdicts, so the search exploits the
        frontier without ever starving the rest of the pool.
        """
        if not self.entries:
            raise IndexError("cannot pick from an empty corpus")
        weights = [
            1 + entry["new_blocks"] + (2 if entry["verdict"] != AGREE else 0)
            for entry in self.entries
        ]
        shot = rng.random() * sum(weights)
        acc = 0.0
        for entry, weight in zip(self.entries, weights):
            acc += weight
            if shot < acc:
                return entry
        return self.entries[-1]

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the corpus as a seed file for a future campaign."""
        path = Path(path)
        payload = {"corpus": CORPUS_FORMAT, "entries": self.entries}
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return path

    @staticmethod
    def load_seeds(path: str | Path) -> list[dict]:
        """Load a seed file's genotypes: ``{"schedule", "stimulus"}`` dicts.

        Only the genotype is trusted — coverage and verdict metadata
        were measured by a different campaign and are recomputed when
        the seeds run.
        """
        data = json.loads(Path(path).read_text())
        if data.get("corpus") != CORPUS_FORMAT:
            raise ValueError(
                f"{path} is not a format-{CORPUS_FORMAT} fuzz corpus"
            )
        return [
            {
                "schedule": [int(n) for n in entry["schedule"]],
                "stimulus": entry.get("stimulus"),
            }
            for entry in data.get("entries", ())
        ]
