"""Application adapters: what the campaign runs and what it observes.

An adapter binds one application to the campaign engine.  It knows how
to build a fresh program instance (naive or intermittence-protected),
which FRAM ranges hold the app's protected state (the bit-flip axis),
and — most importantly — how to *observe* the app's final state without
perturbing it.

Observables come in two kinds.  All of them go into the report, but
only the adapter's ``invariant_keys`` participate in the differential
oracle: those are the facts that hold for **every** correct execution
regardless of where reboots land (structural consistency of a list, a
bounded drift between paired counters).  Quantities that legitimately
vary with the reboot schedule — how far a run got, the parity of a
grow/shrink list's length — must stay out of ``invariant_keys``, or the
oracle would flag correct intermittent executions as divergent.
"""

from __future__ import annotations

from repro.apps.fibonacci import FibonacciApp
from repro.apps.linked_list import LinkedListApp
from repro.apps.rfid_isa import RfidIsaFirmware
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.nonvolatile import LIST_HEADER, NODE, NVLinkedList
from repro.runtime.tasks import Task, TaskProgram


class LinkedListAdapter:
    """The paper's Figure 3/6 linked-list test program.

    The naive build carries the append-window bug; the protected build
    swaps in the repair-on-boot safe list.  The oracle invariant is
    structural consistency alone — the list legitimately alternates
    between empty and one element, so its length is schedule-dependent.
    """

    name = "linked_list"
    invariant_keys = ("consistent",)

    def build(self, protect: bool, iterations: int):
        return LinkedListApp(use_safe_list=protect, max_iterations=iterations)

    def _list(self, api: DeviceAPI) -> NVLinkedList:
        return NVLinkedList(api, "ll", capacity=4)

    def observe(self, program, api: DeviceAPI) -> dict:
        audit = self._list(api).host_audit()
        return {
            "consistent": bool(audit["consistent"]),
            "length": int(audit["length"]),
            "chain": int(audit["chain"]),
        }

    def state_ranges(self, program, api: DeviceAPI) -> list[tuple[int, int]]:
        return [
            (api.nv_var("list.ll.header", LIST_HEADER.size), LIST_HEADER.size),
            (api.nv_var("list.ll.pool", NODE.size * 4), NODE.size * 4),
        ]


class FibonacciAdapter:
    """The §5.3.2 Fibonacci list generator (release build).

    Intermittence failures show up as a broken chain (an append cut in
    the vulnerable window orphans a node) or as values violating the
    recurrence (a stale tail seeds the next value from the wrong pair).
    Both are schedule-invariant; the reached length is not.
    """

    name = "fibonacci"
    invariant_keys = ("consistent", "recurrence_ok")

    def build(self, protect: bool, iterations: int):
        return FibonacciApp(
            debug_build=False,
            capacity=iterations + 2,
            use_safe_list=protect,
        )

    def _list(self, api: DeviceAPI, program) -> NVLinkedList:
        return NVLinkedList(api, "fib", capacity=program.capacity)

    def observe(self, program, api: DeviceAPI) -> dict:
        nv_list = self._list(api, program)
        audit = nv_list.host_audit()
        memory = api.device.memory
        value_off = NODE.offset("value")
        values = [memory.read_u16(a + value_off) for a in nv_list.host_walk()]
        recurrence_ok = all(
            values[i] == (values[i - 1] + values[i - 2]) & 0xFFFF
            for i in range(2, len(values))
        )
        return {
            "consistent": bool(audit["consistent"]),
            "recurrence_ok": recurrence_ok,
            "length": int(audit["length"]),
        }

    def state_ranges(self, program, api: DeviceAPI) -> list[tuple[int, int]]:
        pool_bytes = NODE.size * program.capacity
        return [
            (api.nv_var("list.fib.header", LIST_HEADER.size), LIST_HEADER.size),
            (api.nv_var("list.fib.pool", pool_bytes), pool_bytes),
        ]


class _NaiveCounter:
    """A paired-counter app with a classic lost-update bug.

    Two FRAM counters must advance in lock-step, but the naive code
    increments them in separate stores with work in between — and ``b``
    is incremented from *its own* old value, so a reboot inside the
    window loses ``b``'s update permanently: every window hit leaves
    ``a`` one further ahead, forever.  A single hit (``a == b + 1``) is
    also a legal transient of the very last iteration, so the oracle
    invariant is ``a - b <= 1``; a drift of two or more means at least
    two lost updates, which no correct execution can produce.
    """

    name = "naive-counter"

    def __init__(self, target: int) -> None:
        self.target = target

    def flash(self, api: DeviceAPI) -> None:
        memory = api.device.memory
        memory.write_u16(api.nv_var("cnt.a"), 0)
        memory.write_u16(api.nv_var("cnt.b"), 0)

    def main(self, api: DeviceAPI) -> None:
        a_addr = api.nv_var("cnt.a")
        b_addr = api.nv_var("cnt.b")
        while True:
            a = api.load_u16(a_addr)
            api.branch()
            if a >= self.target:
                raise ProgramComplete(a)
            api.store_u16(a_addr, a + 1)
            # --- the window: a reboot here loses b's update for good ---
            api.compute(300)
            api.compute(300)
            api.compute(300)
            b = api.load_u16(b_addr)
            api.store_u16(b_addr, b + 1)
            api.compute(100)


def _make_task_counter(target: int) -> TaskProgram:
    """The protected counter: one task updates both halves atomically."""

    def body(api: DeviceAPI, rt) -> None:
        a = rt.get("a")
        api.compute(900)
        b = rt.get("b")
        rt.set("a", a + 1)
        rt.set("b", b + 1)
        api.compute(100)

    def stop(api: DeviceAPI, rt) -> None:
        if rt.read_committed("a") >= target:
            raise ProgramComplete(rt.read_committed("a"))

    return TaskProgram(
        tasks=[Task("increment", body)],
        variables=["a", "b"],
        initial={"a": 0, "b": 0},
        stop=stop,
        name="counter",
    )


class CounterAdapter:
    """Paired NV counters: naive two-store update vs a DINO-style task.

    The protected build routes both writes through the task runtime's
    two-phase commit, so the committed masters are always equal.
    """

    name = "counter"
    invariant_keys = ("drift_ok",)

    def build(self, protect: bool, iterations: int):
        if protect:
            return _make_task_counter(iterations)
        return _NaiveCounter(iterations)

    def observe(self, program, api: DeviceAPI) -> dict:
        memory = api.device.memory
        if isinstance(program, TaskProgram):
            a = memory.read_u16(api.nv_var("tasks.counter.master.a"))
            b = memory.read_u16(api.nv_var("tasks.counter.master.b"))
        else:
            a = memory.read_u16(api.nv_var("cnt.a"))
            b = memory.read_u16(api.nv_var("cnt.b"))
        drift = a - b
        return {"drift_ok": 0 <= drift <= 1, "a": a, "b": b}

    def state_ranges(self, program, api: DeviceAPI) -> list[tuple[int, int]]:
        if isinstance(program, TaskProgram):
            names = ("tasks.counter.master.a", "tasks.counter.master.b")
        else:
            names = ("cnt.a", "cnt.b")
        return [(api.nv_var(n), 2) for n in names]


class _ChaosProgram:
    """A guest that misbehaves on purpose, keyed by its run index.

    Roles cycle with ``index % 5``:

    - 0, 1 — behave: complete a tiny op-counter workload normally;
    - 2 — **kill the worker**: ``os._exit`` mid-run, the way a segfault
      or the OOM killer would take the process out (no unwinding, no
      pickled exception — the pool just breaks);
    - 3 — **hang burning cycles**: an infinite compute loop that never
      completes; the cycle-budget watchdog (or, much later, the
      duration deadline) is the only way out;
    - 4 — **guest fault**: raise an exception the run loop does not
      model.

    Everything is a pure function of the run index, so a chaos
    campaign's report is byte-identical across repetitions — including
    its error records.
    """

    BEHAVE, COMPLETE, KILL_WORKER, HANG, RAISE = range(5)

    def __init__(self, index: int, iterations: int) -> None:
        self.role = index % 5
        self.iterations = iterations

    def flash(self, api: DeviceAPI) -> None:
        api.device.memory.write_u16(api.nv_var("chaos.done"), 0)

    def main(self, api: DeviceAPI) -> None:
        if self.role == self.KILL_WORKER:
            import os

            os._exit(86)  # no atexit, no unwinding: the worker is gone
        if self.role == self.HANG:
            while True:  # burns simulated cycles forever
                api.compute(50)
        if self.role == self.RAISE:
            raise RuntimeError("chaos guest fault (deliberate)")
        addr = api.nv_var("chaos.done")
        while True:
            done = api.load_u16(addr)
            api.branch()
            if done >= self.iterations:
                raise ProgramComplete(done)
            api.compute(50)
            api.store_u16(addr, done + 1)


class ChaosAdapter:
    """Adversarial engine-testing app: crashes, hangs, and faults.

    Exists to exercise the *campaign engine's* supervision — watchdogs,
    worker crash isolation, retry/quarantine — not to find
    intermittence bugs.  Uses the optional ``prepare(config, index)``
    adapter hook to learn which run it is building for.

    Never run a chaos campaign with ``workers=1`` (or degraded-serial)
    expectations of surviving role 2: an in-process ``os._exit`` takes
    the host with it, which is exactly why the scheduler quarantines
    suspect chunks instead of retrying them inline.
    """

    name = "chaos"
    invariant_keys = ()

    def __init__(self) -> None:
        self._index = 0

    def prepare(self, config, index: int) -> None:
        self._index = index

    def build(self, protect: bool, iterations: int) -> _ChaosProgram:
        return _ChaosProgram(self._index, iterations)

    def observe(self, program, api: DeviceAPI) -> dict:
        return {
            "role": program.role,
            "done": int(api.device.memory.read_u16(api.nv_var("chaos.done"))),
        }

    def state_ranges(self, program, api: DeviceAPI) -> list[tuple[int, int]]:
        return [(api.nv_var("chaos.done"), 2)]


class RfidFirmwareAdapter:
    """The ISA-level RFID dispatch core — the fuzzer's flagship target.

    Runs on the instruction core (so translated-block coverage is
    real), takes *input*: a byte string of demodulated reader frames
    fed through an ``IN`` port.  The default stimulus is all zeros,
    which exercises only the checksum handler — reaching the buggy
    paired-counter handler (and the rest of the dispatch tree) requires
    stimulus bytes only the fuzzer's mutators produce.  The invariant
    mirrors :class:`CounterAdapter`: a drift of two or more between the
    paired counters means at least two lost updates, which no correct
    execution (naive or protected, any schedule) can produce — except
    that the naive build *can*, when two reboots land in its window.
    """

    name = "rfid_firmware"
    invariant_keys = ("drift_ok",)
    #: The app consumes stimulus bytes: fuzz havoc must never starve it.
    requires_stimulus = True

    def default_stimulus(self, iterations: int) -> bytes:
        """The unfuzzed input: all-zero frames (checksum handler only)."""
        return bytes(max(8, int(iterations)))

    def build(self, protect: bool, iterations: int) -> RfidIsaFirmware:
        return self.build_fuzz(
            protect, iterations, self.default_stimulus(iterations)
        )

    def build_fuzz(
        self, protect: bool, iterations: int, stimulus: bytes
    ) -> RfidIsaFirmware:
        return RfidIsaFirmware(protect, iterations, stimulus)

    def observe(self, program, api: DeviceAPI) -> dict:
        memory = api.device.memory
        symbols = program.symbols
        a = memory.read_u16(symbols["cnt_a"])
        b = memory.read_u16(symbols["cnt_b"])
        drift = a - b
        return {
            "drift_ok": 0 <= drift <= 1,
            "a": a,
            "b": b,
            "crc": memory.read_u16(symbols["crc"]),
            "commands": memory.read_u16(symbols["prog"]),
        }

    def state_ranges(self, program, api: DeviceAPI) -> list[tuple[int, int]]:
        symbols = program.symbols
        return [(symbols["cnt_a"], 2), (symbols["cnt_b"], 2)]


ADAPTERS = {
    LinkedListAdapter.name: LinkedListAdapter,
    FibonacciAdapter.name: FibonacciAdapter,
    CounterAdapter.name: CounterAdapter,
    ChaosAdapter.name: ChaosAdapter,
    RfidFirmwareAdapter.name: RfidFirmwareAdapter,
}


def get_adapter(name: str):
    """Instantiate the adapter registered under ``name``."""
    try:
        return ADAPTERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; available: {sorted(ADAPTERS)}"
        ) from None
