"""Per-run execution: the intermittent leg, the control leg, replays.

:func:`execute_run` is the unit of campaign work — it is what worker
processes execute.  Each run builds a *fresh* simulator, power system,
target, and program for every leg, so runs share no state and can be
computed in any order, in any process, with identical results.

Seeding discipline: the run's seed is
``derive_seed(config.seed, "run", index)``; everything inside the run
(the fault plan, each leg's simulator) derives from it.  Nothing reads
the global ``random`` module or the wall clock, which is what makes a
campaign's report byte-identical across repetitions and worker counts.
"""

from __future__ import annotations

import random

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.faults import (
    CommitBoundaryTrigger,
    EnergyLevelTrigger,
    FaultPlan,
    RebootRecorder,
    ScheduledBrownouts,
    StateCorruptor,
    plan_faults,
)
from repro.campaign.oracle import Observation, Verdict, compare
from repro.power.harvester import RFHarvester
from repro.runtime.executor import IntermittentExecutor, RunResult
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.testing import make_bench_target, make_fast_target


def _observation(result: RunResult, observables: dict) -> Observation:
    detail = result.detail
    return Observation(
        status=result.status.value,
        faults=len(result.faults),
        boots=result.boots,
        reboots=result.reboots,
        observables=observables,
        detail=None if detail is None else str(detail),
    )


def _install_injectors(target, plan: FaultPlan) -> list:
    injectors = []
    if plan.mode == "op_index" and plan.ops_schedule:
        injectors.append(ScheduledBrownouts(target, list(plan.ops_schedule)))
    elif plan.mode == "energy_level" and plan.energy_levels:
        injectors.append(EnergyLevelTrigger(target, list(plan.energy_levels)))
    elif plan.mode == "commit_boundary" and plan.commit_counts:
        injectors.append(CommitBoundaryTrigger(target, list(plan.commit_counts)))
    return injectors


def run_intermittent_leg(
    config: CampaignConfig, adapter, plan: FaultPlan, leg_seed: int
) -> tuple[Observation, list[int], int]:
    """One intermittent execution under a fault plan.

    Returns the observation, the recorded brown-out schedule (ops per
    boot), and the number of injected brown-outs.
    """
    sim = Simulator(seed=leg_seed)
    target = make_fast_target(
        sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
    )
    if plan.duty is not None and isinstance(target.power.source, RFHarvester):
        target.power.source.duty_period = plan.duty[0]
        target.power.source.duty_fraction = plan.duty[1]
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    recorder = RebootRecorder(target)
    injectors = _install_injectors(target, plan)
    if plan.flips:
        injectors.append(
            StateCorruptor(
                target,
                adapter.state_ranges(program, executor.api),
                list(plan.flips),
            )
        )
    result = executor.run(duration=config.duration, stop_on_fault=True)
    observation = _observation(result, adapter.observe(program, executor.api))
    injected = sum(getattr(i, "injections", 0) for i in injectors)
    return observation, recorder.schedule(), injected


def run_continuous_leg(
    config: CampaignConfig, adapter, leg_seed: int
) -> Observation:
    """The control: the same program on continuous (tethered) power."""
    sim = Simulator(seed=leg_seed)
    target = make_fast_target(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    result = executor.run_continuous(duration=config.duration)
    return _observation(result, adapter.observe(program, executor.api))


def replay_with_schedule(
    config: CampaignConfig, adapter, schedule: list[int]
) -> Observation:
    """Replay a brown-out schedule on a bench supply.

    The bench target never browns out organically (§4.2's emulated
    intermittence): the schedule is the *only* source of power
    failures, so a candidate schedule either reproduces the divergence
    or it does not — the exact property the shrinker needs.
    """
    sim = Simulator(seed=derive_seed(config.seed, "replay"))
    target = make_bench_target(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    injector = ScheduledBrownouts(target, list(schedule))
    result = executor.run(duration=config.duration, stop_on_fault=True)
    injector.remove()
    return _observation(result, adapter.observe(program, executor.api))


def execute_run(config: CampaignConfig, index: int) -> dict:
    """Execute campaign run ``index``: both legs plus the oracle ruling.

    The returned record is a plain JSON-ready dict (it crosses process
    boundaries and lands in the report).
    """
    adapter = get_adapter(config.app)
    run_seed = derive_seed(config.seed, "run", index)
    plan = plan_faults(config, random.Random(derive_seed(run_seed, "plan")))
    intermittent, schedule, injected = run_intermittent_leg(
        config, adapter, plan, derive_seed(run_seed, "intermittent")
    )
    continuous = run_continuous_leg(
        config, adapter, derive_seed(run_seed, "continuous")
    )
    verdict = compare(intermittent, continuous, adapter.invariant_keys)
    return {
        "index": index,
        "seed": run_seed,
        "plan": plan.to_dict(),
        "injected_reboots": injected,
        "observed_schedule": schedule,
        "intermittent": intermittent.to_dict(),
        "continuous": continuous.to_dict(),
        "verdict": verdict.to_dict(),
    }


def verdict_for_schedule(
    config: CampaignConfig, adapter, continuous: Observation, schedule: list[int]
) -> Verdict:
    """The oracle's ruling on a bench replay of ``schedule``."""
    observation = replay_with_schedule(config, adapter, schedule)
    return compare(observation, continuous, adapter.invariant_keys)


def capture_divergence(config: CampaignConfig, record: dict) -> dict | None:
    """Re-run a diverging run with EDB attached in passive mode.

    Returns the monitor's divergence context (energy tail, watchpoint
    hit counts, printf output) — the correlated streams a developer
    would inspect in the console.  The debugger's leakage makes this
    leg's trajectory differ slightly from the recorded one, which is
    fine: the capture is diagnostic garnish, never oracle input.
    """
    from repro.core.debugger import EDB  # deferred: core pulls in the board stack

    adapter = get_adapter(config.app)
    run_seed = record["seed"]
    plan = plan_faults(config, random.Random(derive_seed(run_seed, "plan")))
    sim = Simulator(seed=derive_seed(run_seed, "capture"))
    target = make_fast_target(
        sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
    )
    edb = EDB(sim, target)
    edb.trace("energy")
    edb.trace("watchpoints")
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program, edb=edb.libedb())
    executor.flash()
    _install_injectors(target, plan)
    executor.run(duration=config.duration, stop_on_fault=True)
    return edb.divergence_context()
