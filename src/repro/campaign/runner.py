"""Per-run execution: the intermittent leg, the control leg, replays.

:func:`execute_run` is the unit of campaign work — it is what worker
processes execute.  Each run builds a *fresh* simulator, power system,
target, and program for every leg, so runs share no state and can be
computed in any order, in any process, with identical results.

Seeding discipline: the run's seed is
``derive_seed(config.seed, "run", index)``; everything inside the run
(the fault plan, each leg's simulator) derives from it.  Nothing reads
the global ``random`` module or the wall clock, which is what makes a
campaign's report byte-identical across repetitions and worker counts.
"""

from __future__ import annotations

import random

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.errors import (
    BudgetError,
    GuestFault,
    HostFault,
    RunError,
    error_record,
)
from repro.campaign.faults import (
    CommitBoundaryTrigger,
    EnergyLevelTrigger,
    FaultPlan,
    RebootRecorder,
    ScheduledBrownouts,
    StateCorruptor,
    plan_faults,
)
from repro.campaign.oracle import Observation, Verdict, compare
from repro.campaign.watchdog import RunWatchdog
from repro.power.harvester import RFHarvester
from repro.runtime.executor import IntermittentExecutor, RunResult
from repro.sim.kernel import BudgetExceeded, Simulator
from repro.sim.rng import derive_seed
from repro.testing import make_bench_target, make_fast_target, time_limit


#: Process-local tallies of which execution tier served the legs this
#: process simulated: block translation, superblock traces, and the
#: closed-form energy fast-forward.  Diagnostic plumbing only — the
#: snapshot never enters a campaign report (reports are byte-pinned
#: for identical seeds), and worker processes keep their own tallies,
#: so under ``--workers > 1`` the parent's counters stay zero.
_TIER_STATS = {
    "blocks_translated": 0,
    "blocks_executed": 0,
    "blocks_deopts": 0,
    "traces_formed": 0,
    "traces_executed": 0,
    "trace_exits": 0,
    "ff_spans": 0,
    "ff_spends": 0,
    "lanes_packed": 0,
    "lanes_peeled": 0,
    "batch_spans": 0,
}


def _harvest_tier_stats(target) -> None:
    """Fold one finished leg's tier counters into the process tallies."""
    stats = _TIER_STATS
    cpu = target.cpu
    stats["blocks_translated"] += cpu.blocks_translated
    stats["blocks_executed"] += cpu.blocks_executed
    stats["blocks_deopts"] += cpu.blocks_deopts
    stats["traces_formed"] += cpu.traces_formed
    stats["traces_executed"] += cpu.traces_executed
    stats["trace_exits"] += cpu.trace_exits
    stats["ff_spans"] += target.ff_spans
    stats["ff_spends"] += target.ff_spends


def note_lane_stats(*, packed: int = 0, peeled: int = 0, spans: int = 0) -> None:
    """Fold one batched group's lane accounting into the process tallies.

    ``packed`` counts lanes that entered the lane engine, ``peeled`` the
    subset peeled back into the scalar path mid-run, and ``spans`` the
    lock-step boundary-to-boundary segments the batch survived.
    """
    _TIER_STATS["lanes_packed"] += packed
    _TIER_STATS["lanes_peeled"] += peeled
    _TIER_STATS["batch_spans"] += spans


def tier_stats_snapshot() -> dict:
    """A copy of this process's execution-tier tallies."""
    return dict(_TIER_STATS)


def tier_stats_delta(before: dict) -> dict:
    """The tallies accumulated since ``before`` (a prior snapshot).

    How chunk workers report their tier/lane accounting back to the
    supervisor without ever touching the report JSON: the worker
    snapshots on entry, executes, and returns the difference.
    """
    return {
        key: value - before.get(key, 0)
        for key, value in _TIER_STATS.items()
    }


def reset_tier_stats() -> None:
    """Zero the process tallies (between campaigns in one process)."""
    for key in _TIER_STATS:
        _TIER_STATS[key] = 0


def _observation(result: RunResult, observables: dict) -> Observation:
    detail = result.detail
    return Observation(
        status=result.status.value,
        faults=len(result.faults),
        boots=result.boots,
        reboots=result.reboots,
        observables=observables,
        detail=None if detail is None else str(detail),
    )


def _install_injectors(target, plan: FaultPlan) -> list:
    injectors = []
    if plan.mode == "op_index" and plan.ops_schedule:
        injectors.append(ScheduledBrownouts(target, list(plan.ops_schedule)))
    elif plan.mode == "energy_level" and plan.energy_levels:
        injectors.append(EnergyLevelTrigger(target, list(plan.energy_levels)))
    elif plan.mode == "commit_boundary" and plan.commit_counts:
        injectors.append(CommitBoundaryTrigger(target, list(plan.commit_counts)))
    return injectors


def run_intermittent_leg(
    config: CampaignConfig, adapter, plan: FaultPlan, leg_seed: int
) -> tuple[Observation, list[int], int]:
    """One intermittent execution under a fault plan.

    Returns the observation, the recorded brown-out schedule (ops per
    boot), and the number of injected brown-outs.
    """
    sim = Simulator(seed=leg_seed)
    # Campaign legs never read the trace store (observations come from
    # the adapter and the recorder hooks); heartbeat GPIO edges and
    # power transitions record at a rate that is measurable across a
    # fleet, so keep the channel dark.  The capture replay, which DOES
    # consume traces, builds its own simulator with tracing on.
    sim.trace.enabled = False
    target = make_fast_target(
        sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
    )
    if plan.duty is not None and isinstance(target.power.source, RFHarvester):
        target.power.source.duty_period = plan.duty[0]
        target.power.source.duty_fraction = plan.duty[1]
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    recorder = RebootRecorder(target)
    injectors = _install_injectors(target, plan)
    if plan.flips:
        injectors.append(
            StateCorruptor(
                target,
                adapter.state_ranges(program, executor.api),
                list(plan.flips),
            )
        )
    with RunWatchdog(target, config.max_cycles, config.max_wall_s):
        result = executor.run(duration=config.duration, stop_on_fault=True)
    _harvest_tier_stats(target)
    observation = _observation(result, adapter.observe(program, executor.api))
    injected = sum(getattr(i, "injections", 0) for i in injectors)
    return observation, recorder.schedule(), injected


def run_continuous_leg(
    config: CampaignConfig, adapter, leg_seed: int
) -> Observation:
    """The control: the same program on continuous (tethered) power."""
    sim = Simulator(seed=leg_seed)
    sim.trace.enabled = False  # see run_intermittent_leg
    target = make_fast_target(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    with RunWatchdog(target, config.max_cycles, config.max_wall_s):
        result = executor.run_continuous(duration=config.duration)
    _harvest_tier_stats(target)
    return _observation(result, adapter.observe(program, executor.api))


def replay_with_schedule(
    config: CampaignConfig, adapter, schedule: list[int]
) -> Observation:
    """Replay a brown-out schedule on a bench supply.

    The bench target never browns out organically (§4.2's emulated
    intermittence): the schedule is the *only* source of power
    failures, so a candidate schedule either reproduces the divergence
    or it does not — the exact property the shrinker needs.
    """
    sim = Simulator(seed=derive_seed(config.seed, "replay"))
    sim.trace.enabled = False  # see run_intermittent_leg
    target = make_bench_target(sim)
    program = adapter.build(config.protect, config.iterations)
    executor = IntermittentExecutor(sim, target, program)
    executor.flash()
    injector = ScheduledBrownouts(target, list(schedule))
    with RunWatchdog(target, config.max_cycles, config.max_wall_s):
        result = executor.run(duration=config.duration, stop_on_fault=True)
    injector.remove()
    _harvest_tier_stats(target)
    return _observation(result, adapter.observe(program, executor.api))


def execute_run(
    config: CampaignConfig, index: int, *, snapshot: bool = False
) -> dict:
    """Execute campaign run ``index``: both legs plus the oracle ruling.

    The returned record is a plain JSON-ready dict (it crosses process
    boundaries and lands in the report).  Exceptions propagate —
    :func:`execute_run_safe` is the supervised wrapper that classifies
    them into the error taxonomy.

    ``snapshot`` is an execution-only switch (never part of the config,
    so it never appears in reports): it reuses the memoized continuous
    control leg (see :mod:`repro.campaign.forking`), which is verified
    bit-identical to running the leg from reset.
    """
    adapter = get_adapter(config.app)
    if hasattr(adapter, "prepare"):
        # Optional adapter hook: lets an adapter specialise per run
        # (the chaos adapter keys its misbehaviour off the run index).
        adapter.prepare(config, index)
    run_seed = derive_seed(config.seed, "run", index)
    plan = plan_faults(config, random.Random(derive_seed(run_seed, "plan")))
    try:
        intermittent, schedule, injected = run_intermittent_leg(
            config, adapter, plan, derive_seed(run_seed, "intermittent")
        )
        if snapshot:
            from repro.campaign.forking import continuous_observation

            continuous = continuous_observation(
                config, adapter, derive_seed(run_seed, "continuous")
            )
        else:
            continuous = run_continuous_leg(
                config, adapter, derive_seed(run_seed, "continuous")
            )
    except BudgetExceeded:
        raise  # classified as budget_exceeded, not as a guest fault
    except Exception as exc:
        # Anything a leg raises past the executor's own handling came
        # from simulating the guest — classify it on the guest side.
        raise GuestFault.wrap(exc, detail="raised while executing a leg") from exc
    verdict = compare(intermittent, continuous, adapter.invariant_keys)
    return {
        "index": index,
        "seed": run_seed,
        "plan": plan.to_dict(),
        "injected_reboots": injected,
        "observed_schedule": schedule,
        "intermittent": intermittent.to_dict(),
        "continuous": continuous.to_dict(),
        "verdict": verdict.to_dict(),
    }


def execute_run_safe(
    config: CampaignConfig, index: int, *, snapshot: bool = False
) -> dict:
    """Supervised :func:`execute_run`: always returns exactly one record.

    This is what worker processes (and the serial path) actually
    execute.  Any failure is folded into the structured error taxonomy
    (:mod:`repro.campaign.errors`) instead of propagating, so a single
    poisoned run can never take down its chunk, and every run index is
    accounted for in the report.  ``KeyboardInterrupt`` still
    propagates — interrupting the campaign is the supervisor's call,
    not a per-run error.
    """
    try:
        with time_limit(config.max_wall_s):
            return execute_run(config, index, snapshot=snapshot)
    except BudgetExceeded as exc:
        # A budget expired outside a leg's own handling (e.g. the
        # SIGALRM fired during planning, observation, or the oracle).
        return error_record(
            config, index, BudgetError.wrap(exc, detail="outside a leg")
        )
    except RunError as exc:
        return error_record(config, index, exc)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - the supervision boundary
        # Not guest execution and not a classified error: the engine
        # itself failed (planning, adapter lookup, record assembly).
        return error_record(
            config, index, HostFault.wrap(exc, detail="outside guest execution")
        )


def verdict_for_schedule(
    config: CampaignConfig, adapter, continuous: Observation, schedule: list[int]
) -> Verdict:
    """The oracle's ruling on a bench replay of ``schedule``."""
    observation = replay_with_schedule(config, adapter, schedule)
    return compare(observation, continuous, adapter.invariant_keys)


def capture_divergence(config: CampaignConfig, record: dict) -> dict | None:
    """Re-run a diverging run with EDB attached in passive mode.

    Returns the monitor's divergence context (energy tail, watchpoint
    hit counts, printf output) — the correlated streams a developer
    would inspect in the console.  The debugger's leakage makes this
    leg's trajectory differ slightly from the recorded one, which is
    fine: the capture is diagnostic garnish, never oracle input.

    Precisely because the capture leg's trajectory differs, the replay
    may fail to reproduce anything — or raise outright.  The capture is
    a post-pass over an already-complete record, so a replay failure is
    folded into a conservative ``{"unreproduced": ...}`` note rather
    than allowed to propagate and sink the campaign.
    """
    from repro.core.debugger import EDB  # deferred: core pulls in the board stack

    adapter = get_adapter(config.app)
    run_seed = record["seed"]
    try:
        plan = plan_faults(config, random.Random(derive_seed(run_seed, "plan")))
        sim = Simulator(seed=derive_seed(run_seed, "capture"))
        target = make_fast_target(
            sim, distance_m=plan.distance_m, fading_sigma=plan.fading_sigma
        )
        edb = EDB(sim, target)
        edb.trace("energy")
        edb.trace("watchpoints")
        program = adapter.build(config.protect, config.iterations)
        executor = IntermittentExecutor(sim, target, program, edb=edb.libedb())
        executor.flash()
        _install_injectors(target, plan)
        with RunWatchdog(target, config.max_cycles, config.max_wall_s):
            executor.run(duration=config.duration, stop_on_fault=True)
        return edb.divergence_context()
    except Exception as exc:
        return {
            "unreproduced": (
                f"capture replay did not complete: "
                f"{type(exc).__name__}: {exc}"
            )
        }
