"""Fault planning and injection for campaign runs.

A :class:`FaultPlan` is the fully materialised randomness of one run:
where power failures go, how the harvesting environment is perturbed,
and which bits (if any) get flipped in the app's protected FRAM state.
Plans are drawn from a per-run ``random.Random`` seeded by
:func:`repro.sim.rng.derive_seed`, so a campaign is replayable run by
run from its master seed alone.

The injectors translate a plan into device hooks:

- :class:`ScheduledBrownouts` — force a brown-out after an exact count
  of completed work units on each boot (the op-index axis, and the
  replay substrate the shrinker uses on a bench supply);
- :class:`EnergyLevelTrigger` — force a brown-out the first time the
  capacitor sags below a chosen voltage (placement follows the energy
  trajectory rather than the instruction stream);
- :class:`CommitBoundaryTrigger` — force a brown-out immediately after
  the N-th non-volatile write (failures land right at FRAM commit
  boundaries, the adversarial placement for checkpoint/commit code);
- :class:`StateCorruptor` — flip bits in the app's protected FRAM
  ranges at chosen boots (post-commit corruption);
- :class:`RebootRecorder` — passively record completed work units per
  boot, turning *any* run (organic or injected) into a replayable
  brown-out schedule.

All forced brown-outs go through
:meth:`repro.power.supply.PowerSystem.force_brownout`, so the program
observes them exactly as it observes an organic supply failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.campaign.config import CampaignConfig
from repro.mcu.device import TargetDevice
from repro.mcu.memory import FRAM_BASE, FRAM_SIZE


@dataclass(frozen=True)
class FaultPlan:
    """The materialised fault decisions of one campaign run."""

    mode: str
    ops_schedule: tuple[int, ...] = ()
    energy_levels: tuple[float, ...] = ()
    commit_counts: tuple[int, ...] = ()
    distance_m: float = 1.6
    fading_sigma: float = 1.5
    duty: tuple[float, float] | None = None
    flips: tuple[tuple[int, int, int], ...] = ()  # (boot, offset, bit)

    def to_dict(self) -> dict:
        """JSON-ready form for the report."""
        return {
            "mode": self.mode,
            "ops_schedule": list(self.ops_schedule),
            "energy_levels": list(self.energy_levels),
            "commit_counts": list(self.commit_counts),
            "distance_m": self.distance_m,
            "fading_sigma": self.fading_sigma,
            "duty": list(self.duty) if self.duty else None,
            "flips": [list(f) for f in self.flips],
        }


def plan_faults(config: CampaignConfig, rng: random.Random) -> FaultPlan:
    """Draw one run's fault plan from a seeded RNG.

    Every axis is drawn unconditionally-in-order (mode, environment,
    placement, corruption) so the mapping from seed to plan is stable
    even as individual axes are enabled or disabled.
    """
    mode = rng.choice(list(config.modes))
    distance = round(rng.uniform(*config.distance_range), 4)
    fading = round(rng.uniform(*config.fading_range), 4)
    duty = None
    if rng.random() < config.duty_chance:
        duty = (
            round(rng.uniform(2e-3, 20e-3), 6),
            round(rng.uniform(0.4, 0.9), 3),
        )
    count = rng.randint(config.min_reboots, config.max_reboots)
    ops_schedule: tuple[int, ...] = ()
    energy_levels: tuple[float, ...] = ()
    commit_counts: tuple[int, ...] = ()
    if mode == "op_index":
        ops_schedule = tuple(
            rng.randint(config.min_ops, config.max_ops) for _ in range(count)
        )
    elif mode == "energy_level":
        # Strictly between brown-out (1.8 V) and turn-on (2.4 V), with
        # margin so the trigger beats the organic threshold crossing.
        energy_levels = tuple(
            round(rng.uniform(1.85, 2.35), 4) for _ in range(count)
        )
    elif mode == "commit_boundary":
        cumulative = 0
        counts = []
        for _ in range(count):
            cumulative += rng.randint(1, max(2, config.max_ops // 8))
            counts.append(cumulative)
        commit_counts = tuple(counts)
    flips: tuple[tuple[int, int, int], ...] = ()
    if config.corrupt_checkpoints:
        flips = tuple(
            (rng.randint(1, max(2, count)), rng.randint(0, 4095), rng.randint(0, 7))
            for _ in range(rng.randint(1, 3))
        )
    return FaultPlan(
        mode=mode,
        ops_schedule=ops_schedule,
        energy_levels=energy_levels,
        commit_counts=commit_counts,
        distance_m=distance,
        fading_sigma=fading,
        duty=duty,
        flips=flips,
    )


class _Injector:
    """Hook bookkeeping shared by the injectors below.

    Injector counters are *simulated-world* state: a mid-run snapshot
    that omitted them would resume with a desynchronized schedule.
    Each injector therefore exposes ``export_state``/``restore_state``
    (plain tuples, no device references) that the snapshot layer's
    callers carry alongside a :class:`repro.snapshot.DeviceSnapshot`.
    """

    def __init__(self, device: TargetDevice) -> None:
        self.device = device
        self.injections = 0

    def _force(self) -> None:
        if self.device.power.force_brownout():
            self.injections += 1


class ScheduledBrownouts(_Injector):
    """Brown out after ``schedule[k]`` completed work units on boot k.

    Boot counting starts at the first reboot *after* installation, so
    installing post-flash never misattributes flash-time work.  Boots
    beyond the schedule run free.
    """

    def __init__(self, device: TargetDevice, schedule: list[int]) -> None:
        super().__init__(device)
        self.schedule = [int(n) for n in schedule]
        self._boot = -1
        self._ops = 0
        device.on_reboot.append(self._on_reboot)
        device.post_work_hooks.append(self._hook)

    def _on_reboot(self, count: int) -> None:
        self._boot += 1
        self._ops = 0

    def _hook(self) -> None:
        if not 0 <= self._boot < len(self.schedule):
            return
        self._ops += 1
        if self._ops == self.schedule[self._boot]:
            self._force()

    def export_state(self) -> tuple:
        """Snapshot-able progress state (see :class:`_Injector`)."""
        return (self._boot, self._ops, self.injections)

    def restore_state(self, state: tuple) -> None:
        """Rewind to a previously exported progress state."""
        self._boot, self._ops, self.injections = state

    def remove(self) -> None:
        """Uninstall both hooks."""
        if self._on_reboot in self.device.on_reboot:
            self.device.on_reboot.remove(self._on_reboot)
        if self._hook in self.device.post_work_hooks:
            self.device.post_work_hooks.remove(self._hook)


class EnergyLevelTrigger(_Injector):
    """Brown out when the capacitor first sags below each level in turn.

    Each level fires once, in sequence — the k-th trigger places the
    k-th failure on the energy trajectory rather than at an instruction
    count, which is how real brown-outs cluster around expensive code.
    """

    def __init__(self, device: TargetDevice, levels: list[float]) -> None:
        super().__init__(device)
        self.levels = [float(v) for v in levels]
        self._index = 0
        device.post_work_hooks.append(self._hook)

    def _hook(self) -> None:
        if self._index >= len(self.levels):
            return
        power = self.device.power
        if power.is_on and power.vcap <= self.levels[self._index]:
            self._index += 1
            self._force()

    def export_state(self) -> tuple:
        """Snapshot-able progress state (see :class:`_Injector`)."""
        return (self._index, self.injections)

    def restore_state(self, state: tuple) -> None:
        """Rewind to a previously exported progress state."""
        self._index, self.injections = state

    def remove(self) -> None:
        """Uninstall the hook."""
        if self._hook in self.device.post_work_hooks:
            self.device.post_work_hooks.remove(self._hook)


class CommitBoundaryTrigger(_Injector):
    """Brown out immediately after the N-th non-volatile write.

    Counts map-level FRAM stores via the memory write observers, so the
    forced failure lands right after a commit-style write completes —
    the adversarial placement for checkpoint and two-phase-commit code
    (and for Figure 3's ``tail->next = e``).
    """

    def __init__(self, device: TargetDevice, counts: list[int]) -> None:
        super().__init__(device)
        self.counts = sorted(int(c) for c in counts)
        self._index = 0
        self.writes_seen = 0
        device.memory.write_observers.append(self._observer)

    def _observer(self, address: int, width: int) -> None:
        if not FRAM_BASE <= address < FRAM_BASE + FRAM_SIZE:
            return
        self.writes_seen += 1
        if (
            self._index < len(self.counts)
            and self.writes_seen == self.counts[self._index]
        ):
            self._index += 1
            self._force()

    def export_state(self) -> tuple:
        """Snapshot-able progress state (see :class:`_Injector`)."""
        return (self._index, self.writes_seen, self.injections)

    def restore_state(self, state: tuple) -> None:
        """Rewind to a previously exported progress state."""
        self._index, self.writes_seen, self.injections = state

    def remove(self) -> None:
        """Uninstall the observer."""
        if self._observer in self.device.memory.write_observers:
            self.device.memory.write_observers.remove(self._observer)


class StateCorruptor:
    """Flip bits in the app's protected FRAM ranges at chosen boots.

    Flips happen host-side at boot boundaries (the device is off when
    FRAM decays or wears), through the region layer so memory write
    observers — e.g. a commit-boundary trigger — never count them.
    """

    def __init__(
        self,
        device: TargetDevice,
        ranges: list[tuple[int, int]],
        flips: list[tuple[int, int, int]],
    ) -> None:
        self.device = device
        self.ranges = [(int(a), int(s)) for a, s in ranges if s > 0]
        self.flips = [(int(b), int(o), int(bit)) for b, o, bit in flips]
        self.applied: list[tuple[int, int]] = []  # (address, bit)
        self._boot = -1
        device.on_reboot.append(self._on_reboot)

    def _address_for(self, offset: int) -> int | None:
        total = sum(size for _, size in self.ranges)
        if total == 0:
            return None
        offset %= total
        for base, size in self.ranges:
            if offset < size:
                return base + offset
            offset -= size
        return None

    def _on_reboot(self, count: int) -> None:
        self._boot += 1
        for boot, offset, bit in self.flips:
            if boot != self._boot:
                continue
            address = self._address_for(offset)
            if address is None:
                continue
            region = self.device.memory.region_at(address, 1)
            region.write_u8(address, region.read_u8(address) ^ (1 << bit))
            self.device.memory.notify_out_of_band(address, 1)
            self.applied.append((address, bit))
        if self.applied:
            # Region-level writes bypass the map observers on purpose
            # (the commit-boundary trigger must not count decay), so the
            # CPU's decoded-instruction cache is told explicitly — a
            # flip could land in code bytes.
            self.device.cpu.invalidate_decode_cache()

    def export_state(self) -> tuple:
        """Snapshot-able progress state (see :class:`_Injector`)."""
        return (self._boot, tuple(self.applied))

    def restore_state(self, state: tuple) -> None:
        """Rewind to a previously exported progress state."""
        boot, applied = state
        self._boot = boot
        self.applied = list(applied)

    def remove(self) -> None:
        """Uninstall the hook."""
        if self._on_reboot in self.device.on_reboot:
            self.device.on_reboot.remove(self._on_reboot)


class RebootRecorder:
    """Record completed work units per boot — the replayable schedule.

    The schedule contains only brown-out-terminated boots: the final
    boot (ended by deadline, completion, or a crash) is not a reboot
    the replay should inject.
    """

    def __init__(self, device: TargetDevice) -> None:
        self.device = device
        self._completed: list[int] = []
        self._ops = 0
        self._started = False
        device.on_reboot.append(self._on_reboot)
        device.post_work_hooks.append(self._hook)

    def _on_reboot(self, count: int) -> None:
        if self._started:
            self._completed.append(self._ops)
        self._started = True
        self._ops = 0

    def _hook(self) -> None:
        self._ops += 1

    def schedule(self) -> list[int]:
        """Ops-per-boot for every brown-out-terminated boot so far."""
        return list(self._completed)

    def export_state(self) -> tuple:
        """Snapshot-able progress state (see :class:`_Injector`)."""
        return (tuple(self._completed), self._ops, self._started)

    def restore_state(self, state: tuple) -> None:
        """Rewind to a previously exported progress state."""
        completed, ops, started = state
        self._completed = list(completed)
        self._ops = ops
        self._started = started

    def remove(self) -> None:
        """Uninstall both hooks."""
        if self._on_reboot in self.device.on_reboot:
            self.device.on_reboot.remove(self._on_reboot)
        if self._hook in self.device.post_work_hooks:
            self.device.post_work_hooks.remove(self._hook)
