"""Command-line front end: ``python -m repro.campaign``.

Example::

    python -m repro.campaign --app linked_list --runs 200 --workers 4 \
        --seed 42 --out campaign_report.json

Wall-clock timing is printed to the console but deliberately kept out
of the JSON report, which must be byte-identical for identical seeds.

Exit codes: 0 success; 1 divergence found under ``--fail-on-divergence``;
2 usage error; 3 host-side failure records (``host_fault`` /
``worker_lost``) in the report; 130 interrupted (a valid partial report
and journal are still written first).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.campaign.apps import get_adapter
from repro.campaign.config import FAULT_MODES, CampaignConfig
from repro.campaign.errors import HOST_SIDE_KINDS
from repro.campaign.journal import JournalMismatch
from repro.campaign.report import write_report
from repro.campaign.scheduler import run_campaign

EXIT_OK = 0
EXIT_DIVERGED = 1
EXIT_USAGE = 2
EXIT_HOST_FAULT = 3
EXIT_INTERRUPTED = 130


def build_parser() -> argparse.ArgumentParser:
    """The campaign CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=(
            "Deterministic fault-injection campaign: run an intermittent "
            "application hundreds of times under randomized power "
            "failures and diff every run against continuous power."
        ),
    )
    defaults = CampaignConfig()
    parser.add_argument("--app", default=defaults.app,
                        help="application under test (default: %(default)s)")
    parser.add_argument("--runs", type=int, default=defaults.runs,
                        help="number of randomized runs (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=defaults.seed,
                        help="master seed (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="worker processes (default: %(default)s)")
    parser.add_argument("--protect", action="store_true",
                        help="run the intermittence-protected app variant")
    parser.add_argument("--iterations", type=int, default=defaults.iterations,
                        help="workload size per run (default: %(default)s)")
    parser.add_argument("--duration", type=float, default=defaults.duration,
                        help="simulated seconds per run (default: %(default)s)")
    parser.add_argument("--modes", default=",".join(defaults.modes),
                        help=f"comma-separated fault modes from {FAULT_MODES}")
    parser.add_argument("--mode", choices=("sample", "fuzz"),
                        default=defaults.mode,
                        help="sample: independent random runs; fuzz: "
                             "coverage-guided search over fault schedules "
                             "and stimuli (default: %(default)s)")
    parser.add_argument("--fuzz-rounds", type=int,
                        default=defaults.fuzz_rounds,
                        help="fuzz mode: search rounds the run budget is "
                             "split into (default: %(default)s)")
    parser.add_argument("--corpus", metavar="PATH",
                        help="fuzz mode: seed round zero from PATH if it "
                             "exists and write the final corpus back to it")
    parser.add_argument("--corrupt-checkpoints", action="store_true",
                        help="enable the FRAM bit-flip corruption axis")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing diverging reboot schedules")
    parser.add_argument("--shrink-limit", type=int,
                        default=defaults.shrink_limit,
                        help="max diverging runs to shrink (default: %(default)s)")
    parser.add_argument("--capture", action="store_true",
                        help="re-run the first divergence with EDB attached "
                             "and embed the monitor context in the report")
    parser.add_argument("--chunk", type=int, default=defaults.chunk,
                        help="runs per work unit (0 = auto)")
    parser.add_argument("--max-cycles", type=int, default=defaults.max_cycles,
                        help="watchdog: simulated-cycle budget per leg, "
                             "deterministic (0 = off; default: %(default)s)")
    parser.add_argument("--max-wall", type=float, default=defaults.max_wall_s,
                        metavar="SECONDS",
                        help="watchdog: wall-clock budget per run, "
                             "non-deterministic backstop (0 = off; "
                             "default: %(default)s)")
    parser.add_argument("--max-retries", type=int,
                        default=defaults.max_retries,
                        help="solo worker-loss failures before a run is "
                             "quarantined (default: %(default)s)")
    parser.add_argument("--retry-backoff", type=float,
                        default=defaults.retry_backoff, metavar="SECONDS",
                        help="base of the exponential retry backoff "
                             "(default: %(default)s)")
    parser.add_argument("--journal", metavar="PATH",
                        help="journal completed chunks to PATH as they finish "
                             "(crash-safe checkpoint for --resume)")
    parser.add_argument("--resume", metavar="PATH",
                        help="resume from a journal: skip its completed runs "
                             "and keep appending to it (corrupted lines are "
                             "quarantined and their runs re-executed)")
    parser.add_argument("--fsync-journal", action="store_true",
                        help="fsync the journal after every chunk line "
                             "(durable against host power loss, slower)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop scheduling new runs after the first "
                             "diverged or errored record (partial report)")
    snapshot = parser.add_mutually_exclusive_group()
    snapshot.add_argument("--snapshot", dest="snapshot", action="store_true",
                          default=True,
                          help="share campaign prefixes via device snapshots "
                               "(default; reports are byte-identical either "
                               "way)")
    snapshot.add_argument("--no-snapshot", dest="snapshot",
                          action="store_false",
                          help="simulate every run from reset (the legacy "
                               "execution path)")
    batch = parser.add_mutually_exclusive_group()
    batch.add_argument("--batch", dest="batch", action="store_true",
                       default=True,
                       help="pack embarrassingly-similar legs into NumPy "
                            "lanes and step them lock-step (default; "
                            "reports are byte-identical either way)")
    batch.add_argument("--no-batch", dest="batch", action="store_false",
                       help="run every leg through the scalar path "
                            "(also forced by REPRO_NO_BATCH=1 or a "
                            "missing numpy)")
    parser.add_argument("--out", default="campaign_report.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--fail-on-divergence", action="store_true",
                        help="exit nonzero when any run diverges")
    return parser


def config_from_args(args: argparse.Namespace) -> CampaignConfig:
    """Translate parsed CLI arguments into a validated config."""
    get_adapter(args.app)  # fail fast with the list of known apps
    if args.journal and args.resume:
        raise ValueError("--journal and --resume are mutually exclusive "
                         "(--resume keeps appending to its journal)")
    if args.corpus and args.mode != "fuzz":
        raise ValueError("--corpus requires --mode fuzz")
    return CampaignConfig(
        app=args.app,
        runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        protect=args.protect,
        iterations=args.iterations,
        duration=args.duration,
        modes=tuple(m.strip() for m in args.modes.split(",") if m.strip()),
        corrupt_checkpoints=args.corrupt_checkpoints,
        shrink=not args.no_shrink,
        shrink_limit=args.shrink_limit,
        capture=args.capture,
        chunk=args.chunk,
        max_cycles=args.max_cycles,
        max_wall_s=args.max_wall,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        mode=args.mode,
        fuzz_rounds=args.fuzz_rounds,
    )


def _print_summary(report: dict, config: CampaignConfig, elapsed: float,
                   workers: int, tier: dict | None = None) -> None:
    summary = report["summary"]
    variant = "protected" if config.protect else "naive"
    extras = ""
    if summary["nonterminating"]:
        extras += f", {summary['nonterminating']} nonterminating"
    if summary["errors"]:
        extras += f", {summary['errors']} errored"
    print(
        f"{config.app} ({variant}): {summary['runs']} runs in {elapsed:.1f}s "
        f"({workers} worker{'s' if workers != 1 else ''}) — "
        f"{summary['diverged']} diverged, {summary['agree']} agreed, "
        f"{summary['inconclusive']} inconclusive{extras}"
    )
    # Workers return per-chunk tier/lane deltas that the scheduler folds
    # into this sink, so the tallies are complete under --workers > 1
    # too.  They stay console-only: never part of the JSON report.
    if tier and any(tier.values()):
        print(
            f"  tier: {tier['blocks_executed']} block dispatches "
            f"({tier['blocks_translated']} translated, "
            f"{tier['blocks_deopts']} deopts), "
            f"{tier['traces_executed']} trace runs "
            f"({tier['traces_formed']} formed, "
            f"{tier['trace_exits']} side exits), "
            f"{tier['ff_spans']} fast-forward spans "
            f"({tier['ff_spends']} spends)"
        )
        if tier.get("lanes_packed"):
            print(
                f"  lanes: {tier['lanes_packed']} packed "
                f"({tier['lanes_peeled']} peeled, "
                f"{tier['batch_spans']} batch spans)"
            )
    coverage = report.get("coverage")
    if coverage is not None:
        trail = " -> ".join(
            str(r["blocks"]) for r in coverage["rounds"]
        ) or "0"
        print(
            f"  coverage: {coverage['blocks']} blocks "
            f"({len(coverage['rounds'])} rounds: {trail}), "
            f"corpus {coverage['corpus']}"
        )
    if report.get("partial"):
        partial = report["partial"]
        why = "interrupted" if partial["interrupted"] else "fail-fast"
        print(
            f"  PARTIAL ({why}): {partial['completed']}/{partial['total']} "
            f"runs completed"
        )
    for divergence in report["divergences"]:
        reboots = len(divergence["observed_schedule"])
        if "shrunk" not in divergence:
            note = (
                "beyond --shrink-limit" if config.shrink
                else "shrinking disabled"
            )
            where = f"schedule: {reboots} reboots ({note})"
        elif divergence["shrunk"] is None:
            where = (
                f"schedule: {reboots} reboots "
                f"(did not reproduce on bench replay)"
            )
        else:
            shrunk = divergence["shrunk"]
            where = (
                f"minimal schedule: {shrunk['schedule']} "
                f"({shrunk['reboots']} reboot{'s' if shrunk['reboots'] != 1 else ''})"
            )
        print(
            f"  run {divergence['index']} [{divergence['plan']['mode']}] "
            f"{divergence['verdict']['reason']} — {where}"
        )
    for error in report["errors"]:
        print(
            f"  run {error['index']} ERROR [{error['error']['kind']}] "
            f"{error['error']['message']}"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"\r  {done}/{total} runs", end="", file=sys.stderr, flush=True)

    started = time.perf_counter()
    tier_stats: dict = {}
    try:
        report = run_campaign(
            config,
            progress=progress,
            journal_path=args.journal,
            resume_from=args.resume,
            fail_fast=args.fail_fast,
            snapshot=args.snapshot,
            batch=args.batch,
            corpus_path=args.corpus,
            journal_fsync=args.fsync_journal,
            stats=tier_stats,
        )
    except JournalMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except FileNotFoundError as exc:
        print(f"error: cannot resume: {exc}", file=sys.stderr)
        return EXIT_USAGE
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(file=sys.stderr)
    path = write_report(args.out, report)

    _print_summary(report, config, elapsed, config.workers, tier_stats)
    print(f"report: {path}")

    partial = report.get("partial")
    if partial and partial["interrupted"]:
        return EXIT_INTERRUPTED
    summary = report["summary"]
    if any(k in HOST_SIDE_KINDS for k in summary["error_kinds"]):
        return EXIT_HOST_FAULT
    if summary["diverged"] and (args.fail_on_divergence or args.fail_fast):
        return EXIT_DIVERGED
    return EXIT_OK
