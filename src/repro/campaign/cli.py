"""Command-line front end: ``python -m repro.campaign``.

Example::

    python -m repro.campaign --app linked_list --runs 200 --workers 4 \
        --seed 42 --out campaign_report.json

Wall-clock timing is printed to the console but deliberately kept out
of the JSON report, which must be byte-identical for identical seeds.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.campaign.apps import get_adapter
from repro.campaign.config import FAULT_MODES, CampaignConfig
from repro.campaign.report import write_report
from repro.campaign.scheduler import run_campaign


def build_parser() -> argparse.ArgumentParser:
    """The campaign CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=(
            "Deterministic fault-injection campaign: run an intermittent "
            "application hundreds of times under randomized power "
            "failures and diff every run against continuous power."
        ),
    )
    defaults = CampaignConfig()
    parser.add_argument("--app", default=defaults.app,
                        help="application under test (default: %(default)s)")
    parser.add_argument("--runs", type=int, default=defaults.runs,
                        help="number of randomized runs (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=defaults.seed,
                        help="master seed (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="worker processes (default: %(default)s)")
    parser.add_argument("--protect", action="store_true",
                        help="run the intermittence-protected app variant")
    parser.add_argument("--iterations", type=int, default=defaults.iterations,
                        help="workload size per run (default: %(default)s)")
    parser.add_argument("--duration", type=float, default=defaults.duration,
                        help="simulated seconds per run (default: %(default)s)")
    parser.add_argument("--modes", default=",".join(defaults.modes),
                        help=f"comma-separated fault modes from {FAULT_MODES}")
    parser.add_argument("--corrupt-checkpoints", action="store_true",
                        help="enable the FRAM bit-flip corruption axis")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing diverging reboot schedules")
    parser.add_argument("--shrink-limit", type=int,
                        default=defaults.shrink_limit,
                        help="max diverging runs to shrink (default: %(default)s)")
    parser.add_argument("--capture", action="store_true",
                        help="re-run the first divergence with EDB attached "
                             "and embed the monitor context in the report")
    parser.add_argument("--chunk", type=int, default=defaults.chunk,
                        help="runs per work unit (0 = auto)")
    parser.add_argument("--out", default="campaign_report.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--fail-on-divergence", action="store_true",
                        help="exit nonzero when any run diverges")
    return parser


def config_from_args(args: argparse.Namespace) -> CampaignConfig:
    """Translate parsed CLI arguments into a validated config."""
    get_adapter(args.app)  # fail fast with the list of known apps
    return CampaignConfig(
        app=args.app,
        runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        protect=args.protect,
        iterations=args.iterations,
        duration=args.duration,
        modes=tuple(m.strip() for m in args.modes.split(",") if m.strip()),
        corrupt_checkpoints=args.corrupt_checkpoints,
        shrink=not args.no_shrink,
        shrink_limit=args.shrink_limit,
        capture=args.capture,
        chunk=args.chunk,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"\r  {done}/{total} runs", end="", file=sys.stderr, flush=True)

    started = time.perf_counter()
    report = run_campaign(config, progress=progress)
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(file=sys.stderr)
    path = write_report(args.out, report)

    summary = report["summary"]
    variant = "protected" if config.protect else "naive"
    print(
        f"{config.app} ({variant}): {summary['runs']} runs in {elapsed:.1f}s "
        f"({config.workers} worker{'s' if config.workers != 1 else ''}) — "
        f"{summary['diverged']} diverged, {summary['agree']} agreed, "
        f"{summary['inconclusive']} inconclusive"
    )
    for divergence in report["divergences"]:
        reboots = len(divergence["observed_schedule"])
        if "shrunk" not in divergence:
            note = (
                "beyond --shrink-limit" if config.shrink
                else "shrinking disabled"
            )
            where = f"schedule: {reboots} reboots ({note})"
        elif divergence["shrunk"] is None:
            where = (
                f"schedule: {reboots} reboots "
                f"(did not reproduce on bench replay)"
            )
        else:
            shrunk = divergence["shrunk"]
            where = (
                f"minimal schedule: {shrunk['schedule']} "
                f"({shrunk['reboots']} reboot{'s' if shrunk['reboots'] != 1 else ''})"
            )
        print(
            f"  run {divergence['index']} [{divergence['plan']['mode']}] "
            f"{divergence['verdict']['reason']} — {where}"
        )
    print(f"report: {path}")
    if args.fail_on_divergence and summary["diverged"]:
        return 1
    return 0
