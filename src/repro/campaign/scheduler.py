"""The campaign scheduler: chunked parallel execution plus post-passes.

Runs are independent by construction (see :mod:`repro.campaign.runner`),
so the scheduler's only real job is throughput bookkeeping: split the
run indices into chunks, farm the chunks out to worker processes, and
reassemble the records in index order so the output is identical no
matter which worker finished first.

Chunking matters because one run is short (tens of milliseconds): a
naive run-per-task pool drowns in IPC.  A chunk amortizes the pickle
and process round-trip over many runs while still load-balancing —
stragglers only ever hold one chunk, not a fixed shard.

The shrink and capture post-passes run in the parent process: they
touch at most ``shrink_limit`` runs, and keeping them serial keeps the
ddmin replay sequence (and therefore the report) deterministic.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.oracle import DIVERGED, Observation
from repro.campaign.report import build_report
from repro.campaign.runner import (
    capture_divergence,
    execute_run,
    run_continuous_leg,
    verdict_for_schedule,
)
from repro.campaign.shrinker import shrink_schedule
from repro.sim.rng import derive_seed


def _chunk_worker(config_dict: dict, indices: list[int]) -> list[dict]:
    """Worker entry point: execute a chunk of runs (picklable, module-level)."""
    config = CampaignConfig.from_dict(config_dict)
    return [execute_run(config, index) for index in indices]


def _chunks(config: CampaignConfig) -> list[list[int]]:
    indices = list(range(config.runs))
    if config.chunk > 0:
        size = config.chunk
    else:
        # ~4 chunks per worker balances stragglers against IPC overhead.
        size = max(1, min(25, (config.runs + 4 * config.workers - 1)
                          // (4 * config.workers)))
    return [indices[i : i + size] for i in range(0, len(indices), size)]


def _shrink_pass(config: CampaignConfig, records: list[dict]) -> None:
    """Minimize the first ``shrink_limit`` diverging runs in place."""
    diverging = [
        r for r in records if r["verdict"]["verdict"] == DIVERGED
    ][: config.shrink_limit]
    if not diverging:
        return
    adapter = get_adapter(config.app)
    continuous: Observation = run_continuous_leg(
        config, adapter, derive_seed(config.seed, "shrink-control")
    )
    for record in diverging:
        def still_fails(candidate: list[int]) -> bool:
            return verdict_for_schedule(
                config, adapter, continuous, candidate
            ).diverged

        minimal = shrink_schedule(record["observed_schedule"], still_fails)
        record["shrunk"] = (
            None
            if minimal is None
            else {"schedule": minimal, "reboots": len(minimal)}
        )


def run_campaign(
    config: CampaignConfig,
    progress: Callable[[int, int], None] | None = None,
) -> dict:
    """Execute a full campaign and return the report dict.

    ``progress(done, total)`` is invoked after each finished chunk.
    With ``workers == 1`` everything runs inline in this process —
    bit-for-bit the same records the pool produces, which is both the
    determinism contract and the debugging escape hatch.
    """
    chunks = _chunks(config)
    records: list[dict] = []
    done = 0
    if config.workers == 1:
        for chunk in chunks:
            records.extend(_chunk_worker(config.to_dict(), chunk))
            done += len(chunk)
            if progress is not None:
                progress(done, config.runs)
    else:
        config_dict = config.to_dict()
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            pending = {
                pool.submit(_chunk_worker, config_dict, chunk): len(chunk)
                for chunk in chunks
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    records.extend(future.result())
                    done += pending.pop(future)
                    if progress is not None:
                        progress(done, config.runs)
    records.sort(key=lambda r: r["index"])
    if config.shrink:
        _shrink_pass(config, records)
    if config.capture:
        for record in records:
            if record["verdict"]["verdict"] == DIVERGED:
                record["capture"] = capture_divergence(config, record)
                break
    return build_report(config, records)
