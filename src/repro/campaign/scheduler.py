"""The supervised campaign scheduler: chunked parallel execution that
survives its own workers.

Runs are independent by construction (see :mod:`repro.campaign.runner`),
so the scheduler's job splits in two.  The throughput half is unchanged
from the original design: split the run indices into chunks, farm the
chunks out to worker processes, and reassemble the records in index
order so the output is identical no matter which worker finished first.

The supervision half makes the engine *unkillable*:

- **Crash isolation.**  A worker process can die mid-chunk — segfault,
  OOM kill, a guest calling ``os._exit`` — which breaks the whole
  ``ProcessPoolExecutor``.  Every chunk that was in flight at the break
  becomes a *suspect*; the pool is rebuilt (after an exponential-
  backoff sleep) and suspects are retried **solo**, one chunk alone in
  the pool, so the next failure blames exactly one chunk.  A chunk that
  fails twice solo is split in half; a single-run chunk that exhausts
  ``max_retries`` solo failures is quarantined with a structured
  ``worker_lost`` record.  Innocent chunks co-blamed by someone else's
  crash never accumulate failures and are simply re-run.
- **Graceful degradation.**  If the pool cannot be (re)created at all,
  execution degrades to serial in-process: never-implicated chunks run
  inline (the supervised runner already converts their failures into
  records), while suspect chunks get ``worker_lost`` records rather
  than risking the host process on a run that just killed a worker.
- **Checkpoint/resume.**  With a journal attached, each finished
  chunk's records are appended and flushed immediately; a resumed
  campaign replays journaled records and executes only the missing
  indices.  Records are deterministic, so resumed and uninterrupted
  campaigns produce byte-identical reports.
- **Interrupt safety.**  ``KeyboardInterrupt`` stops scheduling,
  abandons the pool without waiting, and returns a valid *partial*
  report (marked with a top-level ``partial`` key) built from every
  record completed so far — the journal already holds them all.

The shrink and capture post-passes still run in the parent process:
they touch at most ``shrink_limit`` runs, keeping them serial keeps the
ddmin replay sequence (and therefore the report) deterministic, and
both now tolerate replays that no longer reproduce (or raise).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.apps import get_adapter
from repro.campaign.config import CampaignConfig
from repro.campaign.errors import HostFault, WorkerLost, error_record
from repro.campaign.journal import JournalWriter, load_journal
from repro.campaign.oracle import DIVERGED, ERROR, Observation, compare
from repro.campaign.report import build_report
from repro.campaign.runner import (
    capture_divergence,
    execute_run_safe,
    run_continuous_leg,
    tier_stats_delta,
    tier_stats_snapshot,
    verdict_for_schedule,
)
from repro.campaign.shrinker import shrink_schedule
from repro.sim.rng import derive_seed

#: Exponent cap for the retry backoff (``backoff * 2**n``): keeps the
#: worst-case sleep bounded even on a long quarantine cascade.
_MAX_BACKOFF_DOUBLINGS = 6


def _chunk_worker(
    config_dict: dict, indices: list[int], snapshot: bool = False,
    batch: bool = True,
) -> tuple[list[dict], dict]:
    """Worker entry point: execute a chunk of runs (picklable, module-level).

    Uses the *supervised* runner, so a failing run yields a structured
    error record instead of poisoning its whole chunk; the only way a
    chunk can fail as a unit is the worker process itself dying.

    ``snapshot`` routes the chunk through the prefix-fork engine
    (:func:`repro.campaign.forking.execute_chunk`), which shares work
    between runs whose fault plans allow it and produces byte-identical
    records either way; ``batch`` additionally routes fork-eligible
    groups through the NumPy lane engine (:mod:`repro.batch.engine`).
    Both are execution-only parameters — never part of the config dict,
    so reports and journals are unaffected by them.

    Returns ``(records, tier_delta)``: the chunk's records plus the
    tier/lane counter delta this execution accumulated, so a pool
    supervisor can aggregate diagnostics across worker processes
    without the counters ever entering the report.
    """
    config = CampaignConfig.from_dict(config_dict)
    before = tier_stats_snapshot()
    if snapshot:
        from repro.campaign.forking import execute_chunk

        chunk_records = execute_chunk(config, indices, batch=batch)
    else:
        chunk_records = [execute_run_safe(config, index) for index in indices]
    return chunk_records, tier_stats_delta(before)


def _chunk_indices(indices: list[int], config: CampaignConfig) -> list[list[int]]:
    if not indices:
        return []
    if config.chunk > 0:
        size = config.chunk
    else:
        # ~4 chunks per worker balances stragglers against IPC overhead.
        size = max(1, min(25, (len(indices) + 4 * config.workers - 1)
                          // (4 * config.workers)))
    return [indices[i : i + size] for i in range(0, len(indices), size)]


def _worker_lost_records(config: CampaignConfig, indices: list[int]) -> list[dict]:
    return [
        error_record(
            config,
            index,
            WorkerLost(
                "worker process executing this run was lost repeatedly; "
                "retries with backoff and chunk quarantine exhausted"
            ),
        )
        for index in indices
    ]


@dataclass
class _Chunk:
    """A unit of scheduled work plus its supervision history."""

    indices: list[int]
    #: Failures while this chunk was *alone* in the pool — the precise
    #: blame counter.  Co-blamed failures (another chunk's crash broke
    #: the shared pool) do not count.
    solo_failures: int = 0


@dataclass
class _Supervisor:
    """Drives chunks to completion through crashes, retries, and splits.

    The unit of work is pluggable: ``worker`` is any picklable
    module-level callable with the :func:`_chunk_worker` signature, and
    ``jobs`` optionally maps each run index to a JSON-ready payload the
    worker receives in place of the bare index (the fuzz scheduler's
    mutated candidates ride through here).  Supervision — crash blame,
    retries, splits, quarantine, journaling — is payload-agnostic: a
    chunk is always identified by its indices.
    """

    config: CampaignConfig
    records: dict[int, dict]
    progress: Callable[[int, int], None] | None = None
    journal: JournalWriter | None = None
    fail_fast: bool = False
    snapshot: bool = False
    batch: bool = True
    worker: Callable = _chunk_worker
    jobs: dict[int, dict] | None = None
    #: Optional sink for aggregated tier/lane counters.  Pool workers
    #: return their counter deltas alongside their records; only those
    #: *remote* deltas are folded in here — in-process execution already
    #: lands in this process's own tallies, which the campaign entry
    #: point folds separately (no double counting either way).
    stats: dict | None = None

    stop: bool = field(default=False, init=False)
    degraded: bool = field(default=False, init=False)
    _pool: ProcessPoolExecutor | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self._serial = self.config.workers == 1
        self._config_dict = self.config.to_dict()

    def _work_for(self, chunk: "_Chunk"):
        """What the worker receives for ``chunk``: indices or payloads."""
        if self.jobs is None:
            return chunk.indices
        return [self.jobs[index] for index in chunk.indices]

    # -- record plumbing ---------------------------------------------------
    def _collect(self, result, remote: bool = False) -> None:
        if isinstance(result, tuple):
            chunk_records, delta = result
            if remote and self.stats is not None:
                for key, value in delta.items():
                    self.stats[key] = self.stats.get(key, 0) + value
        else:
            # Synthesized records (worker_lost) carry no counter delta.
            chunk_records = result
        for record in chunk_records:
            self.records[record["index"]] = record
        if self.journal is not None:
            self.journal.chunk_done(chunk_records)
        if self.progress is not None:
            self.progress(len(self.records), self.config.runs)
        if self.fail_fast and any(
            r["verdict"]["verdict"] in (DIVERGED, ERROR) for r in chunk_records
        ):
            self.stop = True

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> bool:
        """True when a worker pool is available; degrades on failure."""
        if self._pool is not None:
            return True
        try:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
            return True
        except Exception:
            # The OS will not give us worker processes (fork failure,
            # resource exhaustion): degrade to serial in-process
            # execution instead of dying.
            self._serial = True
            self.degraded = True
            return False

    def _kill_pool(self, wait_for_exit: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait_for_exit, cancel_futures=True)

    # -- the supervision loop ----------------------------------------------
    def run(self, chunk_lists: list[list[int]]) -> None:
        fresh = deque(_Chunk(list(c)) for c in chunk_lists)
        suspects: deque[_Chunk] = deque()
        try:
            while (fresh or suspects) and not self.stop:
                if self._serial:
                    self._drain_serial(fresh, suspects)
                elif suspects:
                    self._retry_suspect(suspects)
                else:
                    self._parallel_round(fresh, suspects)
        finally:
            self._kill_pool(wait_for_exit=True)

    def _parallel_round(
        self, fresh: deque[_Chunk], suspects: deque[_Chunk]
    ) -> None:
        """Run fresh chunks with up to ``workers`` in flight.

        Returns when the queue drains, the pool breaks (every in-flight
        chunk becomes a suspect), or a fail-fast trip stops the show.
        Capping in-flight work at the worker count means a pool break
        implicates as few chunks as possible.
        """
        if not self._ensure_pool():
            return
        in_flight: dict = {}

        def submit_next() -> bool:
            chunk = fresh.popleft()
            try:
                future = self._pool.submit(
                    self.worker, self._config_dict, self._work_for(chunk),
                    self.snapshot, self.batch,
                )
            except Exception:
                fresh.appendleft(chunk)
                return False
            in_flight[future] = chunk
            return True

        broken = False
        while (fresh or in_flight) and not self.stop and not broken:
            while fresh and len(in_flight) < self.config.workers:
                if not submit_next():
                    broken = True
                    break
            if not in_flight:
                break
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = in_flight.pop(future)
                try:
                    self._collect(future.result(), remote=True)
                except Exception:
                    # The worker executing *some* in-flight chunk died
                    # and broke the shared pool; this future cannot say
                    # whether its own chunk was the killer.  Everyone
                    # still in flight is a suspect — but nobody's
                    # precise blame counter moves.
                    suspects.append(chunk)
                    broken = True
        if broken:
            for chunk in in_flight.values():
                suspects.append(chunk)
            self._kill_pool()

    def _retry_suspect(self, suspects: deque[_Chunk]) -> None:
        """Retry one suspect chunk alone in the pool (precise blame)."""
        chunk = suspects[0]
        delay = self.config.retry_backoff * (
            2 ** min(chunk.solo_failures, _MAX_BACKOFF_DOUBLINGS)
        )
        if delay > 0.0:
            time.sleep(delay)
        if not self._ensure_pool():
            return  # degraded; the main loop re-dispatches serially
        suspects.popleft()
        try:
            future = self._pool.submit(
                self.worker, self._config_dict, self._work_for(chunk),
                self.snapshot, self.batch,
            )
            self._collect(future.result(), remote=True)
        except KeyboardInterrupt:
            suspects.appendleft(chunk)
            raise
        except Exception:
            # The chunk failed *alone*: the blame is unambiguous.
            self._kill_pool()
            chunk.solo_failures += 1
            if len(chunk.indices) == 1:
                if chunk.solo_failures >= self.config.max_retries:
                    # Quarantined: the poisoned run index is recorded
                    # and the campaign moves on.
                    self._collect(
                        _worker_lost_records(self.config, chunk.indices)
                    )
                else:
                    suspects.append(chunk)
            elif chunk.solo_failures >= 2:
                # Repeat offender: split in half to home in on the
                # poisoned index.  Each half keeps one strike so it
                # gets exactly one solo retry before splitting again.
                mid = (len(chunk.indices) + 1) // 2
                suspects.append(_Chunk(chunk.indices[:mid], solo_failures=1))
                suspects.append(_Chunk(chunk.indices[mid:], solo_failures=1))
            else:
                suspects.append(chunk)

    def _drain_serial(
        self, fresh: deque[_Chunk], suspects: deque[_Chunk]
    ) -> None:
        """In-process execution: the workers==1 path and the degraded path.

        Suspect chunks — implicated in at least one worker loss — are
        *not* re-executed in-process: a run that just killed a worker
        would take the whole campaign down with it.  They are recorded
        as ``worker_lost`` instead.
        """
        while suspects and not self.stop:
            chunk = suspects.popleft()
            self._collect(_worker_lost_records(self.config, chunk.indices))
        while fresh and not self.stop:
            chunk = fresh.popleft()
            self._collect(
                self.worker(self._config_dict, self._work_for(chunk),
                            self.snapshot, self.batch)
            )


# -- post-passes -----------------------------------------------------------
def _shrink_pass(
    config: CampaignConfig, records: list[dict], snapshot: bool = False
) -> None:
    """Minimize the first ``shrink_limit`` diverging runs in place.

    Tolerant by construction: a control leg that fails to run marks the
    candidates unshrunk, and replays that raise are treated as "does
    not reproduce" (see :func:`repro.campaign.shrinker.shrink_schedule`).

    With ``snapshot`` on, ddmin probes replay from the nearest cached
    boundary snapshot of one long-lived bench session instead of
    re-simulating each candidate's shared prefix from reset; any
    session failure (or a violated zero-RNG invariant) falls back to
    the from-reset replay, probe by probe.
    """
    from repro.campaign.forking import ForkSession, continuous_observation

    diverging = [
        r for r in records if r["verdict"]["verdict"] == DIVERGED
    ][: config.shrink_limit]
    if not diverging:
        return
    adapter = get_adapter(config.app)
    try:
        if snapshot:
            continuous: Observation = continuous_observation(
                config, adapter, derive_seed(config.seed, "shrink-control")
            )
        else:
            continuous = run_continuous_leg(
                config, adapter, derive_seed(config.seed, "shrink-control")
            )
    except Exception:
        # No usable control, no shrinking — report the runs unshrunk
        # (the same conservative "did not reproduce" marker a failed
        # bench replay earns).
        for record in diverging:
            record["shrunk"] = None
        return
    session = None
    if snapshot and not hasattr(adapter, "prepare"):
        try:
            session = ForkSession.for_replay(config, adapter)
        except Exception:
            session = None
    try:
        for record in diverging:
            def still_fails(candidate: list[int]) -> bool:
                nonlocal session
                if session is not None:
                    try:
                        observation, _, _ = session.execute(candidate)
                        if session.rng_untouched:
                            return compare(
                                observation, continuous, adapter.invariant_keys
                            ).diverged
                    except KeyboardInterrupt:
                        raise
                    except BaseException:
                        pass
                    # Session state is suspect (a replay raised) or the
                    # zero-RNG invariant broke: retire the session and
                    # replay this and all later probes from reset.
                    session.close()
                    session = None
                return verdict_for_schedule(
                    config, adapter, continuous, candidate
                ).diverged

            minimal = shrink_schedule(record["observed_schedule"], still_fails)
            record["shrunk"] = (
                None
                if minimal is None
                else {"schedule": minimal, "reboots": len(minimal)}
            )
    finally:
        if session is not None:
            session.close()


def _capture_pass(config: CampaignConfig, records: list[dict]) -> None:
    for record in records:
        if record["verdict"]["verdict"] == DIVERGED:
            record["capture"] = capture_divergence(config, record)
            break


# -- the public entry point ------------------------------------------------
def run_campaign(
    config: CampaignConfig,
    progress: Callable[[int, int], None] | None = None,
    *,
    journal_path: str | None = None,
    resume_from: str | None = None,
    fail_fast: bool = False,
    snapshot: bool = True,
    batch: bool = True,
    corpus_path: str | None = None,
    journal_fsync: bool = False,
    stats: dict | None = None,
) -> dict:
    """Execute a full campaign under supervision and return the report.

    ``progress(done, total)`` is invoked after each finished chunk.
    With ``workers == 1`` everything runs inline in this process —
    bit-for-bit the same records the pool produces, which is both the
    determinism contract and the debugging escape hatch.

    ``journal_path`` journals completed chunks as they finish;
    ``resume_from`` loads such a journal, skips its completed runs, and
    appends new chunks to the same file (the two are mutually
    exclusive; resume implies journaling).  Corrupted journal lines are
    quarantined on load — their runs simply re-execute — and a journal
    that stops accepting appends mid-campaign downgrades to a
    :class:`~repro.campaign.errors.CampaignWarning` instead of killing
    the campaign.  ``journal_fsync`` syncs every journal line to stable
    storage.  ``fail_fast`` stops scheduling new work after the first
    diverged or errored record.

    ``snapshot`` (default on) enables the snapshot/fork execution
    paths — prefix-grouped run forking, memoized continuous legs, and
    boundary-snapshot ddmin replays (:mod:`repro.campaign.forking`).
    It is execution-only: the records, the journal format, and the
    report are byte-identical with it on or off, which is why it is a
    keyword here rather than a :class:`CampaignConfig` field.

    ``batch`` (default on) additionally routes fork-eligible groups
    through the NumPy lane engine (:mod:`repro.batch`); it is gated the
    same way (execution-only, byte-identical on/off/``REPRO_NO_BATCH``)
    and is inert when NumPy is unavailable or ``snapshot`` is off.

    ``stats`` (optional) is a plain dict the campaign folds its
    aggregated tier/lane execution counters into — both this process's
    tallies and the deltas pool workers report back with their chunks.
    Diagnostics only: the counters never enter the report.

    A ``KeyboardInterrupt`` — or a fail-fast trip — yields a valid
    *partial* report carrying a top-level ``partial`` key; a campaign
    that completes normally is guaranteed to hold exactly one record
    per run index (a scheduler hole, should one ever occur, is filled
    with a ``host_fault`` error record rather than silently dropped).

    ``config.mode == "fuzz"`` dispatches to the coverage-guided search
    (:func:`repro.campaign.fuzz.run_fuzz_campaign`), which reuses this
    module's supervisor round by round; ``corpus_path`` (fuzz only)
    seeds and persists the search corpus.
    """
    if config.mode == "fuzz":
        from repro.campaign.fuzz import run_fuzz_campaign

        return run_fuzz_campaign(
            config, progress, journal_path=journal_path,
            resume_from=resume_from, fail_fast=fail_fast,
            snapshot=snapshot, batch=batch, corpus_path=corpus_path,
            journal_fsync=journal_fsync, stats=stats,
        )
    if corpus_path is not None:
        raise ValueError("corpus_path requires mode='fuzz'")
    if journal_path is not None and resume_from is not None:
        raise ValueError("journal_path and resume_from are mutually exclusive")
    records: dict[int, dict] = {}
    journal: JournalWriter | None = None
    if resume_from is not None:
        records = load_journal(resume_from, config)
        journal = JournalWriter(
            resume_from, config, fresh=False, fsync=journal_fsync
        )
    elif journal_path is not None:
        journal = JournalWriter(
            journal_path, config, fresh=True, fsync=journal_fsync
        )

    remaining = [i for i in range(config.runs) if i not in records]
    supervisor = _Supervisor(
        config, records, progress=progress, journal=journal,
        fail_fast=fail_fast, snapshot=snapshot, batch=batch, stats=stats,
    )
    stats_before = tier_stats_snapshot() if stats is not None else None
    interrupted = False
    try:
        supervisor.run(_chunk_indices(remaining, config))
    except KeyboardInterrupt:
        # Stop scheduling, abandon the pool without waiting, and fall
        # through to build a valid partial report — the journal already
        # holds every completed chunk.
        interrupted = True
        supervisor._kill_pool()
    finally:
        if journal is not None:
            journal.close()

    if not interrupted and not supervisor.stop:
        for index in range(config.runs):
            if index not in records:
                records[index] = error_record(
                    config, index,
                    HostFault("scheduler lost this run without a record"),
                )
    ordered = [records[i] for i in sorted(records)]
    complete = not interrupted and len(ordered) == config.runs
    if complete:
        if config.shrink:
            _shrink_pass(config, ordered, snapshot=snapshot)
        if config.capture:
            _capture_pass(config, ordered)
    if stats is not None:
        # Everything this process executed itself — serial chunks,
        # degraded-mode chunks, the shrink/capture post-passes — landed
        # in the process tallies; pool workers' deltas were folded in
        # by the supervisor as their chunks completed.
        for key, value in tier_stats_delta(stats_before).items():
            stats[key] = stats.get(key, 0) + value
    report = build_report(config, ordered)
    if not complete:
        report["partial"] = {
            "completed": len(ordered),
            "total": config.runs,
            "interrupted": interrupted,
        }
    return report
