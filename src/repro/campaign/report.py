"""Deterministic JSON report assembly.

The report is the campaign's contract with its caller: for a given
:class:`~repro.campaign.config.CampaignConfig` it is **byte-identical**
across repetitions, worker counts, and machines.  That rules out
timestamps, wall-clock durations, hostnames, and float formatting
surprises — everything in here is either config, simulated quantities,
or counts, serialized with sorted keys.  (The CLI prints wall-clock
timing to the console precisely because it must stay out of this file's
output.)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.campaign.config import CampaignConfig
from repro.campaign.oracle import (
    AGREE,
    DIVERGED,
    ERROR,
    INCONCLUSIVE,
    NONTERMINATING,
)

REPORT_FORMAT = 2


def _summarize(records: list[dict]) -> dict:
    verdicts = {
        AGREE: 0, DIVERGED: 0, INCONCLUSIVE: 0, NONTERMINATING: 0, ERROR: 0,
    }
    statuses: dict[str, int] = {}
    modes: dict[str, int] = {}
    error_kinds: dict[str, int] = {}
    injected = 0
    observed = 0
    for record in records:
        verdicts[record["verdict"]["verdict"]] += 1
        error = record.get("error")
        if error is not None:
            error_kinds[error["kind"]] = error_kinds.get(error["kind"], 0) + 1
        intermittent = record["intermittent"]
        if intermittent is None:
            # An error record: the run never produced a leg observation.
            statuses["error"] = statuses.get("error", 0) + 1
        else:
            status = intermittent["status"]
            statuses[status] = statuses.get(status, 0) + 1
            observed += intermittent["reboots"]
        plan = record["plan"]
        if plan is not None:
            mode = plan["mode"]
            modes[mode] = modes.get(mode, 0) + 1
        injected += record["injected_reboots"]
    return {
        "runs": len(records),
        "agree": verdicts[AGREE],
        "diverged": verdicts[DIVERGED],
        "inconclusive": verdicts[INCONCLUSIVE],
        "nonterminating": verdicts[NONTERMINATING],
        "errors": verdicts[ERROR],
        "error_kinds": error_kinds,
        "statuses": statuses,
        "modes": modes,
        "injected_reboots": injected,
        "observed_reboots": observed,
    }


def _run_row(record: dict) -> dict:
    """The compact per-run row (full detail is kept for divergences)."""
    intermittent = record["intermittent"]
    plan = record["plan"]
    error = record.get("error")
    row = {
        "index": record["index"],
        "seed": record["seed"],
        "mode": None if plan is None else plan["mode"],
        "verdict": record["verdict"]["verdict"],
        "status": "error" if intermittent is None else intermittent["status"],
        "boots": 0 if intermittent is None else intermittent["boots"],
        "reboots": 0 if intermittent is None else intermittent["reboots"],
        "faults": 0 if intermittent is None else intermittent["faults"],
    }
    if error is not None:
        row["error"] = error["kind"]
    return row


def _divergence_row(record: dict) -> dict:
    row = {
        "index": record["index"],
        "seed": record["seed"],
        "plan": record["plan"],
        "injected_reboots": record["injected_reboots"],
        "observed_schedule": record["observed_schedule"],
        "intermittent": record["intermittent"],
        "continuous": record["continuous"],
        "verdict": record["verdict"],
    }
    if "shrunk" in record:
        row["shrunk"] = record["shrunk"]
    if "capture" in record:
        row["capture"] = record["capture"]
    if "fuzz" in record:
        # Fuzz genotype provenance: the stimulus (hex) and mutation
        # lineage a developer needs to replay the divergence.
        row["fuzz"] = record["fuzz"]
    return row


def build_report(config: CampaignConfig, records: list[dict]) -> dict:
    """Assemble the report dict from sorted, finalized run records."""
    records = sorted(records, key=lambda r: r["index"])
    return {
        "format": REPORT_FORMAT,
        "campaign": config.to_dict(),
        "summary": _summarize(records),
        "runs": [_run_row(r) for r in records],
        "divergences": [
            _divergence_row(r)
            for r in records
            if r["verdict"]["verdict"] == DIVERGED
        ],
        "errors": [
            {
                "index": r["index"],
                "seed": r["seed"],
                "error": r["error"],
                "verdict": r["verdict"],
            }
            for r in records
            if r.get("error") is not None
        ],
    }


def render_json(report: dict) -> str:
    """Canonical serialization: sorted keys, stable indentation."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(path: str | Path, report: dict) -> Path:
    """Write the canonical JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_json(report))
    return path
