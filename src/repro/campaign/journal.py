"""Checkpoint journal: crash-safe incremental persistence of run records.

The journal is a JSON-lines file the scheduler appends to as chunks
finish: a header line pinning the config, then one line per completed
chunk carrying its records.  Because every line is written and flushed
atomically-enough (a single ``write`` + ``flush`` of one ``\\n``-
terminated line), a campaign killed at any instant leaves a journal
whose complete lines are all valid — the half-written tail line, if
any, is simply discarded on load.

``--resume <journal>`` replays the journal's records instead of
re-executing their runs, re-chunks only the missing indices, and keeps
appending to the same file.  Records are deterministic for a fixed
seed, so a resumed campaign's final report is byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.campaign.config import CampaignConfig

JOURNAL_FORMAT = 1

#: Config keys that do not influence record content — a resume may
#: legitimately change them (more workers, different chunking, a
#: different retry posture).  Everything else must match exactly.
_EXECUTION_ONLY_KEYS = frozenset(
    {"workers", "chunk", "max_retries", "retry_backoff"}
)


class JournalMismatch(ValueError):
    """The journal being resumed belongs to a different campaign."""


def _record_relevant(config_dict: dict) -> dict:
    return {
        k: v for k, v in config_dict.items() if k not in _EXECUTION_ONLY_KEYS
    }


class JournalWriter:
    """Appends chunk-completion lines to a journal file."""

    def __init__(self, path: str | Path, config: CampaignConfig,
                 fresh: bool = True) -> None:
        self.path = Path(path)
        self._file: IO[str]
        if fresh:
            self._file = self.path.open("w")
            self._write_line(
                {"journal": JOURNAL_FORMAT, "config": config.to_dict()}
            )
        else:
            self._file = self.path.open("a")

    def _write_line(self, payload: dict) -> None:
        self._file.write(json.dumps(payload, sort_keys=True) + "\n")
        self._file.flush()

    def chunk_done(self, records: list[dict]) -> None:
        """Journal one finished chunk's records."""
        self._write_line(
            {"indices": [r["index"] for r in records], "records": records}
        )

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_journal(
    path: str | Path, config: CampaignConfig
) -> dict[int, dict]:
    """Load completed records from a journal, keyed by run index.

    Raises :class:`JournalMismatch` when the journal's config differs
    from ``config`` in any record-relevant field (execution-only knobs
    like worker count may change between sessions).  A truncated final
    line — the signature of a campaign killed mid-write — is ignored;
    records beyond ``config.runs`` (a resume with fewer runs) are
    dropped.
    """
    path = Path(path)
    records: dict[int, dict] = {}
    with path.open() as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise JournalMismatch(f"{path} has no valid journal header")
        if header.get("journal") != JOURNAL_FORMAT:
            raise JournalMismatch(
                f"{path} is not a format-{JOURNAL_FORMAT} campaign journal"
            )
        theirs = _record_relevant(header.get("config", {}))
        ours = _record_relevant(config.to_dict())
        if theirs != ours:
            changed = sorted(
                k for k in set(theirs) | set(ours)
                if theirs.get(k) != ours.get(k)
            )
            raise JournalMismatch(
                f"journal {path} was recorded for a different campaign "
                f"(differs in: {changed})"
            )
        for line in fh:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail: the campaign died mid-write
            for record in entry.get("records", ()):
                if 0 <= record["index"] < config.runs:
                    records[record["index"]] = record
    return records
