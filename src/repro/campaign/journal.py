"""Checkpoint journal: crash-safe incremental persistence of run records.

The journal is a JSON-lines file the scheduler appends to as chunks
finish: a header line pinning the config, then one line per completed
chunk carrying its records.  Because every line is written and flushed
atomically-enough (a single ``write`` + ``flush`` of one ``\\n``-
terminated line), a campaign killed at any instant leaves a journal
whose complete lines are all valid — the half-written tail line, if
any, is simply discarded on load.

Format 2 hardens the file against *host* faults, not just clean kills:

- every line is **CRC-framed** (``{"crc": N, "data": {...}}`` with
  ``N = crc32`` of the canonical serialisation of ``data``), so a
  bit-flipped or torn *interior* line — a failing disk, a concurrent
  writer, a torn write that later got appended over — is detected,
  **quarantined, and skipped** instead of crashing the load or
  silently feeding garbage records into a resumed report;
- append-mode opens terminate a torn tail with a newline first, so a
  resume never merges its first new line into the debris of the write
  the previous campaign died inside;
- append failures (disk full, revoked permissions) disable the writer
  and surface a structured :class:`CampaignWarning` while the campaign
  continues in memory — a sick journal never kills a healthy campaign;
- ``fsync=True`` additionally syncs every line to stable storage,
  trading throughput for power-failure durability of the host itself.

``--resume <journal>`` replays the journal's records instead of
re-executing their runs, re-chunks only the missing indices (including
any lost to quarantined lines), and keeps appending to the same file.
Records are deterministic for a fixed seed, so a resumed campaign's
final report is byte-identical to an uninterrupted one — even when the
journal it resumed from was torn or corrupted.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.campaign.config import CampaignConfig
from repro.campaign.errors import CampaignWarning

JOURNAL_FORMAT = 2

#: Config keys that do not influence record content — a resume may
#: legitimately change them (more workers, different chunking, a
#: different retry posture).  Everything else must match exactly.
_EXECUTION_ONLY_KEYS = frozenset(
    {"workers", "chunk", "max_retries", "retry_backoff"}
)


class JournalMismatch(ValueError):
    """The journal being resumed belongs to a different campaign."""


def _record_relevant(config_dict: dict) -> dict:
    return {
        k: v for k, v in config_dict.items() if k not in _EXECUTION_ONLY_KEYS
    }


# -- CRC framing --------------------------------------------------------------
def _body(payload: dict) -> bytes:
    """The canonical serialisation the CRC covers."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def frame_line(payload: dict) -> str:
    """One CRC-framed journal line (``\\n``-terminated)."""
    return (
        json.dumps(
            {"crc": zlib.crc32(_body(payload)), "data": payload},
            sort_keys=True,
        )
        + "\n"
    )


def unframe_line(line: str) -> dict:
    """Validate one framed line and return its payload.

    Raises ``ValueError`` on anything short of a fully intact frame:
    unparseable JSON, a missing envelope, or a CRC mismatch.
    """
    entry = json.loads(line)
    if (
        not isinstance(entry, dict)
        or "data" not in entry
        or not isinstance(entry.get("crc"), int)
    ):
        raise ValueError("not a CRC-framed journal line")
    if zlib.crc32(_body(entry["data"])) != entry["crc"]:
        raise ValueError("journal line CRC mismatch")
    return entry["data"]


def _salvage_indices(line: str) -> list[int] | None:
    """Best-effort index recovery from a CRC-failed (but parseable) line.

    The indices are *reporting* material only — the records on a failed
    line are never trusted — but naming the runs a corrupted line took
    with it makes the quarantine actionable.
    """
    try:
        entry = json.loads(line)
        indices = entry["data"]["indices"]
    except (ValueError, TypeError, KeyError):
        return None
    if isinstance(indices, list) and all(isinstance(i, int) for i in indices):
        return indices
    return None


class JournalWriter:
    """Appends CRC-framed chunk-completion lines to a journal file.

    ``fsync=True`` syncs every line to stable storage.  ``stream``
    substitutes an already-open text stream for the file (the
    resilience layer's injection seam — see
    :mod:`repro.resilience.chaosio`).

    Append errors after construction (disk full, revoked permissions)
    never propagate: the writer records a structured :attr:`failure`,
    emits a :class:`CampaignWarning`, and silently drops subsequent
    lines so the campaign finishes in memory.
    """

    def __init__(
        self,
        path: str | Path,
        config: CampaignConfig,
        fresh: bool = True,
        *,
        fsync: bool = False,
        stream: IO[str] | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.failure: dict | None = None
        self._file: IO[str]
        if stream is not None:
            self._file = stream
        elif fresh:
            self._file = self.path.open("w")
        else:
            self._file = self.path.open("a")
        if fresh:
            self._write_line(
                {"journal": JOURNAL_FORMAT, "config": config.to_dict()}
            )
        elif stream is None:
            self._terminate_torn_tail()

    def _terminate_torn_tail(self) -> None:
        """Newline-terminate the file if a torn write left it open-ended.

        Without this, the first appended line would merge into the torn
        debris and be lost with it; with it, the debris becomes one
        quarantinable garbage line and every new line stays intact.
        """
        try:
            with self.path.open("rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                torn = fh.read(1) != b"\n"
            if torn:
                self._file.write("\n")
                self._file.flush()
        except OSError:
            pass

    def _write_line(self, payload: dict) -> None:
        self._file.write(frame_line(payload))
        self._file.flush()
        if self.fsync:
            try:
                os.fsync(self._file.fileno())
            except (OSError, ValueError, AttributeError):
                pass  # not a real file (StringIO, chaos stream): flushed is all

    def chunk_done(self, records: list[dict]) -> None:
        """Journal one finished chunk's records.

        A write failure (torn by the host, disk full, permission
        revoked) disables the writer instead of crashing the campaign:
        the records live on in memory, the failure is surfaced as a
        structured :class:`CampaignWarning`, and a later ``--resume``
        simply re-executes whatever the journal is missing.
        """
        if self.failure is not None:
            return
        try:
            self._write_line(
                {"indices": [r["index"] for r in records], "records": records}
            )
        except OSError as exc:
            self.failure = {
                "path": str(self.path),
                "error": f"{type(exc).__name__}: {exc}",
                "action": "journaling disabled; campaign continuing in memory",
            }
            warnings.warn(
                f"journal {self.path}: append failed "
                f"({self.failure['error']}); journaling disabled, campaign "
                f"continuing in memory — a later --resume re-executes the "
                f"unjournalled runs",
                CampaignWarning,
                stacklevel=2,
            )
            try:
                self._file.close()
            except OSError:
                pass

    def close(self) -> None:
        if not self._file.closed:
            try:
                self._file.close()
            except OSError:
                pass

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalScan:
    """Everything a journal load learned, corruption included."""

    records: dict[int, dict] = field(default_factory=dict)
    #: One entry per quarantined line:
    #: ``{"line": n, "indices": [...] | None, "reason": str}``.
    quarantined: list[dict] = field(default_factory=list)
    truncated_tail: bool = False

    @property
    def quarantined_indices(self) -> list[int]:
        """Run indices named by quarantined lines (best effort)."""
        out: list[int] = []
        for entry in self.quarantined:
            out.extend(entry["indices"] or ())
        return sorted(set(out))


def scan_journal(path: str | Path, config: CampaignConfig) -> JournalScan:
    """Load a journal, quarantining corruption instead of raising.

    Raises :class:`JournalMismatch` only for header-level problems (a
    missing/corrupt header, a different campaign's config).  Body-line
    damage is never fatal:

    - a final line that fails to parse is the **truncated tail** of a
      campaign killed mid-write and is silently dropped;
    - an *interior* line that fails to parse, fails its CRC, or lacks
      the frame envelope is **quarantined**: reported (with its run
      indices when they can be salvaged) and skipped, so the resumed
      campaign re-executes exactly the runs the damage cost.

    Records beyond ``config.runs`` (a resume with fewer runs) are
    dropped.  A non-empty quarantine emits a :class:`CampaignWarning`.
    """
    path = Path(path)
    scan = JournalScan()
    # A bit-flipped byte can make the file undecodable as UTF-8;
    # replacement (not strict) decoding keeps the read alive so the
    # damaged line fails its CRC and is quarantined like any other.
    with path.open(encoding="utf-8", errors="replace") as fh:
        lines = fh.readlines()
    if not lines:
        raise JournalMismatch(f"{path} has no valid journal header")
    try:
        header = unframe_line(lines[0])
    except ValueError:
        raise JournalMismatch(f"{path} has no valid journal header") from None
    if header.get("journal") != JOURNAL_FORMAT:
        raise JournalMismatch(
            f"{path} is not a format-{JOURNAL_FORMAT} campaign journal"
        )
    theirs = _record_relevant(header.get("config", {}))
    ours = _record_relevant(config.to_dict())
    if theirs != ours:
        changed = sorted(
            k for k in set(theirs) | set(ours)
            if theirs.get(k) != ours.get(k)
        )
        raise JournalMismatch(
            f"journal {path} was recorded for a different campaign "
            f"(differs in: {changed})"
        )
    last = len(lines) - 1
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            entry = unframe_line(line)
        except ValueError as exc:
            if number - 1 == last and not line.endswith("\n"):
                # The classic kill signature: an unterminated final
                # line the dying write never finished.
                scan.truncated_tail = True
            else:
                scan.quarantined.append(
                    {
                        "line": number,
                        "indices": _salvage_indices(line),
                        "reason": str(exc),
                    }
                )
            continue
        for record in entry.get("records", ()):
            if (
                isinstance(record, dict)
                and isinstance(record.get("index"), int)
                and 0 <= record["index"] < config.runs
            ):
                scan.records[record["index"]] = record
    if scan.quarantined:
        named = scan.quarantined_indices
        warnings.warn(
            f"journal {path}: quarantined {len(scan.quarantined)} corrupted "
            f"line(s) at {[q['line'] for q in scan.quarantined]}"
            + (f" covering run indices {named}" if named else "")
            + "; the affected runs will be re-executed",
            CampaignWarning,
            stacklevel=2,
        )
    return scan


def load_journal(
    path: str | Path, config: CampaignConfig
) -> dict[int, dict]:
    """Completed records from a journal, keyed by run index.

    The tolerant façade over :func:`scan_journal`: corruption is
    quarantined (and warned about), never raised — only header-level
    mismatches raise :class:`JournalMismatch`.
    """
    return scan_journal(path, config).records
