"""Per-run watchdogs: simulated-cycle and wall-clock budgets.

A campaign run can stop making progress in two distinct ways and the
watchdog covers both:

- **Cycle budget** (`max_cycles`): the guest keeps executing — burning
  simulated cycles — but never completes and never browns out hard
  enough for the duration deadline to matter on wall-clock terms.  The
  watchdog hooks the device's post-work chain and raises
  :class:`~repro.sim.kernel.BudgetExceeded` the moment the leg's cycle
  count crosses the budget.  Cycle counting is part of the simulation,
  so a cycle-budget trip is **deterministic**: the same seed trips at
  the same instruction every time, and reports stay byte-identical.
- **Wall budget** (`max_wall_s`): the leg is burning *host* time.  Two
  layers: the same post-work hook cheaply polls the monotonic clock
  every few hundred work units (catches guests that execute slowly),
  and :func:`repro.testing.time_limit` arms a SIGALRM alarm around the
  whole run (catches host-side livelocks that never execute guest work
  at all).  Wall trips are inherently non-deterministic; campaigns
  that need byte-identical reports use the cycle budget and keep the
  wall budget as a backstop sized far above normal runtimes.

Both trips surface as the conservative ``NONTERMINATING`` verdict (or
a ``budget_exceeded`` error record if the alarm fires outside a leg),
never as a hang.
"""

from __future__ import annotations

import time

from repro.mcu.device import TargetDevice
from repro.sim.kernel import BudgetExceeded

#: Post-work calls between monotonic-clock polls (a poll is ~100 ns;
#: at any realistic op rate this bounds overshoot to well under 100 ms
#: of host time per leg).
_WALL_POLL_EVERY = 512


class RunWatchdog:
    """Budget enforcement for one execution leg.

    Installs a single post-work hook on ``device``; uninstall with
    :meth:`remove` (or use as a context manager).  A zero/falsy budget
    disables that axis.
    """

    def __init__(
        self,
        device: TargetDevice,
        max_cycles: int = 0,
        max_wall_s: float = 0.0,
    ) -> None:
        self.device = device
        self.max_cycles = int(max_cycles)
        self.max_wall_s = float(max_wall_s)
        self._cycles_start = device.cycles_executed
        self._wall_start = time.monotonic()
        self._polls = 0
        if self.max_cycles > 0 or self.max_wall_s > 0.0:
            device.post_work_hooks.append(self._hook)

    def _hook(self) -> None:
        if self.max_cycles > 0:
            burned = self.device.cycles_executed - self._cycles_start
            if burned >= self.max_cycles:
                raise BudgetExceeded(
                    f"simulated-cycle budget of {self.max_cycles} cycles "
                    f"exhausted",
                    budget="cycles",
                )
        if self.max_wall_s > 0.0:
            self._polls += 1
            if self._polls >= _WALL_POLL_EVERY:
                self._polls = 0
                if time.monotonic() - self._wall_start >= self.max_wall_s:
                    raise BudgetExceeded(
                        f"wall-clock budget of {self.max_wall_s:g} s "
                        f"exhausted",
                        budget="wall",
                    )

    def rearm_wall(self) -> None:
        """Restart the wall-clock budget from now.

        Snapshot/fork sessions keep one watchdog alive across many
        logical runs; each run gets a fresh wall budget (host-side
        state, never captured in snapshots).  The cycle budget is
        deliberately *not* re-anchored: ``cycles_executed`` is restored
        by the device snapshot, so the original anchor already measures
        exactly the cycles a from-reset run would have burned.
        """
        self._wall_start = time.monotonic()
        self._polls = 0

    def remove(self) -> None:
        """Uninstall the hook (idempotent)."""
        hooks = self.device.post_work_hooks
        if self._hook in hooks:
            hooks.remove(self._hook)

    def __enter__(self) -> "RunWatchdog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()
