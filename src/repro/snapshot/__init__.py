"""Deterministic whole-device snapshot/restore.

EDB's core trick is manipulating target state without re-running the
target from reset; this package is the simulator-side rendition.  A
:class:`DeviceSnapshot` captures *everything* the simulated world can
observe — CPU registers, SRAM/FRAM contents, GPIO/ADC/UART/I2C
peripheral state, the capacitor voltage and comparator state, the
harvester's fading stream position, every RNG stream, the simulation
clock and the pending-event queue — so that restoring it and resuming
execution is bit-identical to never having stopped.  That is the same
correctness bar the campaign engine's byte-identical reports impose,
and it is enforced by the property tests in ``tests/test_snapshot.py``.

Two capture modes:

- **Full** (``tracker=None``): every memory page is copied.
- **Differential** (with a :class:`DirtyTracker`): dirty pages are
  tracked through the memory map's write observers (plus the explicit
  out-of-band channel for region-level writes such as the campaign's
  ``StateCorruptor``), so successive snapshots copy only what changed
  — the DiCA-style cheap-capture discipline.  Clean pages are shared
  by reference between snapshots; pages are immutable ``bytes``.

Every capture is **checksummed** (CRC32 over memory pages and CPU
registers) and every restore verifies the checksum before touching the
device, raising :class:`SnapshotIntegrityError` on a mismatch — the
same refuse-to-restore-garbage discipline the target-side checkpoint
system's Fletcher-16 enforces, applied to the host's own snapshots
(see ``docs/RESILIENCE.md``).

Deliberately *not* captured:

- host-side state — wall-clock watchdog polls, journal writers,
  progress callbacks.  Simulator events registered with ``host=True``
  are excluded from capture and survive a restore untouched;
- hook/listener registrations (``on_reboot``, ``post_work_hooks``,
  write observers, trace listeners): those are wiring, not state.
  Stateful hook owners (the campaign's fault injectors) expose their
  own ``export_state``/``restore_state`` and are handled by callers;
- callbacks in the event queue are captured *by reference*: snapshots
  live in-process and fork within one worker, so closures stay valid.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.mcu.device import TargetDevice
from repro.mcu.memory import MemoryMap, MemoryRegion

#: Page granularity of dirty tracking; matches the memory map's
#: address->region page table so one shift serves both.
PAGE_SHIFT = MemoryMap.PAGE_SHIFT
PAGE_SIZE = 1 << PAGE_SHIFT

#: Mutable electrical/environment attributes an energy source may carry.
#: Captured with ``getattr`` and restored with ``setattr`` so every
#: source model (RF, solar, constant-current, tether, trace-driven) is
#: covered without each one knowing about snapshots.  Derived caches
#: (e.g. the RF harvester's base-power cache) are keyed on their inputs
#: and therefore self-correct after a restore.
_SOURCE_ATTRS = (
    "_fade_db",
    "_fade_until",
    "enabled",
    "tx_power_dbm",
    "distance_m",
    "efficiency",
    "open_voltage",
    "reference_gain",
    "fading_sigma",
    "duty_period",
    "duty_fraction",
    "irradiance_w_m2",
    "area_m2",
    "current_a",
    "compliance_v",
    "voltage",
    "resistance",
)

_MISSING = object()


class SnapshotIntegrityError(RuntimeError):
    """A snapshot failed its checksum at restore time.

    Restoring a corrupted snapshot would silently poison every
    downstream trajectory (and, in the campaign's fork engine, every
    record forked from it), so corruption is detected *before* the
    device is touched.  The snapshot/fork execution paths treat this
    exactly like any other mid-session failure: the affected runs fall
    back to the honest from-reset path.
    """


def _snapshot_integrity(
    pages: dict[str, tuple[bytes, ...]], registers: tuple
) -> int:
    """CRC32 over a snapshot's payload (memory pages + CPU registers).

    Region names participate so pages cannot silently swap regions;
    iteration is sorted so the checksum is independent of dict order.
    """
    crc = zlib.crc32(repr(registers).encode("ascii"))
    for name in sorted(pages):
        crc = zlib.crc32(name.encode("utf-8"), crc)
        for page in pages[name]:
            crc = zlib.crc32(page, crc)
    return crc


def _pages_of(region: MemoryRegion) -> list[bytes]:
    """Slice a region's contents into immutable pages."""
    data = region._data
    return [
        bytes(data[offset : offset + PAGE_SIZE])
        for offset in range(0, region.size, PAGE_SIZE)
    ]


class DirtyTracker:
    """Dirty-page bookkeeping for differential capture.

    Attach one tracker per memory map; it registers on the map's write
    observers (seeing every map-level store and the whole-region
    notifications of ``clear_volatile``) and on the out-of-band channel
    (:meth:`MemoryMap.notify_out_of_band`) that region-level writers
    use.  :meth:`snapshot_pages` then copies only pages written since
    the previous capture, sharing every clean page with it.
    """

    def __init__(self, memory: MemoryMap) -> None:
        self.memory = memory
        self._pages: dict[str, list[bytes]] = {
            region.name: _pages_of(region) for region in memory.regions
        }
        self._dirty: dict[str, set[int]] = {
            region.name: set() for region in memory.regions
        }
        memory.write_observers.append(self._observe)
        memory.oob_write_observers.append(self._observe)

    def _observe(self, address: int, width: int) -> None:
        for region in self.memory.regions:
            if region.base <= address < region.end:
                first = (address - region.base) >> PAGE_SHIFT
                last = (address + width - 1 - region.base) >> PAGE_SHIFT
                self._dirty[region.name].update(range(first, last + 1))
                return

    def mark_all_dirty(self) -> None:
        """Assume every page changed (after unobserved bulk mutation)."""
        for region in self.memory.regions:
            count = (region.size + PAGE_SIZE - 1) >> PAGE_SHIFT
            self._dirty[region.name] = set(range(count))

    def snapshot_pages(self) -> dict[str, tuple[bytes, ...]]:
        """Current contents as pages, re-copying only dirty ones."""
        out: dict[str, tuple[bytes, ...]] = {}
        for region in self.memory.regions:
            pages = self._pages[region.name]
            dirty = self._dirty[region.name]
            if dirty:
                data = region._data
                for index in dirty:
                    offset = index << PAGE_SHIFT
                    pages[index] = bytes(data[offset : offset + PAGE_SIZE])
                dirty.clear()
            out[region.name] = tuple(pages)
        return out

    def resync(self, pages: dict[str, tuple[bytes, ...]]) -> None:
        """Adopt restored contents as the new clean baseline."""
        for name, region_pages in pages.items():
            self._pages[name] = list(region_pages)
            self._dirty[name].clear()

    def remove(self) -> None:
        """Detach from the memory map's observer lists (idempotent)."""
        for observers in (
            self.memory.write_observers,
            self.memory.oob_write_observers,
        ):
            if self._observe in observers:
                observers.remove(self._observe)


class DeviceSnapshot:
    """One captured world state; see :func:`capture` / :func:`restore`."""

    __slots__ = (
        "sim_now",
        "sim_seq",
        "sim_stop_reason",
        "sim_events",
        "rng_states",
        "trace_lengths",
        "trace_enabled",
        "memory_pages",
        "memory_counters",
        "cpu_registers",
        "cpu_retired",
        "cpu_halted",
        "cpu_coverage",
        "gpio_pins",
        "uart_state",
        "debug_uart_state",
        "i2c_transactions",
        "adc_samples",
        "line_states",
        "cycles_executed",
        "reboot_count",
        "energy_consumed",
        "stop_after",
        "in_hook",
        "power_state",
        "power_reboots",
        "power_turn_ons",
        "injected_current",
        "cap_voltage",
        "tether",
        "source_attrs",
        "tether_attrs",
        "integrity",
    )

    @staticmethod
    def pack(snapshots):
        """Pack snapshots into a :class:`repro.batch.lanes.LaneBuffer`.

        Struct-of-arrays across the lane axis: registers, memory pages,
        capacitor voltage, clock, and RNG cursors become NumPy arrays;
        everything else is carried per lane by reference.  Requires
        NumPy (the lane engine gates on ``batch.numpy_available``).
        """
        from repro.batch.lanes import LaneBuffer  # deferred: needs numpy

        return LaneBuffer.from_snapshots(snapshots)

    def broadcast(self, lanes: int):
        """Spread this snapshot across ``lanes`` zero-copy lanes.

        How a ForkSession-style shared prefix seeds a whole batch in one
        restore: the buffer's ``unpack`` rebuilds per-lane snapshots
        that carry this snapshot's integrity checksum, so each restore
        re-verifies the pack/unpack round trip bit for bit.
        """
        from repro.batch.lanes import LaneBuffer  # deferred: needs numpy

        return LaneBuffer.broadcast(self, lanes)


def _capture_source_attrs(source: Any) -> tuple[tuple[str, Any], ...]:
    attrs = []
    for name in _SOURCE_ATTRS:
        value = getattr(source, name, _MISSING)
        if value is not _MISSING:
            attrs.append((name, value))
    return tuple(attrs)


def _restore_source_attrs(source: Any, attrs: tuple[tuple[str, Any], ...]) -> None:
    for name, value in attrs:
        setattr(source, name, value)


def capture(
    device: TargetDevice, tracker: DirtyTracker | None = None
) -> DeviceSnapshot:
    """Capture the complete simulated-world state of ``device``.

    With a ``tracker`` (attached to ``device.memory``), memory capture
    is differential: only pages written since the tracker's previous
    capture are copied.  Host-side simulator events are excluded.
    """
    sim = device.sim
    snap = DeviceSnapshot()
    snap.sim_now = sim._now
    snap.sim_seq = sim._seq
    snap.sim_stop_reason = sim._stop_reason
    snap.sim_events = sim.export_events()
    snap.rng_states = {
        name: stream.getstate() for name, stream in sim.rng._streams.items()
    }
    snap.trace_lengths = {
        name: len(events) for name, events in sim.trace._channels.items()
    }
    snap.trace_enabled = sim.trace.enabled

    if tracker is not None:
        snap.memory_pages = tracker.snapshot_pages()
    else:
        snap.memory_pages = {
            region.name: tuple(_pages_of(region))
            for region in device.memory.regions
        }
    snap.memory_counters = {
        region.name: (region.reads, region.writes)
        for region in device.memory.regions
    }

    cpu = device.cpu
    snap.cpu_registers = tuple(cpu.registers)
    snap.cpu_retired = cpu.instructions_retired
    snap.cpu_halted = cpu.halted
    snap.cpu_coverage = (
        None if cpu.coverage is None else cpu.coverage.export_state()
    )

    snap.gpio_pins = {
        name: (pin.state, pin.toggles)
        for name, pin in device.gpio._pins.items()
    }
    snap.uart_state = (
        bytes(device.uart._rx_queue),
        device.uart.bytes_transmitted,
        device.uart.bytes_received,
    )
    snap.debug_uart_state = (
        bytes(device.debug_uart._rx_queue),
        device.debug_uart.bytes_transmitted,
        device.debug_uart.bytes_received,
    )
    snap.i2c_transactions = device.i2c.transactions
    snap.adc_samples = device.adc.samples_taken
    snap.line_states = tuple(
        (line._state, line.transitions)
        for line in (*device.marker_lines, device.debug_signal)
    )

    snap.cycles_executed = device.cycles_executed
    snap.reboot_count = device.reboot_count
    snap.energy_consumed = device.energy_consumed
    snap.stop_after = device.stop_after
    snap.in_hook = device._in_hook

    power = device.power
    snap.power_state = power._state
    snap.power_reboots = power.reboots
    snap.power_turn_ons = power.turn_ons
    snap.injected_current = power._injected_current
    snap.cap_voltage = power.capacitor._voltage
    snap.tether = power._tether
    snap.source_attrs = _capture_source_attrs(power.source)
    snap.tether_attrs = (
        _capture_source_attrs(power._tether)
        if power._tether is not None
        else ()
    )
    snap.integrity = _snapshot_integrity(snap.memory_pages, snap.cpu_registers)
    return snap


def restore(
    device: TargetDevice,
    snap: DeviceSnapshot,
    tracker: DirtyTracker | None = None,
) -> None:
    """Rewind ``device`` (and its simulator) to a captured state.

    Derived caches — the CPU's decoded-instruction cache, the GPIO load
    current sum — are invalidated; they rebuild lazily and are keyed on
    the restored state.  Live host-side simulator events are preserved.

    The snapshot's checksum is verified *before* the device is touched;
    a payload that rotted since capture (a host-fault-injected bit
    flip, a real memory error) raises :class:`SnapshotIntegrityError`
    and leaves the device exactly as it was.
    """
    expected = getattr(snap, "integrity", None)
    if expected is not None and expected != _snapshot_integrity(
        snap.memory_pages, snap.cpu_registers
    ):
        raise SnapshotIntegrityError(
            "snapshot payload failed its checksum: the captured state was "
            "corrupted after capture; refusing to restore it"
        )
    sim = device.sim
    sim._now = snap.sim_now
    sim._seq = snap.sim_seq
    sim._stop_reason = snap.sim_stop_reason
    sim.restore_events(snap.sim_events)

    streams = {}
    import random as _random

    for name, state in snap.rng_states.items():
        stream = _random.Random()
        stream.setstate(state)
        streams[name] = stream
    # Streams created after the capture are dropped: re-creating them
    # on demand re-derives the same seed, so draws replay identically.
    sim.rng._streams = streams

    channels = sim.trace._channels
    for name in list(channels):
        length = snap.trace_lengths.get(name)
        if length is None:
            del channels[name]
        else:
            del channels[name][length:]
    sim.trace.enabled = snap.trace_enabled

    for region in device.memory.regions:
        pages = snap.memory_pages[region.name]
        region._data[:] = b"".join(pages)
        region.reads, region.writes = snap.memory_counters[region.name]
    if tracker is not None:
        tracker.resync(snap.memory_pages)
    # Memory changed behind the map's observers: decoded instructions
    # may describe bytes that no longer exist.
    device.cpu.invalidate_decode_cache()

    cpu = device.cpu
    cpu.registers[:] = snap.cpu_registers
    cpu.instructions_retired = snap.cpu_retired
    cpu.halted = snap.cpu_halted
    if cpu.coverage is not None and snap.cpu_coverage is not None:
        cpu.coverage.restore_state(snap.cpu_coverage)
    # Block-cache counters are *per-leg* instrumentation, not simulated
    # state: a forked leg resuming from a shared prefix must report its
    # own translation/dispatch/deopt activity, not inherit the counts
    # the prefix accumulated before the capture.
    cpu.blocks_translated = 0
    cpu.blocks_executed = 0
    cpu.blocks_deopts = 0
    cpu.traces_formed = 0
    cpu.traces_executed = 0
    cpu.trace_exits = 0
    device.ff_spans = 0
    device.ff_spends = 0

    gpio = device.gpio
    for name, (state, toggles) in snap.gpio_pins.items():
        pin = gpio._pins[name]
        pin.state = state
        pin.toggles = toggles
    gpio._load_current_cache = None

    for uart, (rx, tx_count, rx_count) in (
        (device.uart, snap.uart_state),
        (device.debug_uart, snap.debug_uart_state),
    ):
        uart._rx_queue[:] = rx
        uart.bytes_transmitted = tx_count
        uart.bytes_received = rx_count
    device.i2c.transactions = snap.i2c_transactions
    device.adc.samples_taken = snap.adc_samples
    for line, (state, transitions) in zip(
        (*device.marker_lines, device.debug_signal), snap.line_states
    ):
        line._state = state
        line.transitions = transitions

    device.cycles_executed = snap.cycles_executed
    device.reboot_count = snap.reboot_count
    device.energy_consumed = snap.energy_consumed
    device.stop_after = snap.stop_after
    device._in_hook = snap.in_hook

    power = device.power
    power._state = snap.power_state
    power.reboots = snap.power_reboots
    power.turn_ons = snap.power_turn_ons
    power._injected_current = snap.injected_current
    power.capacitor._voltage = snap.cap_voltage
    power._tether = snap.tether
    _restore_source_attrs(power.source, snap.source_attrs)
    if snap.tether is not None:
        _restore_source_attrs(snap.tether, snap.tether_attrs)
    # The environment (clock, power state, source attributes) changed
    # behind the caches' invalidation hooks: drop the device's memoized
    # spend window so batched energy accounting re-derives itself from
    # the restored state.  Translated blocks were already retired to the
    # CPU's revival pool by ``invalidate_decode_cache`` above; the next
    # dispatch revives each one iff its code bytes are still identical —
    # the "cheaply rebuild" half of the snapshot contract.
    power.invalidate_env()
    device.invalidate_energy_window()
