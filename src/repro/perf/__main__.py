"""CLI for the perf harness.

Examples::

    python -m repro.perf                         # run, write BENCH_perf.json
    python -m repro.perf --check                 # fail on >30% regression
    python -m repro.perf --write-baseline        # refresh the committed baseline
    python -m repro.perf --scale 0.05            # quick smoke run

The output JSON is machine-readable: per-benchmark throughput plus, when
a baseline or a ``--before`` snapshot is available, the speedup ratios.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.perf.harness import run_all

#: Allowed slowdown versus the committed baseline before --check fails.
REGRESSION_TOLERANCE = 0.30

DEFAULT_BASELINE = Path("benchmarks") / "perf_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the simulator hot paths.",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload-size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="repetitions per benchmark; the fastest is kept (default 1)",
    )
    parser.add_argument(
        "--out", default="BENCH_perf.json",
        help="output JSON path (default BENCH_perf.json in the CWD)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="committed baseline JSON for --check / ratio reporting",
    )
    parser.add_argument(
        "--before", default=None,
        help="optional pre-optimisation snapshot to embed as 'before'",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit non-zero if any metric regresses more than "
             f"{REGRESSION_TOLERANCE:.0%} against the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="also write the results to the baseline path",
    )
    return parser


def _load_results(path: str | Path) -> dict | None:
    path = Path(path)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return data.get("results", data)


def _ratios(current: dict, reference: dict | None) -> dict:
    if not reference:
        return {}
    ratios = {}
    for name, result in current.items():
        ref = reference.get(name)
        if ref and ref.get("value"):
            ratios[name] = result["value"] / ref["value"]
    return ratios


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    results = {
        name: r.to_dict() for name, r in
        run_all(scale=args.scale, repeats=args.repeats).items()
    }
    baseline = _load_results(args.baseline)
    before = _load_results(args.before) if args.before else None
    payload = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }
    if before is not None:
        payload["before"] = before
        payload["speedup_vs_before"] = _ratios(results, before)
    if baseline is not None:
        payload["vs_baseline"] = _ratios(results, baseline)

    out = Path(args.out)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    for name, result in sorted(results.items()):
        line = f"{name:>18}: {result['value']:>12.1f} {result['unit']}"
        if name in payload.get("vs_baseline", {}):
            line += f"  ({payload['vs_baseline'][name]:.2f}x baseline)"
        print(line)
    print(f"wrote {out}")

    if args.write_baseline:
        base_path = Path(args.baseline)
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(
            json.dumps({"schema": 1, "results": results},
                       sort_keys=True, indent=2) + "\n"
        )
        print(f"wrote baseline {base_path}")

    if args.check:
        if baseline is None:
            print(f"error: no baseline at {args.baseline}", file=sys.stderr)
            return 2
        failures = []
        for name, ratio in _ratios(results, baseline).items():
            if ratio < 1.0 - REGRESSION_TOLERANCE:
                failures.append(f"{name}: {ratio:.2f}x of baseline")
        if failures:
            print("perf regression: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("perf check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
