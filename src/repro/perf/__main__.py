"""CLI for the perf harness.

Examples::

    python -m repro.perf                         # run, write BENCH_perf.json
    python -m repro.perf --check                 # fail on >30% regression
    python -m repro.perf --write-baseline        # refresh the committed baseline
    python -m repro.perf --check --quick         # fast CI-style gate

The output JSON is machine-readable: per-benchmark throughput plus, when
a baseline or a ``--before`` snapshot is available, the speedup ratios.

``--check`` compares each benchmark against the *best* available
reference — the committed baseline or, when ``--before`` is given, the
faster of the two — so an optimisation PR cannot "pass" by regressing
against its own pre-change snapshot while still beating a stale
baseline.  The failure message lists every benchmark's delta.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

from repro.perf.harness import BENCHMARKS, run_all

#: Allowed slowdown versus the reference before --check fails.
REGRESSION_TOLERANCE = 0.30

#: Tolerance used with ``--quick``: tiny workloads amortise fixed setup
#: badly and time noisily, so the smoke gate only catches gross cliffs.
QUICK_TOLERANCE = 0.60

#: Workload scale used with ``--quick`` when --scale is not given.
#: Not lower: the campaign benchmarks amortise per-campaign work
#: (adapter setup, the memoized continuous control leg) across their
#: runs, so tiny runs-counts measure amortisation, not execution.
QUICK_SCALE = 0.5

DEFAULT_BASELINE = Path("benchmarks") / "perf_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the simulator hot paths.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload-size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small fixed workload (--scale 0.1) with a relaxed "
             "tolerance for --check: a fast smoke gate, not a "
             "measurement",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="repetitions per benchmark; the fastest is kept (default 1)",
    )
    parser.add_argument(
        "--out", default="BENCH_perf.json",
        help="output JSON path (default BENCH_perf.json in the CWD)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="committed baseline JSON for --check / ratio reporting",
    )
    parser.add_argument(
        "--before", default=None,
        help="optional pre-optimisation snapshot to embed as 'before'",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit non-zero if any metric regresses more than "
             f"{REGRESSION_TOLERANCE:.0%} against the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="also write the results to the baseline path",
    )
    parser.add_argument(
        "--profile", metavar="NAME", default=None,
        choices=sorted(BENCHMARKS),
        help="run one benchmark under cProfile and print the top-20 "
             f"cumulative hotspots (one of: {', '.join(sorted(BENCHMARKS))})",
    )
    return parser


def _git_revision() -> str:
    """The working tree's commit hash, or 'unknown' outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else "unknown"


def _numpy_version() -> str | None:
    """The installed numpy version, or None when the import fails."""
    try:
        import numpy
    except Exception:
        return None
    return numpy.__version__


def _host_stanza() -> dict:
    """Provenance for BENCH_* trajectory comparisons across machines."""
    from repro.batch import batching_enabled

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_revision": _git_revision(),
        "numpy": _numpy_version(),
        "block_cache": os.environ.get("REPRO_NO_BLOCKCACHE", "") in ("", "0"),
        "superblock": (
            os.environ.get("REPRO_NO_BLOCKCACHE", "") in ("", "0")
            and os.environ.get("REPRO_NO_SUPERBLOCK", "") in ("", "0")
        ),
        "force_deopt": os.environ.get("REPRO_FORCE_DEOPT", "") not in ("", "0"),
        "batch": batching_enabled(),
    }


def _profile(name: str, scale: float) -> int:
    """Run one benchmark under cProfile; print top-20 cumulative."""
    import cProfile
    import pstats

    bench = BENCHMARKS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    result = bench(scale)
    profiler.disable()
    print(f"{name}: {result.value:.1f} {result.unit} (under profiler)\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(20)
    return 0


def _load_results(path: str | Path) -> dict | None:
    path = Path(path)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return data.get("results", data)


def _ratios(current: dict, reference: dict | None) -> dict:
    if not reference:
        return {}
    ratios = {}
    for name, result in current.items():
        ref = reference.get(name)
        if ref and ref.get("value"):
            ratios[name] = result["value"] / ref["value"]
    return ratios


def _check(results: dict, baseline: dict | None, before: dict | None,
           tolerance: float) -> list[str]:
    """Per-benchmark deltas against max(baseline, before); never empty.

    Returns the report lines, prefixed ``FAIL`` for any benchmark that
    regressed more than ``tolerance`` against its best reference.
    """
    lines = []
    for name in sorted(results):
        candidates = []
        for ref_name, reference in (("baseline", baseline), ("before", before)):
            value = (reference or {}).get(name, {}).get("value")
            if value:
                candidates.append((value, ref_name))
        if not candidates:
            lines.append(f"  ....  {name}: no reference value")
            continue
        ref_value, ref_name = max(candidates)
        ratio = results[name]["value"] / ref_value
        verdict = "FAIL" if ratio < 1.0 - tolerance else "  ok"
        lines.append(
            f"  {verdict}  {name}: {results[name]['value']:.1f} vs "
            f"{ref_value:.1f} ({ref_name}) -> {ratio:.2f}x "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else 1.0
    )
    if args.profile is not None:
        return _profile(args.profile, scale)
    results = {
        name: r.to_dict() for name, r in
        run_all(scale=scale, repeats=args.repeats).items()
    }
    baseline = _load_results(args.baseline)
    before = _load_results(args.before) if args.before else None
    payload = {
        "schema": 1,
        "host": _host_stanza(),
        "results": results,
    }
    if before is not None:
        payload["before"] = before
        payload["speedup_vs_before"] = _ratios(results, before)
    if baseline is not None:
        payload["vs_baseline"] = _ratios(results, baseline)

    out = Path(args.out)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    for name, result in sorted(results.items()):
        line = f"{name:>18}: {result['value']:>12.1f} {result['unit']}"
        if name in payload.get("vs_baseline", {}):
            line += f"  ({payload['vs_baseline'][name]:.2f}x baseline)"
        print(line)
    print(f"wrote {out}")

    if args.write_baseline:
        base_path = Path(args.baseline)
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(
            json.dumps({"schema": 1, "results": results},
                       sort_keys=True, indent=2) + "\n"
        )
        print(f"wrote baseline {base_path}")

    if args.check:
        if baseline is None:
            print(f"error: no baseline at {args.baseline}", file=sys.stderr)
            return 2
        tolerance = QUICK_TOLERANCE if args.quick else REGRESSION_TOLERANCE
        lines = _check(results, baseline, before, tolerance)
        if any(line.lstrip().startswith("FAIL") for line in lines):
            print(
                "perf regression (tolerance "
                f"{tolerance:.0%}, vs max(baseline, before)):\n"
                + "\n".join(lines),
                file=sys.stderr,
            )
            return 1
        print(f"perf check passed (tolerance {tolerance:.0%}):")
        print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
