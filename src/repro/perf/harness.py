"""Benchmark harness for the simulation hot paths.

Six benchmarks cover the layers that dominate campaign wall time, per
the profile that motivated the PR-2 hot-path work:

- ``isa_throughput`` — the per-instruction loop: fetch/decode/execute
  plus the work→time+energy conversion, on a bench supply that never
  browns out (so the number is pure interpreter speed);
- ``superblock_hot_loop`` — a register-only hot loop dispatched through
  the superblock trace tier with the closed-form energy fast-forward
  engaged, against the same loop on pure block dispatch (the speedup
  the second speed tier buys lands in ``detail``);
- ``charge_discharge`` — the intermittent duty cycle: organic charging
  to turn-on followed by discharging to brown-out, which exercises the
  power system's charging fast path;
- ``campaign`` — a small end-to-end fault-injection campaign (the PR-1
  engine), the unit the fleet multiplies by hundreds;
- ``snapshot_fork`` — a fixed-environment campaign where every run in a
  fault mode shares harvesting conditions, so the snapshot/fork engine
  gets real prefix groups to share (the best case the ``campaign``
  benchmark's randomized environments never produce);
- ``campaign_opsweep`` — a fixed-environment op-index sweep where the
  whole chunk forms one lane group for the NumPy batch engine: one
  fault-free leader is shared, never-firing schedules become clones,
  firing schedules peel to the scalar path (the speedup over
  ``--no-batch`` lands in ``detail``);
- ``fuzz_search`` — a coverage-guided fuzz campaign on the RFID
  dispatch firmware: coverage recording, corpus bookkeeping, mutators,
  and stimulus-grouped forking, end to end.

Every benchmark reports a *higher-is-better* throughput value, so the
regression check is a single ratio per metric.  Wall-clock timing
(:func:`time.perf_counter`) lives only here — simulated results remain
deterministic; only the timings vary across hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.campaign.config import CampaignConfig
from repro.campaign.scheduler import run_campaign
from repro.mcu.assembler import assemble
from repro.mcu.device import PowerFailure
from repro.sim.kernel import Simulator
from repro.testing import make_bench_target, make_fast_target

#: A tight loop mixing the operand classes the decode cache must cover:
#: register/immediate ALU, absolute loads/stores (FRAM), and stack ops.
ISA_LOOP_SOURCE = """
        .org 0xA000
buf:    .word 0
start:  mov #0, r4
loop:   add #1, r4
        mov r4, &buf
        mov &buf, r5
        push r5
        pop r6
        xor r5, r6
        cmp #0, r4
        jnz loop
        halt
"""


@dataclass
class BenchResult:
    """One benchmark's outcome: a named higher-is-better throughput."""

    name: str
    value: float
    unit: str
    wall_s: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "unit": self.unit,
            "wall_s": self.wall_s,
            "detail": self.detail,
        }


def _blocks_detail(cpu) -> dict:
    """The CPU's translation-tier counters for ``detail`` dicts.

    Covers both dispatch tiers above single-stepping: the block cache
    (translated/executed/deopts) and the superblock trace tier
    (formed/executed/side exits).
    """
    return {
        "translated": cpu.blocks_translated,
        "executed": cpu.blocks_executed,
        "deopts": cpu.blocks_deopts,
        "traces_formed": cpu.traces_formed,
        "traces_executed": cpu.traces_executed,
        "trace_exits": cpu.trace_exits,
    }


def _tier_detail(target) -> dict:
    """Block + trace + closed-form fast-forward counters for one device."""
    detail = _blocks_detail(target.cpu)
    detail["ff_spans"] = target.ff_spans
    detail["ff_spends"] = target.ff_spends
    return detail


def bench_isa_throughput(instructions: int = 60_000) -> BenchResult:
    """Instruction retirement rate on a bench supply (no brown-outs).

    Dispatches through :meth:`Cpu.step_block` — the production path used
    by ``run_isa`` and the intermittent ISA executor — so the number
    reflects block-translation steady state (the ``blocks`` detail trio
    records the translation/deopt mix; ``REPRO_NO_BLOCKCACHE=1`` turns
    the same benchmark into a pure single-step measurement).
    """
    sim = Simulator(seed=7)
    target = make_bench_target(sim)
    program = assemble(ISA_LOOP_SOURCE)
    target.load_program(program)
    step_block = target.cpu.step_block
    # Warm-up: one loop body, outside the timed window.
    for _ in range(16):
        step_block()
    t0 = time.perf_counter()
    retired = 0
    while retired < instructions:
        retired += step_block()
    wall = time.perf_counter() - t0
    return BenchResult(
        name="isa_throughput",
        value=retired / wall if wall > 0 else float("inf"),
        unit="instructions/s",
        wall_s=wall,
        detail={
            "instructions": retired,
            "retired_total": target.cpu.instructions_retired,
            "cycles_executed": target.cycles_executed,
            "sim_time_s": sim.now,
            "blocks": _tier_detail(target),
        },
    )


def bench_charge_discharge(cycles: int = 12) -> BenchResult:
    """Full charge/discharge cycles per wall second on a fast target.

    Deterministic harvesting (no fading) so the charging fast path gets
    its longest batches; the discharge leg burns real instruction-sized
    work units until the organic brown-out.
    """
    sim = Simulator(seed=11)
    target = make_fast_target(sim, distance_m=1.6, fading_sigma=0.0)
    completed = 0
    sim_start = sim.now
    t0 = time.perf_counter()
    for _ in range(cycles):
        target.power.charge_until_on()
        try:
            while True:
                target.execute_cycles(64)
        except PowerFailure:
            completed += 1
    wall = time.perf_counter() - t0
    return BenchResult(
        name="charge_discharge",
        value=completed / wall if wall > 0 else float("inf"),
        unit="cycles/s",
        wall_s=wall,
        detail={
            "cycles": completed,
            "sim_time_s": sim.now - sim_start,
            "reboots": target.power.reboots,
            "blocks": _tier_detail(target),
        },
    )


#: A register-only nested loop: three-instruction inner blocks, one
#: spend per instruction — the Alpaca-style task-loop shape where
#: per-block dispatch and per-spend bookkeeping dominate, and where
#: superblock chaining plus the closed-form span pay off most.
SUPERBLOCK_LOOP_SOURCE = """
        .org 0xA000
start:  mov #0, r4
outer:  mov #30000, r5
loop:   add #3, r4
        dec r5
        jnz loop
        jmp outer
"""


def bench_superblock_hot_loop(instructions: int = 60_000) -> BenchResult:
    """Trace-tier throughput on a register-only hot loop.

    Runs the same workload on identical fresh targets with the
    superblock trace tier disabled (pure block dispatch) and enabled,
    interleaved three times to ride out scheduler noise, and reports
    the trace tier's best instruction rate; the block tier's best rate
    and the resulting speedup land in ``detail`` (the ``--check`` gate
    then guards the headline value like any other benchmark).  Both
    configurations retire the identical instruction stream on a bench
    supply — the tier contract is bit-identity — so the ratio isolates
    pure dispatch/fast-forward overhead removal.
    """
    program = assemble(SUPERBLOCK_LOOP_SOURCE)

    def run(trace_tier: bool):
        sim = Simulator(seed=7)
        target = make_bench_target(sim)
        target.load_program(program)
        target.cpu.trace_tier_enabled = (
            target.cpu.trace_tier_enabled and trace_tier
        )
        step_block = target.cpu.step_block
        # Warm-up: heat the profile past the trace-formation threshold.
        for _ in range(64):
            step_block()
        t0 = time.perf_counter()
        retired = 0
        while retired < instructions:
            retired += step_block()
        return time.perf_counter() - t0, retired, target

    best_off = best_on = float("inf")
    target = None
    retired = 0
    for _ in range(3):
        wall_off, _, _ = run(False)
        best_off = min(best_off, wall_off)
        wall_on, retired, target = run(True)
        best_on = min(best_on, wall_on)
    return BenchResult(
        name="superblock_hot_loop",
        value=retired / best_on if best_on > 0 else float("inf"),
        unit="instructions/s",
        wall_s=best_on,
        detail={
            "instructions": retired,
            "block_tier_instructions_per_s": (
                retired / best_off if best_off > 0 else float("inf")
            ),
            "speedup_vs_block_tier": (
                best_off / best_on if best_on > 0 else float("inf")
            ),
            "blocks": _tier_detail(target),
        },
    )


def bench_campaign(runs: int = 6) -> BenchResult:
    """End-to-end campaign runs per wall second (inline, one worker).

    A small untimed campaign runs first: it pays the one-time costs a
    fleet amortises over hundreds of runs (lazy imports, the memoized
    continuous control leg for this workload), so the timed window
    measures steady-state per-run throughput whether or not the
    process is cold.  Without the warm-up the number swings ~2x on the
    luck of arriving with a warm memo.
    """
    config = CampaignConfig(
        app="linked_list",
        runs=runs,
        seed=1234,
        workers=1,
        duration=0.5,
        shrink=False,
        capture=False,
    )
    run_campaign(CampaignConfig(**{**config.to_dict(), "runs": 2}))
    t0 = time.perf_counter()
    report = run_campaign(config)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="campaign",
        value=runs / wall if wall > 0 else float("inf"),
        unit="runs/s",
        wall_s=wall,
        detail={
            "runs": runs,
            "diverged": report["summary"]["diverged"],
            "agree": report["summary"]["agree"],
            # The execution shape actually used: how many workers the
            # scheduler was given and whether snapshot/fork prefix
            # sharing was active (run_campaign defaults it on), so a
            # recorded BENCH file says what was measured.
            "workers": config.workers,
            "snapshot": True,
        },
    )


def bench_snapshot_fork(runs: int = 24) -> BenchResult:
    """Prefix-shared campaign throughput (snapshot forking at its best).

    The environment is pinned (fixed distance, no fading), so every run
    in a fault mode lands in one fork group and the engine executes each
    shared injection prefix once.  Both execution paths are timed on the
    identical config — their reports are byte-identical by contract —
    and the headline value is the snapshot path's throughput; the
    no-snapshot figure and the resulting speedup land in ``detail``.
    A small untimed campaign pays the one-time costs first (see
    :func:`bench_campaign`).
    """
    config = CampaignConfig(
        app="linked_list",
        runs=runs,
        seed=4321,
        workers=1,
        duration=0.5,
        shrink=False,
        capture=False,
        modes=("op_index", "commit_boundary"),
        distance_range=(1.6, 1.6),
        fading_range=(0.0, 0.0),
    )
    run_campaign(CampaignConfig(**{**config.to_dict(), "runs": 2}))
    t0 = time.perf_counter()
    run_campaign(config, snapshot=False)
    wall_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    report = run_campaign(config, snapshot=True)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="snapshot_fork",
        value=runs / wall if wall > 0 else float("inf"),
        unit="runs/s",
        wall_s=wall,
        detail={
            "runs": runs,
            "diverged": report["summary"]["diverged"],
            "no_snapshot_runs_per_s": (
                runs / wall_off if wall_off > 0 else float("inf")
            ),
            "speedup_vs_no_snapshot": (
                wall_off / wall if wall > 0 else float("inf")
            ),
            "workers": config.workers,
        },
    )


def bench_campaign_opsweep(runs: int = 24) -> BenchResult:
    """Lane-batched campaign throughput on an op-index sweep workload.

    Every run shares the environment (fixed distance, no fading, no
    duty) and sweeps injection points across a wide op-index range, so
    the whole chunk lands in one lane group: schedules that fire inside
    the executed window peel back into the scalar path, schedules that
    sweep past it become clones of the shared fault-free leader.  Both
    execution paths are timed on the identical config — reports are
    byte-identical by contract — and the headline value is the batched
    path's throughput; the scalar figure, the speedup, and the lane
    accounting land in ``detail``.  A small untimed campaign pays the
    one-time costs first (see :func:`bench_campaign`).
    """
    from repro.campaign.runner import tier_stats_delta, tier_stats_snapshot

    config = CampaignConfig(
        app="rfid_firmware",
        runs=runs,
        seed=2468,
        workers=1,
        iterations=600,
        duration=1.0,
        shrink=False,
        capture=False,
        modes=("op_index",),
        min_ops=2000,
        max_ops=60_000,
        distance_range=(1.6, 1.6),
        fading_range=(0.0, 0.0),
        duty_chance=0.0,
    )
    run_campaign(CampaignConfig(**{**config.to_dict(), "runs": 2}))
    t0 = time.perf_counter()
    run_campaign(config, batch=False)
    wall_off = time.perf_counter() - t0
    before = tier_stats_snapshot()
    t0 = time.perf_counter()
    report = run_campaign(config, batch=True)
    wall = time.perf_counter() - t0
    lanes = tier_stats_delta(before)
    return BenchResult(
        name="campaign_opsweep",
        value=runs / wall if wall > 0 else float("inf"),
        unit="runs/s",
        wall_s=wall,
        detail={
            "runs": runs,
            "diverged": report["summary"]["diverged"],
            "no_batch_runs_per_s": (
                runs / wall_off if wall_off > 0 else float("inf")
            ),
            "speedup_vs_no_batch": (
                wall_off / wall if wall > 0 else float("inf")
            ),
            "workers": config.workers,
            "lanes_packed": lanes["lanes_packed"],
            "lanes_peeled": lanes["lanes_peeled"],
            "batch_spans": lanes["batch_spans"],
        },
    )


def bench_fuzz_search(runs: int = 18) -> BenchResult:
    """Coverage-guided fuzz campaign throughput on the RFID firmware.

    Exercises the full search stack per run — coverage recording in the
    ISA core, corpus bookkeeping, mutators, stimulus-grouped snapshot
    forking — so a regression in any of those layers shows up as a
    runs/s cliff here before it shows up in a fleet.  The round count
    scales with the budget (three runs per round, capped at six rounds)
    to keep the corpus-feedback loop engaged at every scale.  A small
    untimed campaign pays the one-time costs first (see
    :func:`bench_campaign`).
    """
    rounds = max(1, min(6, runs // 3))
    config = CampaignConfig(
        app="rfid_firmware",
        runs=runs,
        seed=1,
        iterations=10,
        duration=0.8,
        workers=1,
        max_ops=120,
        shrink=False,
        capture=False,
        mode="fuzz",
        fuzz_rounds=rounds,
    )
    run_campaign(
        CampaignConfig(**{**config.to_dict(), "runs": 2, "fuzz_rounds": 1})
    )
    t0 = time.perf_counter()
    report = run_campaign(config)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="fuzz_search",
        value=runs / wall if wall > 0 else float("inf"),
        unit="runs/s",
        wall_s=wall,
        detail={
            "runs": runs,
            "rounds": rounds,
            "blocks_covered": report["coverage"]["blocks"],
            "corpus": report["coverage"]["corpus"],
            "diverged": report["summary"]["diverged"],
        },
    )


#: Benchmark registry: name -> (constructor taking a workload scale).
#: ``python -m repro.perf --profile NAME`` resolves names here.
BENCHMARKS = {
    "isa_throughput": lambda scale=1.0: bench_isa_throughput(
        max(500, int(60_000 * scale))
    ),
    "superblock_hot_loop": lambda scale=1.0: bench_superblock_hot_loop(
        max(500, int(60_000 * scale))
    ),
    "charge_discharge": lambda scale=1.0: bench_charge_discharge(
        max(2, int(12 * scale))
    ),
    "campaign": lambda scale=1.0: bench_campaign(max(1, int(6 * scale))),
    "snapshot_fork": lambda scale=1.0: bench_snapshot_fork(
        max(2, int(24 * scale))
    ),
    # Not scaled below 24 runs: the lane engine amortises one leader
    # leg across the whole group, so tiny run counts measure leader
    # amortisation (noisily), not batched throughput — and the value
    # must stay comparable with the committed full-size baseline.
    "campaign_opsweep": lambda scale=1.0: bench_campaign_opsweep(
        max(24, int(24 * scale))
    ),
    "fuzz_search": lambda scale=1.0: bench_fuzz_search(
        max(3, int(18 * scale))
    ),
}


def run_all(scale: float = 1.0, repeats: int = 1) -> dict[str, BenchResult]:
    """Run every benchmark; keep the best (fastest) of ``repeats``.

    ``scale`` multiplies each benchmark's workload size — the
    ``perf_smoke`` test uses a small scale to keep the suite fast.
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive (got {scale})")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1 (got {repeats})")
    plans = list(BENCHMARKS.values())
    results: dict[str, BenchResult] = {}
    for plan in plans:
        best: BenchResult | None = None
        for _ in range(repeats):
            result = plan(scale)
            if best is None or result.value > best.value:
                best = result
        results[best.name] = best
    return results
