"""Performance benchmark harness (``python -m repro.perf``).

See :mod:`repro.perf.harness` for the benchmarks and ``docs/PERF.md``
for the measurement protocol and the caching design they guard.
"""

from repro.perf.harness import (
    BenchResult,
    bench_campaign,
    bench_campaign_opsweep,
    bench_charge_discharge,
    bench_isa_throughput,
    bench_snapshot_fork,
    run_all,
)

__all__ = [
    "BenchResult",
    "bench_campaign",
    "bench_campaign_opsweep",
    "bench_charge_discharge",
    "bench_isa_throughput",
    "bench_snapshot_fork",
    "run_all",
]
