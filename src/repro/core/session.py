"""Interactive debugging sessions (§3.3.4).

A session is opened automatically when a breakpoint is hit or an
assertion fails, or on demand from the console.  While a session is
open the target is tethered, so the host can take as long as it likes:
every access still executes target-side protocol code, but on
continuous power.

Sessions are plain objects so they can be driven three ways: by the
interactive console, by scripted handlers in tests and benchmarks, and
by the examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.board import BreakEvent, EDBBoard


class InteractiveSession:
    """Full access to a stopped (tethered) target.

    Parameters
    ----------
    board:
        The debugger board the session runs through.
    event:
        Why the session opened (breakpoint / assert / console).
    """

    def __init__(self, board: "EDBBoard", event: "BreakEvent") -> None:
        self.board = board
        self.event = event
        self.transcript: list[str] = []
        self.log(
            f"[{event.time * 1e3:.3f} ms] session opened: {event.reason}"
            + (f" ({event.message})" if event.message else "")
        )

    def log(self, line: str) -> None:
        """Append a line to the session transcript."""
        self.transcript.append(line)

    # -- target state access -------------------------------------------------
    def read_bytes(self, address: int, count: int) -> bytes:
        """Read raw target memory over the debug link."""
        data = self.board.read_target_memory(address, count)
        self.log(f"read 0x{address:04X} x{count} -> {data.hex()}")
        return data

    def read_u16(self, address: int) -> int:
        """Read one little-endian word of target memory."""
        data = self.board.read_target_memory(address, 2)
        value = data[0] | (data[1] << 8)
        self.log(f"read 0x{address:04X} -> 0x{value:04X}")
        return value

    def write_u16(self, address: int, value: int) -> None:
        """Write one little-endian word of target memory."""
        self.board.write_target_memory(
            address, bytes([value & 0xFF, (value >> 8) & 0xFF])
        )
        self.log(f"write 0x{address:04X} <- 0x{value:04X}")

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write raw target memory."""
        self.board.write_target_memory(address, data)
        self.log(f"write 0x{address:04X} x{len(data)}")

    # -- energy state -----------------------------------------------------------
    def vcap(self) -> float:
        """The target's capacitor voltage as EDB's ADC reads it."""
        device = self.board.device
        assert device is not None
        value = self.board.adc.measure(device.power.vcap)
        self.log(f"vcap -> {value:.3f} V")
        return value

    def charge(self, voltage: float) -> float:
        """Manually raise the stored energy (console ``charge``)."""
        result = self.board.charge_target(voltage)
        self.log(f"charge -> {result:.3f} V")
        return result

    def discharge(self, voltage: float) -> float:
        """Manually lower the stored energy (console ``discharge``)."""
        result = self.board.discharge_target(voltage)
        self.log(f"discharge -> {result:.3f} V")
        return result

    # -- ISA-mode extras -------------------------------------------------------------
    def registers(self) -> list[int]:
        """The target CPU's register file (ISA programs)."""
        device = self.board.device
        assert device is not None
        values = list(device.cpu.registers)
        self.log(f"registers -> {[hex(v) for v in values[:4]]}...")
        return values

    def render(self) -> str:
        """The transcript as one printable block."""
        return "\n".join(self.transcript)
