"""Intermittence emulation via the charge/discharge commands (§4.2).

The paper: *"EDB can emulate intermittence at the granularity of
individual charge-discharge cycles using the charge/discharge
commands."*  That is what this module does: with the harvester out of
the picture (a bench target, or a deployment being reproduced
indoors), EDB itself produces the charge/discharge pattern — charge the
capacitor to a chosen turn-on level, let the application run it down to
brown-out, repeat — optionally varying the per-cycle turn-on level to
replay a *recorded* pattern of good and bad harvesting cycles.

This gives developers deterministic, scriptable intermittence: the same
cycle pattern, every run, independent of the RF environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.debugger import EDB
from repro.mcu.device import ExecutionLimit, PowerFailure
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.mcu.memory import MemoryFault
from repro.runtime.executor import AssertionHaltSignal


@dataclass
class EmulatedCycle:
    """What happened during one emulated charge/discharge cycle."""

    index: int
    turn_on_voltage: float
    start_time: float
    active_time: float
    outcome: str  # "brownout", "completed", "fault", "assert", "cutoff"
    detail: Any = None


@dataclass
class EmulationResult:
    """Summary of an emulation run."""

    cycles: list[EmulatedCycle] = field(default_factory=list)

    @property
    def outcome(self) -> str:
        """Outcome of the final cycle ("brownout" if all were)."""
        return self.cycles[-1].outcome if self.cycles else "none"

    def count(self, outcome: str) -> int:
        """Number of cycles ending a particular way."""
        return sum(1 for c in self.cycles if c.outcome == outcome)

    def __repr__(self) -> str:
        return (
            f"EmulationResult({len(self.cycles)} cycles, "
            f"final={self.outcome!r}, faults={self.count('fault')})"
        )


class IntermittenceEmulator:
    """Drives synthetic charge/discharge cycles through EDB.

    Parameters
    ----------
    edb:
        The attached debugger (its charge/discharge circuit does the
        energy manipulation).
    program:
        The application to run (``main(api)``, optional ``flash(api)``).
    edb_linked:
        Link libEDB into the application (watchpoints, asserts, ...).

    The target's own harvester is disabled for the duration of the
    emulation — the whole point is that EDB controls the energy.
    """

    def __init__(self, edb: EDB, program: Any, edb_linked: bool = True) -> None:
        self.edb = edb
        self.device = edb.device
        self.program = program
        self.api = DeviceAPI(
            self.device, edb=edb.libedb() if edb_linked else None
        )
        self._flashed = False

    def flash(self) -> None:
        """Initialise the program image (uncosted, like real flashing)."""
        if hasattr(self.program, "flash"):
            power = self.device.power
            was_enabled = getattr(power.source, "enabled", None)
            # Flash on EDB's supply: charge up, init, done.
            self.edb.charge(power.turn_on_voltage)
            self.program.flash(self.api)
            if was_enabled is not None:
                power.source.enabled = was_enabled
        self._flashed = True

    def run(
        self,
        cycles: int = 10,
        turn_on_voltage: float | Sequence[float] = 2.4,
        cycle_timeout: float = 1.0,
        stop_on_fault: bool = False,
    ) -> EmulationResult:
        """Emulate ``cycles`` charge/discharge cycles.

        Parameters
        ----------
        cycles:
            How many cycles to produce.
        turn_on_voltage:
            A single level, or one level per cycle (replaying a pattern
            of strong and weak harvests — a weak cycle starts lower and
            gives the program less energy).
        cycle_timeout:
            Simulated-time cap per cycle; a program that sleeps its way
            past this is marked ``"cutoff"`` and the next cycle begins.
        stop_on_fault:
            Stop the emulation at the first memory fault.
        """
        if not self._flashed:
            self.flash()
        power = self.device.power
        source_enabled = getattr(power.source, "enabled", None)
        if source_enabled is not None:
            power.source.enabled = False  # EDB supplies all energy

        levels = (
            list(turn_on_voltage)
            if not isinstance(turn_on_voltage, (int, float))
            else [float(turn_on_voltage)] * cycles
        )
        if len(levels) < cycles:
            raise ValueError(
                f"{cycles} cycles requested but only {len(levels)} "
                "turn-on levels given"
            )

        result = EmulationResult()
        try:
            for index in range(cycles):
                level = levels[index]
                if level < power.turn_on_voltage:
                    raise ValueError(
                        f"cycle {index}: turn-on level {level} V is below "
                        f"the comparator threshold "
                        f"({power.turn_on_voltage} V)"
                    )
                self.edb.charge(level)
                power.reset_comparator()
                self.device.reboot()
                start = self.edb.sim.now
                self.device.stop_after = start + cycle_timeout
                outcome, detail = self._run_one_cycle()
                self.device.stop_after = None
                result.cycles.append(
                    EmulatedCycle(
                        index=index,
                        turn_on_voltage=level,
                        start_time=start,
                        active_time=self.edb.sim.now - start,
                        outcome=outcome,
                        detail=detail,
                    )
                )
                if outcome in ("completed", "assert"):
                    break
                if outcome == "fault" and stop_on_fault:
                    break
        finally:
            self.device.stop_after = None
            if source_enabled is not None:
                power.source.enabled = source_enabled
        return result

    def _run_one_cycle(self) -> tuple[str, Any]:
        try:
            self.program.main(self.api)
            return "completed", None
        except ProgramComplete as exc:
            return "completed", exc.args[0] if exc.args else None
        except PowerFailure:
            return "brownout", None
        except ExecutionLimit:
            return "cutoff", None
        except MemoryFault as fault:
            return "fault", str(fault)
        except AssertionHaltSignal as halt:
            return "assert", halt
