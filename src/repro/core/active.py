"""Active mode: energy manipulation, compensation, and tethering (§3.2).

The sequence for every active-mode task is the one the paper describes:

1. *save* — measure and record the target's energy level (through
   EDB's ADC, so the saved value carries quantisation error);
2. *tether* — continuously power the target so the task can consume
   arbitrary energy;
3. run the task (debug protocol exchange, instrumentation, interactive
   session — all while tethered);
4. *restore* — untether and bring the capacitor back to the saved
   level with the charge/discharge circuit.

The restored level differs from the saved level by a small discrepancy
``dE`` — Table 3's subject.  Two restore trims are provided:

- ``trim_up=True``: discharge below the setpoint, then trim upward with
  the fine charge path (whose filter dump leaves the level a few tens
  of millivolts high) — the behaviour of the paper's prototype in the
  Table 3 trials;
- ``trim_up=False``: discharge-only, which lands a few millivolts low —
  used for the high-rate compensation paths (printf, energy guards)
  where a systematic upward bias would *feed* the target energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.charge_circuit import ChargeDischargeCircuit
from repro.mcu.adc import Adc
from repro.power.harvester import TetheredSupply
from repro.power.supply import PowerSystem
from repro.sim import units
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class SaveRestoreRecord:
    """One completed save/restore cycle (one Table 3 trial)."""

    saved_true_v: float  # oscilloscope view (exact simulation state)
    saved_adc_v: float  # what EDB's ADC recorded
    restored_true_v: float
    restored_adc_v: float
    capacitance: float

    @property
    def delta_v_true(self) -> float:
        """Scope-measured ``V_restored - V_saved`` (volts)."""
        return self.restored_true_v - self.saved_true_v

    @property
    def delta_v_adc(self) -> float:
        """ADC-measured ``V_restored - V_saved`` (volts)."""
        return self.restored_adc_v - self.saved_adc_v

    def delta_e(self, true_values: bool = True) -> float:
        """Energy discrepancy ``1/2 C (Vr^2 - Vs^2)`` in joules."""
        if true_values:
            vr, vs = self.restored_true_v, self.saved_true_v
        else:
            vr, vs = self.restored_adc_v, self.saved_adc_v
        return 0.5 * self.capacitance * (vr * vr - vs * vs)

    def delta_e_percent(
        self, vmax: float = 2.4, true_values: bool = True
    ) -> float:
        """Discrepancy as a percentage of the full storage capacity."""
        full = units.cap_energy(self.capacitance, vmax)
        return 100.0 * self.delta_e(true_values) / full


class EnergyStateManager:
    """Save/tether/restore bookkeeping for active-mode tasks.

    Nesting is supported (an assert can fire inside an energy guard):
    only the outermost save/restore touches the hardware; inner levels
    piggyback on the existing tether.
    """

    def __init__(
        self,
        sim: Simulator,
        power: PowerSystem,
        adc: Adc,
        circuit: ChargeDischargeCircuit,
        tether_voltage: float = 2.5,
    ) -> None:
        self.sim = sim
        self.power = power
        self.adc = adc
        self.circuit = circuit
        self.tether_supply = TetheredSupply(voltage=tether_voltage)
        self.records: list[SaveRestoreRecord] = []
        self._stack: list[tuple[float, float]] = []  # (true_v, adc_v)
        self.tether_time_total = 0.0
        self._tether_started: float | None = None
        # Set by keep_alive(): the target is halted for inspection and
        # must stay tethered even as enclosing active-task brackets
        # (e.g. an energy guard the assert fired inside) unwind.
        self.keep_alive_active = False

    # -- state ------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current active-task nesting depth (0 = passive)."""
        return len(self._stack)

    @property
    def in_active_task(self) -> bool:
        """True while the target runs on tethered power."""
        return bool(self._stack)

    # -- the active-mode bracket ---------------------------------------------
    def begin_task(self) -> float:
        """Save the energy level and tether the target.

        Returns the ADC-recorded saved voltage.
        """
        true_v = self.power.vcap
        adc_v = self.adc.measure(true_v)
        self._stack.append((true_v, adc_v))
        if len(self._stack) == 1:
            self.power.tether(self.tether_supply)
            self._tether_started = self.sim.now
            self.sim.trace.record("edb.active_begin", adc_v)
            # The stiff supply brings the rail up within microseconds.
            self.sim.advance(50 * units.US)
            self.power.step(50 * units.US)
        return adc_v

    def end_task(self, trim_up: bool = False) -> SaveRestoreRecord | None:
        """Restore the saved level and untether (outermost level only).

        Returns the :class:`SaveRestoreRecord` when this call actually
        performed a restore, ``None`` for nested exits.
        """
        if not self._stack:
            raise RuntimeError("end_task() without a matching begin_task()")
        true_v, adc_v = self._stack.pop()
        if self._stack:
            return None
        if self.keep_alive_active:
            # A failed assert fired inside this bracket: the unwind
            # must not drop the keep-alive tether or disturb the frozen
            # energy state.  release() ends the session later.
            return None
        self.power.untether()
        if self._tether_started is not None:
            self.tether_time_total += self.sim.now - self._tether_started
            self._tether_started = None
        if trim_up:
            self.circuit.restore_to(adc_v)
        else:
            self.circuit.discharge_to(adc_v)
        restored_true = self.power.vcap
        restored_adc = self.adc.measure(restored_true)
        record = SaveRestoreRecord(
            saved_true_v=true_v,
            saved_adc_v=adc_v,
            restored_true_v=restored_true,
            restored_adc_v=restored_adc,
            capacitance=self.power.capacitor.capacitance,
        )
        self.records.append(record)
        self.sim.trace.record("edb.active_end", restored_adc)
        return record

    # -- keep-alive (assert failure) --------------------------------------------
    def keep_alive(self) -> None:
        """Tether *without* planning a restore: the paper's keep-alive.

        Used on assertion failure — the whole point is to freeze the
        device's state for live inspection, not to resume execution.
        Once active, enclosing bracket unwinds (an energy guard the
        assert fired inside) leave the tether in place.
        """
        self.keep_alive_active = True
        if not self.power.is_tethered:
            self.power.tether(self.tether_supply)
            self._tether_started = self.sim.now
            self.sim.trace.record("edb.keep_alive", self.power.vcap)
            self.sim.advance(50 * units.US)
            self.power.step(50 * units.US)

    def release(self) -> None:
        """Drop an unconditional tether (end of a keep-alive session)."""
        self.keep_alive_active = False
        self.power.untether()
        if self._tether_started is not None:
            self.tether_time_total += self.sim.now - self._tether_started
            self._tether_started = None
        self._stack.clear()
