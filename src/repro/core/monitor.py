"""Passive mode: concurrent, energy-interference-free stream tracing.

The monitor acquires the four streams of §3.1 without the target's
active involvement and relays them to the host with a shared timebase:

- **energy** — Vcap/Vreg digitised by EDB's ADC at a fixed sample rate;
- **watchpoints** — program events decoded from the code-marker GPIO
  lines;
- **iobus** — bytes/transactions observed on the UART and I2C taps;
- **rfid** — RFID messages decoded from the RF demodulator taps
  (decoded *externally*, so messages are visible even when the target
  itself fails to decode them — §4.1.2's point).

The streams land in one list of :class:`StreamEvent` records ordered by
time, which is what lets a developer "correlate changes in system
behavior with changes in energy state".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim import units
from repro.sim.kernel import Event, Simulator


@dataclass(frozen=True)
class StreamEvent:
    """One event on one passive stream."""

    time: float
    stream: str
    value: Any
    vcap: float  # energy context captured with the event


@dataclass
class WatchpointStats:
    """Aggregate view of one watchpoint id's hits."""

    watchpoint_id: int
    hits: int = 0
    energy_readings: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)


class PassiveMonitor:
    """Concurrent stream acquisition with a unified timeline.

    Construction wires nothing; call :meth:`enable` per stream (the
    console's ``trace`` command).  The board attaches the actual signal
    sources via the ``attach_*`` callbacks.
    """

    STREAMS = ("energy", "watchpoints", "iobus", "rfid")

    def __init__(
        self,
        sim: Simulator,
        read_vcap: Callable[[], float],
        read_vreg: Callable[[], float],
        sample_rate: float = 4 * units.KHZ,
    ) -> None:
        self.sim = sim
        self.read_vcap = read_vcap
        self.read_vreg = read_vreg
        self.sample_rate = sample_rate
        self.events: list[StreamEvent] = []
        self.enabled: set[str] = set()
        self.watchpoints: dict[int, WatchpointStats] = {}
        self.disabled_watchpoints: set[int] = set()  # console `watch dis id`
        self._energy_event: Event | None = None
        self.listeners: list[Callable[[StreamEvent], None]] = []

    # -- stream control ----------------------------------------------------
    def enable(self, stream: str) -> None:
        """Start acquiring one stream (idempotent)."""
        if stream not in self.STREAMS:
            raise ValueError(f"unknown stream {stream!r}; have {self.STREAMS}")
        if stream in self.enabled:
            return
        self.enabled.add(stream)
        if stream == "energy" and self._energy_event is None:
            self._energy_event = self.sim.call_every(
                1.0 / self.sample_rate, self._sample_energy
            )

    def disable(self, stream: str) -> None:
        """Stop acquiring one stream."""
        self.enabled.discard(stream)
        if stream == "energy" and self._energy_event is not None:
            self._energy_event.cancel()
            self._energy_event = None

    # -- acquisition -----------------------------------------------------------
    def _emit(self, stream: str, value: Any) -> None:
        event = StreamEvent(
            time=self.sim.now, stream=stream, value=value, vcap=self.read_vcap()
        )
        self.events.append(event)
        for listener in self.listeners:
            listener(event)

    def _sample_energy(self) -> None:
        if "energy" not in self.enabled:
            return
        self._emit("energy", {"vcap": self.read_vcap(), "vreg": self.read_vreg()})

    def on_watchpoint(self, watchpoint_id: int) -> None:
        """Called by the board when the marker decoder sees a hit."""
        if watchpoint_id in self.disabled_watchpoints:
            return
        stats = self.watchpoints.setdefault(
            watchpoint_id, WatchpointStats(watchpoint_id)
        )
        stats.hits += 1
        vcap = self.read_vcap()
        stats.energy_readings.append(vcap)
        stats.times.append(self.sim.now)
        if "watchpoints" in self.enabled:
            self._emit("watchpoints", watchpoint_id)

    def on_io(self, bus: str, payload: Any) -> None:
        """Called by the board's UART/I2C taps."""
        if "iobus" in self.enabled:
            self._emit("iobus", {"bus": bus, "payload": payload})

    def on_rfid(self, message: Any) -> None:
        """Called by the board's RFID demod/mod taps."""
        if "rfid" in self.enabled:
            self._emit("rfid", message)

    # -- queries ------------------------------------------------------------------
    def stream_events(self, stream: str) -> list[StreamEvent]:
        """All events of one stream, in time order."""
        return [e for e in self.events if e.stream == stream]

    def energy_series(self) -> tuple[list[float], list[float]]:
        """``(times, vcap)`` from the energy stream."""
        events = self.stream_events("energy")
        return [e.time for e in events], [e.value["vcap"] for e in events]

    def watchpoint_stats(self, watchpoint_id: int) -> WatchpointStats:
        """Hit statistics for one watchpoint id (empty if never hit)."""
        return self.watchpoints.get(
            watchpoint_id, WatchpointStats(watchpoint_id)
        )

    def energy_between(
        self, start_id: int, end_id: int, capacitance: float
    ) -> list[float]:
        """Per-occurrence energy cost between two watchpoints, in joules.

        Pairs each hit of ``start_id`` with the next hit of ``end_id``
        and converts the Vcap difference to energy — the methodology
        behind Figure 11's per-iteration energy profile ("calculated
        from the difference between energy level snapshots taken by
        watchpoints").  Pairs interrupted by a reboot (voltage *rising*
        across the pair, or another ``start_id`` first) are dropped.
        """
        starts = self.watchpoints.get(start_id)
        ends = self.watchpoints.get(end_id)
        if starts is None or ends is None:
            return []
        if start_id == end_id:
            # Full-iteration cost: pair consecutive hits of the same
            # watchpoint (wp1 -> next wp1 spans one whole loop body).
            costs = []
            for i in range(len(starts.times) - 1):
                v_start = starts.energy_readings[i]
                v_end = starts.energy_readings[i + 1]
                if v_end > v_start:
                    continue  # a charge period intervened
                costs.append(
                    units.cap_energy(capacitance, v_start)
                    - units.cap_energy(capacitance, v_end)
                )
            return costs
        costs: list[float] = []
        end_index = 0
        for i, t_start in enumerate(starts.times):
            next_start = (
                starts.times[i + 1] if i + 1 < len(starts.times) else float("inf")
            )
            while end_index < len(ends.times) and ends.times[end_index] <= t_start:
                end_index += 1
            if end_index >= len(ends.times):
                break
            t_end = ends.times[end_index]
            if t_end >= next_start:
                continue  # iteration cut by a reboot before reaching end_id
            v_start = starts.energy_readings[i]
            v_end = ends.energy_readings[end_index]
            if v_end > v_start:
                continue  # charged across the pair: not a clean measurement
            costs.append(
                units.cap_energy(capacitance, v_start)
                - units.cap_energy(capacitance, v_end)
            )
        return costs

    def clear(self) -> None:
        """Drop accumulated events, watchpoint statistics, and masks.

        ``disabled_watchpoints`` is session state too (console ``watch
        dis id``): a monitor reused across debug sessions must not
        silently keep suppressing watchpoints a previous session
        disabled.  Listeners are wiring, not data, so they survive.
        """
        self.events.clear()
        self.watchpoints.clear()
        self.disabled_watchpoints.clear()
