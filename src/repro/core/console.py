"""The host debug console (§4.2, Table 1).

A command-line interface for interacting directly with EDB and
indirectly with the target.  The command vocabulary follows the paper's
Table 1:

====================================  =============================================
Command                               Effect
====================================  =============================================
``charge <volts>``                    raise the target's stored energy
``discharge <volts>``                 lower the target's stored energy
``break en <id> [volts]``             arm a code (or combined) breakpoint
``break dis <id>``                    disable breakpoints with that id
``break energy <volts>``              arm a pure energy breakpoint
``watch en|dis <id>``                 enable/disable a watchpoint id
``trace <stream>``                    stream energy/iobus/rfid/watchpoints
``read <addr> <len>``                 inspect target memory
``write <addr> <value>``              modify target memory
``run <seconds>``                     run the bound program intermittently
``emulate <cycles> [volts]``          EDB-driven intermittence emulation (§4.2)
``profile <start_id> [end_id]``       watchpoint-based energy/time profile
``interference``                      worst-case leakage summary (Table 2)
``status`` / ``wp`` / ``printf``      state, watchpoint stats, printf log
====================================  =============================================

The console is fully scriptable (``execute(line) -> str``), which is
how the tests drive it; ``repl()`` runs it interactively and ``main()``
is the ``edb-console`` entry point with a self-contained demo target.
"""

from __future__ import annotations

from typing import Callable

from repro.core.board import BreakEvent
from repro.core.debugger import EDB
from repro.core.session import InteractiveSession


class ConsoleError(Exception):
    """Bad command syntax or arguments."""


def _parse_number(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise ConsoleError(f"not a number: {text!r}") from None


def _parse_voltage(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ConsoleError(f"not a voltage: {text!r}") from None
    if not 0.0 <= value <= 5.5:
        raise ConsoleError(f"voltage {value} out of range 0..5.5")
    return value


class DebugConsole:
    """Scriptable console bound to one :class:`EDB` instance.

    Parameters
    ----------
    edb:
        The debugger to operate.
    executor:
        Optional :class:`~repro.runtime.executor.IntermittentExecutor`
        for the ``run`` command.
    echo:
        Optional sink called with every output line (e.g. ``print``).
    """

    def __init__(
        self,
        edb: EDB,
        executor=None,
        echo: Callable[[str], None] | None = None,
    ) -> None:
        self.edb = edb
        self.executor = executor
        self.echo = echo
        self.history: list[str] = []
        self._install_live_handlers()

    def _install_live_handlers(self) -> None:
        def on_break(event: BreakEvent, session: InteractiveSession) -> None:
            self._out(
                f"*** target stopped: {event.reason} at "
                f"{event.time * 1e3:.2f} ms, Vcap={event.vcap:.3f} V"
            )

        def on_printf(text: str) -> None:
            self._out(f"[printf] {text}")

        if self.edb.board.on_break is None:
            self.edb.on_break(on_break)
        if self.edb.board.on_printf is None:
            self.edb.on_printf(on_printf)

    def _out(self, line: str) -> None:
        self.history.append(line)
        if self.echo is not None:
            self.echo(line)

    # -- command dispatch ----------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one console command; returns its output text."""
        before = len(self.history)
        try:
            self._dispatch(line.strip())
        except ConsoleError as exc:
            self._out(f"error: {exc}")
        return "\n".join(self.history[before:])

    def _dispatch(self, line: str) -> None:
        if not line or line.startswith("#"):
            return
        parts = line.split()
        command, args = parts[0].lower(), parts[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise ConsoleError(f"unknown command {command!r} (try 'help')")
        handler(args)

    # -- commands ------------------------------------------------------------------
    def _cmd_help(self, args: list[str]) -> None:
        self._out(__doc__.split("====", 1)[0].strip())
        self._out(
            "commands: charge discharge break watch trace read write "
            "run emulate profile interference status wp printf help"
        )

    def _cmd_charge(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ConsoleError("usage: charge <volts>")
        result = self.edb.charge(_parse_voltage(args[0]))
        self._out(f"charged to {result:.3f} V")

    def _cmd_discharge(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ConsoleError("usage: discharge <volts>")
        result = self.edb.discharge(_parse_voltage(args[0]))
        self._out(f"discharged to {result:.3f} V")

    def _cmd_break(self, args: list[str]) -> None:
        if len(args) < 2:
            raise ConsoleError(
                "usage: break en <id> [volts] | break dis <id> | "
                "break energy <volts>"
            )
        mode = args[0].lower()
        if mode == "energy":
            bp = self.edb.break_on_energy(_parse_voltage(args[1]))
            self._out(f"armed: {bp.describe()}")
        elif mode == "en":
            bp_id = _parse_number(args[1])
            if len(args) >= 3:
                bp = self.edb.break_combined(bp_id, _parse_voltage(args[2]))
            else:
                affected = self.edb.breakpoints.set_enabled(bp_id, True)
                bp = self.edb.break_at(bp_id) if affected == 0 else None
            self._out(
                f"armed: {bp.describe()}" if bp else f"enabled breakpoints id={bp_id}"
            )
        elif mode == "dis":
            bp_id = _parse_number(args[1])
            count = self.edb.breakpoints.set_enabled(bp_id, False)
            self._out(f"disabled {count} breakpoint(s) with id={bp_id}")
        else:
            raise ConsoleError(f"unknown break mode {mode!r}")

    def _cmd_watch(self, args: list[str]) -> None:
        if len(args) != 2 or args[0].lower() not in ("en", "dis"):
            raise ConsoleError("usage: watch en|dis <id>")
        wp_id = _parse_number(args[1])
        disabled = self.edb.monitor.disabled_watchpoints
        if args[0].lower() == "en":
            disabled.discard(wp_id)
            self._out(f"watchpoint {wp_id} enabled")
        else:
            disabled.add(wp_id)
            self._out(f"watchpoint {wp_id} disabled")

    def _cmd_trace(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ConsoleError("usage: trace energy|iobus|rfid|watchpoints")
        stream = args[0].lower()
        try:
            self.edb.trace(stream)
        except ValueError as exc:
            raise ConsoleError(str(exc)) from exc
        self._out(f"tracing {stream}")

    def _in_session(self, action: Callable[[InteractiveSession], None]) -> None:
        """Run a host memory access inside a console-initiated session."""
        board = self.edb.board
        assert board.energy is not None
        event = BreakEvent(
            reason="console",
            time=self.edb.sim.now,
            vcap=self.edb.device.power.vcap,
        )
        already_tethered = board.energy.in_active_task or self.edb.is_tethered
        if not already_tethered:
            board.energy.begin_task()
        try:
            action(InteractiveSession(board, event))
        finally:
            if not already_tethered:
                board.energy.end_task(trim_up=True)

    def _cmd_read(self, args: list[str]) -> None:
        if len(args) != 2:
            raise ConsoleError("usage: read <addr> <len>")
        address = _parse_number(args[0])
        count = _parse_number(args[1])

        def action(session: InteractiveSession) -> None:
            data = session.read_bytes(address, count)
            self._out(f"0x{address:04X}: {data.hex(' ')}")

        self._in_session(action)

    def _cmd_write(self, args: list[str]) -> None:
        if len(args) != 2:
            raise ConsoleError("usage: write <addr> <value>")
        address = _parse_number(args[0])
        value = _parse_number(args[1])

        def action(session: InteractiveSession) -> None:
            session.write_u16(address, value)
            self._out(f"0x{address:04X} <- 0x{value:04X}")

        self._in_session(action)

    def _cmd_run(self, args: list[str]) -> None:
        if self.executor is None:
            raise ConsoleError("no program bound to the console")
        if len(args) != 1:
            raise ConsoleError("usage: run <seconds>")
        try:
            duration = float(args[0])
        except ValueError:
            raise ConsoleError(f"not a duration: {args[0]!r}") from None
        result = self.executor.run(duration)
        self._out(
            f"run finished: {result.status.value}, boots={result.boots}, "
            f"reboots={result.reboots}, faults={len(result.faults)}"
        )

    def _cmd_emulate(self, args: list[str]) -> None:
        if self.executor is None:
            raise ConsoleError("no program bound to the console")
        if not 1 <= len(args) <= 2:
            raise ConsoleError("usage: emulate <cycles> [turn-on volts]")
        cycles = _parse_number(args[0])
        level = _parse_voltage(args[1]) if len(args) == 2 else 2.4
        from repro.core.emulation import IntermittenceEmulator

        emulator = IntermittenceEmulator(self.edb, self.executor.program)
        emulator.api = self.executor.api  # share the program's statics
        emulator._flashed = self.executor._flashed
        result = emulator.run(cycles=cycles, turn_on_voltage=level)
        self.executor._flashed = True
        self._out(
            f"emulated {len(result.cycles)} cycle(s): final="
            f"{result.outcome}, brownouts={result.count('brownout')}, "
            f"faults={result.count('fault')}"
        )

    def _cmd_profile(self, args: list[str]) -> None:
        if not 1 <= len(args) <= 2:
            raise ConsoleError("usage: profile <start_id> [end_id]")
        start_id = _parse_number(args[0])
        end_id = _parse_number(args[1]) if len(args) == 2 else start_id
        from repro.core.profiler import EnergyProfiler

        constants = self.edb.device.constants
        profiler = EnergyProfiler(
            self.edb.monitor,
            constants.capacitance,
            full_energy=constants.full_energy,
        )
        profiler.define_region("region", start_id, end_id)
        try:
            stats = profiler.stats("region")
        except ValueError:
            self._out(
                f"no complete occurrences between watchpoints "
                f"{start_id} and {end_id}"
            )
            return
        self._out(stats.render(constants.full_energy))
        self._out(profiler.histogram("region", bins=8, width=30))

    def _cmd_interference(self, args: list[str]) -> None:
        trials = 20
        total = self.edb.worst_case_interference(trials=trials)
        active = 0.5e-3
        self._out(
            f"worst-case interference: {total * 1e9:.1f} nA over "
            f"{len(self.edb.board.harness.names())} connections "
            f"({100 * total / active:.3f} % of the 0.5 mA active draw)"
        )

    def _cmd_status(self, args: list[str]) -> None:
        device = self.edb.device
        power = device.power
        self._out(
            f"t={self.edb.sim.now * 1e3:.2f} ms  Vcap={power.vcap:.3f} V  "
            f"Vreg={power.vreg:.3f} V  state={power.state.value}"
            + ("  [tethered]" if power.is_tethered else "")
        )
        self._out(
            f"reboots={device.reboot_count}  cycles={device.cycles_executed}  "
            f"breakpoints={len(self.edb.breakpoints.active())} armed"
        )

    def _cmd_wp(self, args: list[str]) -> None:
        stats = self.edb.monitor.watchpoints
        if not stats:
            self._out("no watchpoint hits recorded")
            return
        for wp_id in sorted(stats):
            record = stats[wp_id]
            avg_v = (
                sum(record.energy_readings) / len(record.energy_readings)
                if record.energy_readings
                else 0.0
            )
            self._out(
                f"watchpoint {wp_id}: {record.hits} hits, "
                f"mean Vcap {avg_v:.3f} V"
            )

    def _cmd_printf(self, args: list[str]) -> None:
        if not self.edb.printf_output:
            self._out("no printf output captured")
            return
        for t, text in self.edb.printf_output[-20:]:
            self._out(f"[{t * 1e3:9.3f} ms] {text}")

    # -- interactive loop -----------------------------------------------------------
    def repl(self, input_fn: Callable[[str], str] = input) -> None:
        """Interactive loop; 'quit' exits."""
        self._out("EDB console — 'help' for commands, 'quit' to exit")
        while True:
            try:
                line = input_fn("edb> ")
            except (EOFError, KeyboardInterrupt):
                break
            if line.strip().lower() in ("quit", "exit"):
                break
            self.execute(line)


def main() -> None:  # pragma: no cover - interactive entry point
    """``edb-console``: a self-contained demo session.

    Builds a simulated WISP running the Fibonacci case-study app with
    EDB attached, and drops into the interactive console.
    """
    from repro.apps.fibonacci import FibonacciApp
    from repro.mcu.device import TargetDevice
    from repro.power import make_wisp_power_system
    from repro.runtime.executor import IntermittentExecutor
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=42)
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    app = FibonacciApp(debug_build=False)
    executor = IntermittentExecutor(sim, device, app, edb=edb.libedb())
    console = DebugConsole(edb, executor=executor, echo=print)
    console.execute("status")
    console.repl()


if __name__ == "__main__":  # pragma: no cover
    main()
