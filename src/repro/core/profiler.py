"""Watchpoint-based time & energy profiling (the §5.3.3 methodology).

The paper derives "a time and energy profile of a loop iteration ...
from the difference between energy level snapshots taken by
watchpoints".  :class:`EnergyProfiler` packages that methodology: name
a region by its start/end watchpoint ids, and get per-occurrence energy
and latency samples, summary statistics, and terminal-friendly
histogram/CDF renderings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.monitor import PassiveMonitor
from repro.sim import units


@dataclass(frozen=True)
class RegionStats:
    """Summary statistics of one profiled region."""

    label: str
    count: int
    energy_mean_j: float
    energy_median_j: float
    energy_p90_j: float
    time_mean_s: float
    time_median_s: float

    def energy_percent(self, full_energy_j: float) -> float:
        """Median energy as a percentage of the full store."""
        return 100.0 * self.energy_median_j / full_energy_j

    def render(self, full_energy_j: float | None = None) -> str:
        """One summary line."""
        pct = (
            f" ({self.energy_percent(full_energy_j):.2f}% of store)"
            if full_energy_j
            else ""
        )
        return (
            f"{self.label}: n={self.count}, "
            f"energy median {self.energy_median_j / units.UJ:.2f} uJ"
            f"{pct}, p90 {self.energy_p90_j / units.UJ:.2f} uJ, "
            f"time median {self.time_median_s * 1e3:.2f} ms"
        )


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list.

    The nearest-rank index is ``ceil(fraction * n) - 1`` (0-based).
    Flooring instead (``int(fraction * n)``) biases every percentile
    one rank high — p90 of 10 samples would return index 9, which is
    the maximum, i.e. p100.
    """
    if not ordered:
        raise ValueError("no samples")
    index = math.ceil(fraction * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, index))]


class EnergyProfiler:
    """Profiles watchpoint-delimited regions of an intermittent program.

    Parameters
    ----------
    monitor:
        The passive monitor collecting watchpoint hits (enable the
        ``watchpoints`` stream before running the workload).
    capacitance:
        The target's storage capacitance (energy conversion).
    full_energy:
        The full-store reference for percentage reporting.
    """

    def __init__(
        self,
        monitor: PassiveMonitor,
        capacitance: float,
        full_energy: float | None = None,
    ) -> None:
        self.monitor = monitor
        self.capacitance = capacitance
        self.full_energy = full_energy
        self._regions: dict[str, tuple[int, int]] = {}

    def define_region(self, label: str, start_id: int, end_id: int) -> None:
        """Name the region between two watchpoint ids.

        Use ``start_id == end_id`` for whole-iteration profiling.
        """
        if label in self._regions:
            raise ValueError(f"region {label!r} already defined")
        self._regions[label] = (start_id, end_id)

    def regions(self) -> list[str]:
        """All defined region labels."""
        return sorted(self._regions)

    # -- sample extraction --------------------------------------------------
    def energy_samples(self, label: str) -> list[float]:
        """Per-occurrence energy cost of a region, in joules."""
        start_id, end_id = self._lookup(label)
        return self.monitor.energy_between(start_id, end_id, self.capacitance)

    def time_samples(self, label: str) -> list[float]:
        """Per-occurrence latency of a region, in seconds.

        Pairs are matched the same way as energies; occurrences cut by
        a reboot are dropped.
        """
        start_id, end_id = self._lookup(label)
        starts = self.monitor.watchpoint_stats(start_id).times
        if start_id == end_id:
            return [
                b - a for a, b in zip(starts, starts[1:]) if 0 < b - a < 1.0
            ]
        ends = self.monitor.watchpoint_stats(end_id).times
        samples = []
        end_index = 0
        for i, t_start in enumerate(starts):
            next_start = starts[i + 1] if i + 1 < len(starts) else float("inf")
            while end_index < len(ends) and ends[end_index] <= t_start:
                end_index += 1
            if end_index >= len(ends):
                break
            t_end = ends[end_index]
            if t_end < next_start:
                samples.append(t_end - t_start)
        return samples

    def _lookup(self, label: str) -> tuple[int, int]:
        try:
            return self._regions[label]
        except KeyError:
            raise KeyError(
                f"no region {label!r}; have {self.regions()}"
            ) from None

    # -- statistics -----------------------------------------------------------
    def stats(self, label: str) -> RegionStats:
        """Summary statistics for one region."""
        energies = sorted(self.energy_samples(label))
        times = sorted(self.time_samples(label))
        if not energies or not times:
            raise ValueError(f"region {label!r} has no complete occurrences")
        return RegionStats(
            label=label,
            count=len(energies),
            energy_mean_j=sum(energies) / len(energies),
            energy_median_j=_percentile(energies, 0.5),
            energy_p90_j=_percentile(energies, 0.9),
            time_mean_s=sum(times) / len(times),
            time_median_s=_percentile(times, 0.5),
        )

    def cdf(self, label: str, points: int = 20) -> list[tuple[float, float]]:
        """The region's energy CDF: ``[(energy_j, P), ...]``."""
        samples = sorted(self.energy_samples(label))
        if not samples:
            return []
        lo, hi = samples[0], samples[-1]
        span = hi - lo or 1e-12
        out = []
        for i in range(points + 1):
            x = lo + span * i / points
            p = sum(1 for s in samples if s <= x) / len(samples)
            out.append((x, p))
        return out

    def histogram(self, label: str, bins: int = 10, width: int = 40) -> str:
        """An ASCII energy histogram of a region."""
        samples = self.energy_samples(label)
        if not samples:
            return "(no samples)"
        lo, hi = min(samples), max(samples)
        span = (hi - lo) or 1e-12
        counts = [0] * bins
        for s in samples:
            index = min(bins - 1, int((s - lo) / span * bins))
            counts[index] += 1
        peak = max(counts)
        lines = []
        for i, count in enumerate(counts):
            left = lo + span * i / bins
            bar = "#" * int(width * count / peak) if peak else ""
            lines.append(f"{left / units.UJ:8.2f} uJ | {bar} {count}")
        return "\n".join(lines)

    def report(self) -> str:
        """Summary lines for every defined region with samples."""
        lines = []
        for label in self.regions():
            try:
                lines.append(self.stats(label).render(self.full_energy))
            except ValueError:
                lines.append(f"{label}: (no complete occurrences)")
        return "\n".join(lines)
