"""Code, energy, and combined breakpoints (§3.3.1).

Three trigger conditions:

- **code**: a marked code point executes;
- **energy**: the target's capacitor voltage falls to or below a
  threshold (checked by the passive sampler, so it can fire anywhere in
  the program — including while the target is mid-computation);
- **combined**: a marked code point executes *while* the energy level
  is at or below the threshold — the primitive the paper highlights for
  catching "problematic iterations when more energy was consumed than
  expected or when the device is about to brown out".

Block-translation interplay: every trigger here keys on code-marker
ids, and ``MARK`` is untranslatable — the CPU's basic-block cache ends
a block *before* any marker, so registrations in this module never need
cache invalidation and fire bit-identically with the cache on or off.
Raw-PC watches (which *do* require excluding an address from block
translation) go through :meth:`repro.core.debugger.EDB.watch_pc`, which
forwards to :meth:`repro.mcu.cpu.Cpu.add_watch_pc` for targeted
invalidation of overlapping blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BreakpointKind(enum.Enum):
    """Trigger class of a breakpoint."""

    CODE = "code"
    ENERGY = "energy"
    COMBINED = "combined"


@dataclass
class Breakpoint:
    """One breakpoint registration."""

    kind: BreakpointKind
    breakpoint_id: int | None = None  # code point id (CODE / COMBINED)
    energy_threshold: float | None = None  # volts (ENERGY / COMBINED)
    enabled: bool = True
    hits: int = 0
    one_shot: bool = False

    def __post_init__(self) -> None:
        needs_id = self.kind in (BreakpointKind.CODE, BreakpointKind.COMBINED)
        needs_energy = self.kind in (BreakpointKind.ENERGY, BreakpointKind.COMBINED)
        if needs_id and self.breakpoint_id is None:
            raise ValueError(f"{self.kind.value} breakpoint needs a code point id")
        if needs_energy and self.energy_threshold is None:
            raise ValueError(f"{self.kind.value} breakpoint needs a threshold")

    def describe(self) -> str:
        """Console-friendly one-liner."""
        parts = [self.kind.value]
        if self.breakpoint_id is not None:
            parts.append(f"id={self.breakpoint_id}")
        if self.energy_threshold is not None:
            parts.append(f"below={self.energy_threshold:.2f}V")
        parts.append("enabled" if self.enabled else "disabled")
        parts.append(f"hits={self.hits}")
        return " ".join(parts)


@dataclass
class BreakpointManager:
    """Registration and trigger evaluation for all breakpoint kinds."""

    breakpoints: list[Breakpoint] = field(default_factory=list)

    # -- registration (Table 1: break en|dis id [energy level]) ------------
    def add_code(self, breakpoint_id: int, one_shot: bool = False) -> Breakpoint:
        """Register a conventional code breakpoint."""
        bp = Breakpoint(
            BreakpointKind.CODE, breakpoint_id=breakpoint_id, one_shot=one_shot
        )
        self.breakpoints.append(bp)
        return bp

    def add_energy(self, threshold_v: float, one_shot: bool = False) -> Breakpoint:
        """Register an energy breakpoint at ``threshold_v`` volts."""
        bp = Breakpoint(
            BreakpointKind.ENERGY, energy_threshold=threshold_v, one_shot=one_shot
        )
        self.breakpoints.append(bp)
        return bp

    def add_combined(
        self, breakpoint_id: int, threshold_v: float, one_shot: bool = False
    ) -> Breakpoint:
        """Register a combined code+energy breakpoint."""
        bp = Breakpoint(
            BreakpointKind.COMBINED,
            breakpoint_id=breakpoint_id,
            energy_threshold=threshold_v,
            one_shot=one_shot,
        )
        self.breakpoints.append(bp)
        return bp

    def set_enabled(self, breakpoint_id: int, enabled: bool) -> int:
        """Enable/disable every breakpoint with the given code id.

        Returns the number of breakpoints affected.
        """
        count = 0
        for bp in self.breakpoints:
            if bp.breakpoint_id == breakpoint_id:
                bp.enabled = enabled
                count += 1
        return count

    def remove(self, bp: Breakpoint) -> bool:
        """Deregister *this* breakpoint instance (no-op if absent).

        Matches by identity, not dataclass equality: two registrations
        with the same kind/id/threshold compare equal, and a value-based
        ``list.remove`` would silently delete whichever was registered
        first — not the instance the caller holds.

        Returns True if the instance was registered and removed.
        """
        for index, existing in enumerate(self.breakpoints):
            if existing is bp:
                del self.breakpoints[index]
                return True
        return False

    # -- trigger evaluation ----------------------------------------------------
    def check_code_point(self, breakpoint_id: int, vcap: float) -> Breakpoint | None:
        """First triggering breakpoint for an executing code point."""
        for bp in self.breakpoints:
            if not bp.enabled or bp.breakpoint_id != breakpoint_id:
                continue
            if bp.kind is BreakpointKind.CODE:
                return self._fire(bp)
            if bp.kind is BreakpointKind.COMBINED and vcap <= bp.energy_threshold:
                return self._fire(bp)
        return None

    def check_energy(self, vcap: float) -> Breakpoint | None:
        """First triggering pure-energy breakpoint at voltage ``vcap``."""
        for bp in self.breakpoints:
            if (
                bp.enabled
                and bp.kind is BreakpointKind.ENERGY
                and vcap <= bp.energy_threshold
            ):
                return self._fire(bp)
        return None

    def _fire(self, bp: Breakpoint) -> Breakpoint:
        bp.hits += 1
        if bp.one_shot:
            bp.enabled = False
        return bp

    def active(self) -> list[Breakpoint]:
        """All currently enabled breakpoints."""
        return [bp for bp in self.breakpoints if bp.enabled]
