"""The EDB board: the hardware half of the debugger.

:class:`EDBBoard` owns the debugger-side hardware models — the 12-bit
ADC behind the Vcap/Vreg senses, the Figure 5 connection harness, the
charge/discharge circuit — and wires them to one attached target:

- it taps the target's code-marker lines, application UART, I2C bus,
  and debug link (all externally, i.e. through the leakage-modelled
  connection harness);
- it samples the target's energy level on its own schedule and injects
  the harness's aggregate leakage into the target's power system — the
  passive-mode interference that Table 2 shows is negligible;
- it services libEDB requests: keep-alive asserts, energy guards,
  printf frames, breakpoint triggers, and host memory reads/writes.

The developer-facing wrapper around this class is
:class:`repro.core.debugger.EDB`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analog.charge_circuit import ChargeDischargeCircuit
from repro.analog.connections import EDBConnectionHarness
from repro.core.active import EnergyStateManager, SaveRestoreRecord
from repro.core.breakpoints import Breakpoint, BreakpointManager
from repro.core.monitor import PassiveMonitor
from repro.core.protocol import Decoder, Message, MsgType
from repro.mcu.adc import Adc
from repro.mcu.device import TargetDevice
from repro.runtime.executor import AssertionHaltSignal
from repro.sim import units
from repro.sim.kernel import Event, Simulator


@dataclass(frozen=True)
class BreakEvent:
    """Why the target stopped and entered an interactive session."""

    reason: str  # "breakpoint", "energy_breakpoint", "assert", "console"
    time: float
    vcap: float
    breakpoint: Breakpoint | None = None
    message: str = ""


class EDBBoard:
    """The debugger board, attachable to one target device.

    Parameters
    ----------
    sim:
        Simulation kernel.
    sample_rate:
        Passive energy-monitoring sample rate (Hz).
    leakage_update_rate:
        How often the aggregate harness leakage operating point is
        re-evaluated and injected into the target's supply (Hz).
    """

    def __init__(
        self,
        sim: Simulator,
        sample_rate: float = 4 * units.KHZ,
        leakage_update_rate: float = 200.0,
    ) -> None:
        self.sim = sim
        self.sample_rate = sample_rate
        self.leakage_update_rate = leakage_update_rate
        self.adc = Adc(
            reference_voltage=3.3,
            bits=12,
            noise_sigma_v=0.5 * units.MV,
            rng=sim.rng,
            stream="edb-adc",
        )
        self.harness = EDBConnectionHarness(sim.rng)
        self.device: TargetDevice | None = None
        self.circuit: ChargeDischargeCircuit | None = None
        self.energy: EnergyStateManager | None = None
        self.monitor: PassiveMonitor | None = None
        self.breakpoints = BreakpointManager()
        self.decoder = Decoder()
        self.printf_log: list[tuple[float, str]] = []
        self.break_events: list[BreakEvent] = []
        self.rfid_log: list[tuple[float, Any]] = []
        # Host-provided handlers: called with (event, session) when the
        # target stops.  ``None`` means record-and-resume.
        self.on_break: Callable[[BreakEvent, Any], None] | None = None
        self.on_assert: Callable[[BreakEvent, Any], None] | None = None
        self.on_printf: Callable[[str], None] | None = None
        self.libedb: Any = None  # set by LibEDB when it links in
        self._leakage_event: Event | None = None
        self._pending_energy_bp: Breakpoint | None = None
        self._last_mem_data: bytes | None = None
        self._session_factory: Callable[[BreakEvent], Any] | None = None
        self.interference_enabled = True

    # -- attachment ----------------------------------------------------------
    def attach(self, device: TargetDevice) -> None:
        """Connect the board to a target (Figure 5's header)."""
        if self.device is not None:
            raise RuntimeError("board is already attached to a target")
        self.device = device
        power = device.power
        self.circuit = ChargeDischargeCircuit(self.sim, power, self.adc)
        self.energy = EnergyStateManager(self.sim, power, self.adc, self.circuit)
        self.monitor = PassiveMonitor(
            self.sim,
            read_vcap=lambda: self.adc.measure(power.vcap),
            read_vreg=lambda: self.adc.measure(power.vreg),
            sample_rate=self.sample_rate,
        )
        device.on_code_marker.append(self._on_code_marker)
        device.uart.subscribe_tx(self._on_uart_byte)
        device.i2c.subscribe(self._on_i2c_txn)
        device.debug_uart.subscribe_tx(self._on_debug_byte)
        device.post_work_hooks.append(self._service_pending)
        self._leakage_event = self.sim.call_every(
            1.0 / self.leakage_update_rate, self._update_leakage
        )
        self._update_leakage()

    def detach(self) -> None:
        """Disconnect from the target, removing all hooks and leakage."""
        if self.device is None:
            return
        device = self.device
        if self._on_code_marker in device.on_code_marker:
            device.on_code_marker.remove(self._on_code_marker)
        if self._service_pending in device.post_work_hooks:
            device.post_work_hooks.remove(self._service_pending)
        if self._leakage_event is not None:
            self._leakage_event.cancel()
            self._leakage_event = None
        device.power.inject_current(0.0)
        self.device = None

    def _require_device(self) -> TargetDevice:
        if self.device is None:
            raise RuntimeError("board is not attached to a target")
        return self.device

    # -- passive-mode plumbing ---------------------------------------------------
    def _update_leakage(self) -> None:
        device = self.device
        if device is None or not self.interference_enabled:
            return
        states = {
            "code_marker_0": device.marker_lines[0].state,
            "code_marker_1": (
                device.marker_lines[1].state if len(device.marker_lines) > 1 else False
            ),
            "target_to_debugger_comm": device.debug_signal.state,
        }
        leakage = self.harness.live_leakage(states, device.power.vcap)
        device.power.inject_current(leakage)

    def _on_code_marker(self, marker_id: int) -> None:
        if self.monitor is not None:
            self.monitor.on_watchpoint(marker_id)

    def _on_uart_byte(self, data: bytes) -> None:
        if self.monitor is not None:
            self.monitor.on_io("uart", data)

    def _on_i2c_txn(self, record: dict) -> None:
        if self.monitor is not None:
            self.monitor.on_io("i2c", record)

    def on_rfid_message(self, message: Any) -> None:
        """Feed a message decoded from the RF taps (called by the RFID tap)."""
        self.rfid_log.append((self.sim.now, message))
        if self.monitor is not None:
            self.monitor.on_rfid(message)

    # -- debug-link message handling -------------------------------------------
    def _on_debug_byte(self, data: bytes) -> None:
        for message in self.decoder.feed(data):
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        if message.type is MsgType.PRINTF:
            text = message.decode_text()
            self.printf_log.append((self.sim.now, text))
            if self.monitor is not None:
                self.monitor.on_io("edb_printf", text)
            if self.on_printf is not None:
                self.on_printf(text)
        elif message.type is MsgType.ASSERT_FAIL:
            self._handle_assert_fail(message)
        elif message.type is MsgType.BREAKPOINT_HIT:
            pass  # bookkeeping only; servicing is synchronous in LibEDB
        elif message.type is MsgType.MEM_DATA:
            self._last_mem_data = message.payload
        elif message.type in (MsgType.GUARD_BEGIN, MsgType.GUARD_END):
            pass  # energy bracketing is handled synchronously in LibEDB

    # -- active-mode services (called by LibEDB / sessions) -------------------------
    def signal_attention(self) -> None:
        """The target raised the debug GPIO line: tether it *now*.

        This is the keep-alive path — it must not depend on the target
        having energy left to run a protocol exchange.
        """
        assert self.energy is not None
        self.energy.keep_alive()

    def begin_energy_guard(self) -> float:
        """Enter an energy-guarded region: save level, tether."""
        assert self.energy is not None
        self.sim.trace.record("edb.guard_begin", self._require_device().power.vcap)
        return self.energy.begin_task()

    def end_energy_guard(self) -> SaveRestoreRecord | None:
        """Leave an energy-guarded region: untether, restore level."""
        assert self.energy is not None
        record = self.energy.end_task(trim_up=False)
        self.sim.trace.record("edb.guard_end", self._require_device().power.vcap)
        return record

    def begin_printf(self) -> None:
        """Bracket an energy-interference-free printf (tether)."""
        assert self.energy is not None
        self.energy.begin_task()

    def end_printf(self) -> None:
        """Close the printf bracket (restore, discharge-only trim)."""
        assert self.energy is not None
        self.energy.end_task(trim_up=False)

    def _handle_assert_fail(self, message: Message) -> None:
        device = self._require_device()
        text = message.decode_text(skip=1)
        event = BreakEvent(
            reason="assert",
            time=self.sim.now,
            vcap=device.power.vcap,
            message=text,
        )
        self.break_events.append(event)
        self.sim.trace.record("edb.assert_fail", text)
        session = self._make_session(event)
        if self.on_assert is not None:
            self.on_assert(event, session)
        elif self.on_break is not None:
            self.on_break(event, session)
        raise AssertionHaltSignal(
            f"assert failed: {text}", vcap_at_failure=event.vcap
        )

    def check_code_breakpoint(self, breakpoint_id: int) -> Breakpoint | None:
        """Trigger evaluation for an executing BREAKPOINT(id) site."""
        device = self._require_device()
        return self.breakpoints.check_code_point(breakpoint_id, device.power.vcap)

    def service_breakpoint(self, bp: Breakpoint, reason: str = "breakpoint") -> None:
        """Run the full breakpoint service bracket.

        Save + tether, open an interactive session for the host
        handler, then restore (with the trim-up path, matching the
        paper's Table 3 measurement flow) and resume the target.
        """
        assert self.energy is not None
        device = self._require_device()
        event = BreakEvent(
            reason=reason,
            time=self.sim.now,
            vcap=device.power.vcap,
            breakpoint=bp,
        )
        self.break_events.append(event)
        self.sim.trace.record("edb.breakpoint", bp.describe())
        self.energy.begin_task()
        try:
            session = self._make_session(event)
            if self.on_break is not None:
                self.on_break(event, session)
        finally:
            self.energy.end_task(trim_up=True)

    # -- energy breakpoints (serviced off the sampler) ----------------------------
    def arm_energy_sampling(self) -> None:
        """Ensure the passive energy sampler runs (breakpoints need it).

        Idempotent: arming for every registered energy breakpoint must
        not stack duplicate listeners on a long-lived monitor.
        """
        assert self.monitor is not None
        self.monitor.enable("energy")
        if self._energy_sample_listener not in self.monitor.listeners:
            self.monitor.listeners.append(self._energy_sample_listener)

    def _energy_sample_listener(self, event) -> None:
        if event.stream != "energy" or self._pending_energy_bp is not None:
            return
        device = self.device
        if device is None or not device.power.is_on:
            return
        if self.energy is not None and self.energy.in_active_task:
            return
        bp = self.breakpoints.check_energy(event.value["vcap"])
        if bp is not None:
            self._pending_energy_bp = bp

    def _service_pending(self) -> None:
        if self._pending_energy_bp is None:
            return
        bp = self._pending_energy_bp
        self._pending_energy_bp = None
        self.service_breakpoint(bp, reason="energy_breakpoint")

    # -- host memory access (through the target-side service loop) ----------------
    def read_target_memory(self, address: int, count: int) -> bytes:
        """Read target memory over the debug link.

        The transaction executes target-side code (libEDB's service
        routine), so it is only used while the target is tethered — an
        interactive session, a hit breakpoint, or a failed assert.
        """
        if self.libedb is None:
            raise RuntimeError("no libEDB linked into the target application")
        self._last_mem_data = None
        self.libedb.service_request(Message.read_mem(address, count))
        if self._last_mem_data is None:
            raise RuntimeError("target did not answer the memory read")
        return self._last_mem_data

    def write_target_memory(self, address: int, data: bytes) -> None:
        """Write target memory over the debug link."""
        if self.libedb is None:
            raise RuntimeError("no libEDB linked into the target application")
        self.libedb.service_request(Message.write_mem(address, data))

    # -- sessions -----------------------------------------------------------------
    def set_session_factory(self, factory: Callable[[BreakEvent], Any]) -> None:
        """Install the interactive-session constructor (set by EDB facade)."""
        self._session_factory = factory

    def _make_session(self, event: BreakEvent) -> Any:
        if self._session_factory is None:
            return None
        return self._session_factory(event)

    # -- console-level energy manipulation -----------------------------------------
    def charge_target(self, voltage: float) -> float:
        """Console ``charge`` command: raise Vcap to ``voltage``."""
        assert self.circuit is not None
        return self.circuit.charge_to(voltage)

    def discharge_target(self, voltage: float) -> float:
        """Console ``discharge`` command: lower Vcap to ``voltage``."""
        assert self.circuit is not None
        return self.circuit.discharge_to(voltage)
