"""EDB: the Energy-interference-free Debugger.

This package is the paper's contribution, built on the substrate
packages (:mod:`repro.power`, :mod:`repro.mcu`, :mod:`repro.io`,
:mod:`repro.analog`):

- :mod:`repro.core.board` — the debugger board: ADC, connection
  harness, charge/discharge circuit, tether, passive sampling.
- :mod:`repro.core.monitor` — passive mode: concurrent energy, program
  event, I/O, and RFID stream tracing.
- :mod:`repro.core.active` — active mode: energy save/restore
  (compensation) and continuous-power tethering.
- :mod:`repro.core.breakpoints` — code, energy, and combined
  breakpoints.
- :mod:`repro.core.libedb` — the target-side library (assertions,
  watchpoints, energy guards, printf) and its wire protocol
  (:mod:`repro.core.protocol`).
- :mod:`repro.core.session` / :mod:`repro.core.console` — interactive
  debugging and the host console (Table 1's command set).
- :mod:`repro.core.profiler` — watchpoint-based time/energy profiling.
- :mod:`repro.core.emulation` — §4.2's intermittence emulation at
  charge/discharge-cycle granularity.
- :mod:`repro.core.debugger` — the :class:`EDB` facade users
  instantiate.
"""

from repro.core.breakpoints import Breakpoint, BreakpointKind, BreakpointManager
from repro.core.debugger import EDB
from repro.core.emulation import EmulationResult, IntermittenceEmulator
from repro.core.libedb import LibEDB
from repro.core.profiler import EnergyProfiler
from repro.core.session import InteractiveSession

__all__ = [
    "Breakpoint",
    "BreakpointKind",
    "BreakpointManager",
    "EDB",
    "EmulationResult",
    "EnergyProfiler",
    "InteractiveSession",
    "IntermittenceEmulator",
    "LibEDB",
]
