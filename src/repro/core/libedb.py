"""libEDB: the target-side half of the debugger (§4.2, Table 1).

The C original is a 1200-line library statically linked into the
application, exporting macros for assertions, breakpoints, watchpoints,
energy guards, and printf, plus the target-side protocol routines for
reading and writing target memory.  This class is its counterpart:
every entry point costs target cycles exactly where the C would, and
everything heavyweight happens *after* the board has tethered the
target, so the application pays only:

- one GPIO pulse per watchpoint (§4.1.3: "practically
  energy-interference-free"),
- a couple of cycles per passing assert / disabled breakpoint check,
- the restore discrepancy per active-mode bracket (Table 3 / 4).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.core.board import EDBBoard
from repro.core.protocol import Decoder, Message, MsgType, encode
from repro.mcu.device import TargetDevice

# Cycle costs of the target-side entry points (C-with-macros scale).
CYCLES_ATTENTION = 4  # raise the debug GPIO line + handshake
CYCLES_ASSERT_CHECK = 2  # evaluate expr + conditional branch
CYCLES_BREAKPOINT_CHECK = 3  # read the debugger-driven enable line
CYCLES_PER_FORMAT_CHAR = 10  # printf formatting, per output character
CYCLES_SERVICE_PARSE = 24  # parse one host request frame
CYCLES_PER_MEM_WORD = 4  # memory copy during read/write service


class LibEDB:
    """Target-side EDB library, linked into one application.

    Parameters
    ----------
    device:
        The target the application runs on.
    board:
        The attached debugger board.
    """

    def __init__(self, device: TargetDevice, board: EDBBoard) -> None:
        if board.device is not device:
            raise ValueError("board must be attached to the same device")
        self.device = device
        self.board = board
        self._rx_decoder = Decoder()
        self.asserts_evaluated = 0
        self.printfs_sent = 0
        board.libedb = self

    # -- program-event monitoring -------------------------------------------
    def watchpoint(self, marker_id: int) -> None:
        """``WATCHPOINT(id)``: one-cycle GPIO encoding of the id."""
        self.device.code_marker(marker_id)

    # -- energy-interference-free printf ----------------------------------------
    def printf(self, text: str) -> None:
        """``EDB_PRINTF(...)``: stream text to the host console.

        The target raises attention (cheap), the board tethers it, the
        formatting and UART transfer run on tethered power, and the
        board restores the saved energy level afterwards.
        """
        self.device.execute_cycles(CYCLES_ATTENTION)
        self.device.debug_signal.drive(True)
        self.board.begin_printf()
        try:
            self.device.execute_cycles(CYCLES_PER_FORMAT_CHAR * max(1, len(text)))
            self.device.debug_uart.transmit(encode(Message.printf(text)))
            self.printfs_sent += 1
        finally:
            self.device.debug_signal.drive(False)
            self.board.end_printf()

    # -- keep-alive assertions ------------------------------------------------------
    def assert_(self, condition: bool, message: str = "", assert_id: int = 0) -> None:
        """``ASSERT(expr)``: free when passing, keep-alive when failing.

        On failure the debug line goes up, the board tethers the target
        before it can brown out, the failure notification goes over the
        (now free) debug link, and the board opens an interactive
        session and halts the target — raising
        :class:`~repro.runtime.executor.AssertionHaltSignal` through
        the application.
        """
        self.device.execute_cycles(CYCLES_ASSERT_CHECK)
        self.asserts_evaluated += 1
        if condition:
            return
        self.device.debug_signal.drive(True)
        self.board.signal_attention()  # keep-alive: tether *first*
        self.device.debug_uart.transmit(
            encode(Message.assert_fail(assert_id, message))
        )

    # -- energy guards ------------------------------------------------------------------
    @contextlib.contextmanager
    def energy_guard(self) -> Iterator[None]:
        """``ENERGY_GUARD { ... }``: hide the enclosed code's energy cost."""
        self.device.execute_cycles(CYCLES_ATTENTION)
        self.device.debug_signal.drive(True)
        self.board.begin_energy_guard()
        self.device.debug_uart.transmit(encode(Message(MsgType.GUARD_BEGIN)))
        try:
            yield
        finally:
            self.device.debug_uart.transmit(encode(Message(MsgType.GUARD_END)))
            self.device.debug_signal.drive(False)
            self.board.end_energy_guard()

    # -- breakpoints -----------------------------------------------------------------------
    def code_breakpoint(self, breakpoint_id: int) -> None:
        """``BREAKPOINT(id)``: near-free when disabled, full service when hit."""
        self.device.execute_cycles(CYCLES_BREAKPOINT_CHECK)
        bp = self.board.check_code_breakpoint(breakpoint_id)
        if bp is None:
            return
        self.device.debug_signal.drive(True)
        try:
            self.board.service_breakpoint(bp)
        finally:
            self.device.debug_signal.drive(False)

    # -- host-request servicing (runs while tethered) ------------------------------------------
    def service_request(self, message: Message) -> None:
        """Execute one host request (memory read/write) target-side.

        The host encodes the request onto the debug UART; the target
        receives, parses, performs the access, and replies — all costed
        against the target (which is tethered whenever this runs).
        """
        frame = encode(message)
        self.device.debug_uart.feed_rx(frame)
        raw = self.device.debug_uart.receive(len(frame))
        for request in self._rx_decoder.feed(raw):
            self._handle_request(request)

    def _handle_request(self, request: Message) -> None:
        self.device.execute_cycles(CYCLES_SERVICE_PARSE)
        if request.type is MsgType.READ_MEM:
            address = request.decode_address()
            count = request.payload[2]
            self.device.execute_cycles(CYCLES_PER_MEM_WORD * max(1, count // 2))
            data = self.device.memory.read_bytes(address, count)
            self.device.debug_uart.transmit(encode(Message.mem_data(data)))
        elif request.type is MsgType.WRITE_MEM:
            address = request.decode_address()
            data = request.payload[2:]
            self.device.execute_cycles(CYCLES_PER_MEM_WORD * max(1, len(data) // 2))
            self.device.memory.write_bytes(address, data)
            self.device.debug_uart.transmit(encode(Message(MsgType.ACK)))
        elif request.type is MsgType.GET_PC:
            pc = self.device.cpu.pc
            self.device.debug_uart.transmit(
                encode(Message(MsgType.PC_VALUE, bytes([pc & 0xFF, pc >> 8])))
            )
        elif request.type is MsgType.RESUME:
            self.device.debug_uart.transmit(encode(Message(MsgType.ACK)))
        else:
            raise ValueError(f"target cannot service message type {request.type!r}")
