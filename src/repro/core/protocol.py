"""The debugger↔target wire protocol.

libEDB and the debugger board exchange framed messages over a dedicated
UART (plus one GPIO signal line for attention/interrupt, outside this
module).  The frame format is deliberately simple — the target-side
encoder must run in a handful of cycles on a dying energy budget::

    [SOF=0x7E] [type] [length] [payload ...] [checksum]

``checksum`` is the 8-bit sum of type, length, and payload.  A decoder
consumes bytes incrementally and tolerates garbage between frames
(resyncs on the next SOF), because a power failure can truncate a frame
anywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

SOF = 0x7E
MAX_PAYLOAD = 255


class MsgType(enum.IntEnum):
    """Message vocabulary of the debug link."""

    # target -> debugger
    ASSERT_FAIL = 0x01
    BREAKPOINT_HIT = 0x02
    GUARD_BEGIN = 0x03
    GUARD_END = 0x04
    PRINTF = 0x05
    MEM_DATA = 0x06
    ACK = 0x07
    # debugger -> target
    READ_MEM = 0x10
    WRITE_MEM = 0x11
    RESUME = 0x12
    GET_PC = 0x13
    PC_VALUE = 0x14


class ProtocolError(Exception):
    """A malformed frame (bad length, bad checksum, unknown type)."""


@dataclass(frozen=True)
class Message:
    """One decoded frame."""

    type: MsgType
    payload: bytes = b""

    # -- typed constructors / accessors ------------------------------------
    @staticmethod
    def assert_fail(assert_id: int, text: str = "") -> "Message":
        """Keep-alive assertion failure notification."""
        return Message(
            MsgType.ASSERT_FAIL,
            bytes([assert_id & 0xFF]) + text.encode()[: MAX_PAYLOAD - 1],
        )

    @staticmethod
    def breakpoint_hit(breakpoint_id: int) -> "Message":
        """Code/combined breakpoint notification."""
        return Message(MsgType.BREAKPOINT_HIT, bytes([breakpoint_id & 0xFF]))

    @staticmethod
    def printf(text: str) -> "Message":
        """Energy-interference-free printf payload."""
        return Message(MsgType.PRINTF, text.encode()[:MAX_PAYLOAD])

    @staticmethod
    def read_mem(address: int, count: int) -> "Message":
        """Request ``count`` bytes at ``address``."""
        if not 0 < count <= MAX_PAYLOAD:
            raise ProtocolError(f"read size {count} out of range 1..{MAX_PAYLOAD}")
        return Message(
            MsgType.READ_MEM,
            bytes([address & 0xFF, (address >> 8) & 0xFF, count & 0xFF]),
        )

    @staticmethod
    def write_mem(address: int, data: bytes) -> "Message":
        """Write ``data`` at ``address``."""
        if not 0 < len(data) <= MAX_PAYLOAD - 2:
            raise ProtocolError(f"write size {len(data)} out of range")
        return Message(
            MsgType.WRITE_MEM,
            bytes([address & 0xFF, (address >> 8) & 0xFF]) + bytes(data),
        )

    @staticmethod
    def mem_data(data: bytes) -> "Message":
        """Reply carrying memory contents."""
        return Message(MsgType.MEM_DATA, bytes(data))

    def decode_address(self) -> int:
        """Address field of READ_MEM/WRITE_MEM payloads."""
        if len(self.payload) < 2:
            raise ProtocolError("payload too short for an address")
        return self.payload[0] | (self.payload[1] << 8)

    def decode_text(self, skip: int = 0) -> str:
        """Text portion of PRINTF/ASSERT_FAIL payloads."""
        return self.payload[skip:].decode(errors="replace")


def encode(message: Message) -> bytes:
    """Serialise a message to its wire frame."""
    payload = message.payload
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds max")
    body = bytes([int(message.type), len(payload)]) + payload
    checksum = sum(body) & 0xFF
    return bytes([SOF]) + body + bytes([checksum])


def frame_size(message: Message) -> int:
    """Total on-wire size of a message in bytes."""
    return 4 + len(message.payload)


class Decoder:
    """Incremental frame decoder with resynchronisation.

    Feed bytes as they arrive; complete messages come back in order.
    Truncated or corrupted frames are counted and skipped — the decoder
    hunts for the next SOF rather than giving up, because frames from
    an intermittently powered target routinely die mid-flight.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.errors = 0

    def feed(self, data: bytes) -> list[Message]:
        """Consume bytes, returning any complete messages."""
        self._buffer.extend(data)
        out: list[Message] = []
        while True:
            message = self._try_decode_one()
            if message is None:
                return out
            out.append(message)

    def _try_decode_one(self) -> Message | None:
        buffer = self._buffer
        # Hunt for a start-of-frame byte.
        while buffer and buffer[0] != SOF:
            buffer.pop(0)
            self.errors += 1
        if len(buffer) < 4:
            return None
        length = buffer[2]
        total = 4 + length
        if len(buffer) < total:
            return None
        body = bytes(buffer[1 : 3 + length])
        checksum = buffer[3 + length]
        if (sum(body) & 0xFF) != checksum:
            # Bad frame: discard the SOF and resync.
            buffer.pop(0)
            self.errors += 1
            return None if SOF not in buffer else self._try_decode_one()
        del buffer[:total]
        try:
            msg_type = MsgType(body[0])
        except ValueError:
            self.errors += 1
            return None if SOF not in buffer else self._try_decode_one()
        self.frames_decoded += 1
        return Message(msg_type, body[2:])
