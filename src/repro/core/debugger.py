"""The developer-facing EDB facade.

Wraps the board, monitor, breakpoints, energy manipulation, and libEDB
into the object a user of this library instantiates::

    sim = Simulator(seed=7)
    power = make_wisp_power_system(sim)
    target = TargetDevice(sim, power)
    edb = EDB(sim, target)

    edb.trace("energy")
    edb.trace("watchpoints")
    executor = IntermittentExecutor(sim, target, app, edb=edb.libedb())
    result = executor.run(duration=2.0)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.active import SaveRestoreRecord
from repro.core.board import BreakEvent, EDBBoard
from repro.core.breakpoints import Breakpoint, BreakpointManager
from repro.core.libedb import LibEDB
from repro.core.monitor import PassiveMonitor
from repro.core.session import InteractiveSession
from repro.mcu.device import TargetDevice
from repro.sim import units
from repro.sim.kernel import Simulator


class EDB:
    """One debugger attached to one target device.

    Parameters
    ----------
    sim:
        Simulation kernel.
    device:
        The target to attach to.
    sample_rate:
        Passive energy-monitoring rate in Hz.
    """

    def __init__(
        self,
        sim: Simulator,
        device: TargetDevice,
        sample_rate: float = 4 * units.KHZ,
    ) -> None:
        self.sim = sim
        self.device = device
        self.board = EDBBoard(sim, sample_rate=sample_rate)
        self.board.attach(device)
        self.board.set_session_factory(
            lambda event: InteractiveSession(self.board, event)
        )
        self._libedb: LibEDB | None = None
        self._watched_pcs: set[int] = set()

    # -- linking the target-side library ----------------------------------
    def libedb(self) -> LibEDB:
        """The target-side library to link into the application."""
        if self._libedb is None:
            self._libedb = LibEDB(self.device, self.board)
        return self._libedb

    # -- passive mode -----------------------------------------------------------
    @property
    def monitor(self) -> PassiveMonitor:
        """The passive-mode stream monitor."""
        assert self.board.monitor is not None
        return self.board.monitor

    def trace(self, stream: str) -> None:
        """Console ``trace`` command: enable one passive stream."""
        self.monitor.enable(stream)

    def untrace(self, stream: str) -> None:
        """Disable one passive stream."""
        self.monitor.disable(stream)

    @property
    def printf_output(self) -> list[tuple[float, str]]:
        """All printf text received from the target, with timestamps."""
        return self.board.printf_log

    # -- breakpoints ----------------------------------------------------------------
    @property
    def breakpoints(self) -> BreakpointManager:
        """The breakpoint registry."""
        return self.board.breakpoints

    def break_at(self, breakpoint_id: int, one_shot: bool = False) -> Breakpoint:
        """Arm a code breakpoint for ``BREAKPOINT(id)`` sites."""
        return self.breakpoints.add_code(breakpoint_id, one_shot=one_shot)

    def break_on_energy(self, threshold_v: float, one_shot: bool = False) -> Breakpoint:
        """Arm an energy breakpoint at ``threshold_v`` volts."""
        bp = self.breakpoints.add_energy(threshold_v, one_shot=one_shot)
        self.board.arm_energy_sampling()
        return bp

    # -- ISA-level PC watches ----------------------------------------------
    #
    # Marker breakpoints need no cache plumbing: MARK instructions are
    # untranslatable, so a block always ends before one and the marker
    # hook observes plain single-stepping.  Raw-PC watches are different
    # — an arbitrary address may sit mid-block — so registration is
    # forwarded to the CPU, which excludes the address from block
    # translation (targeted invalidation: only blocks overlapping the
    # watch are dropped and retranslated, via the per-page block index).
    def watch_pc(self, pc: int) -> None:
        """Single-step through ``pc``: every hook/trace sees it exactly.

        Forwarded to :meth:`repro.mcu.cpu.Cpu.add_watch_pc`; the CPU
        stops translating blocks across the address, so PC-matching
        instrumentation fires exactly as it would without the block
        cache.
        """
        self._watched_pcs.add(pc & 0xFFFF)
        self.device.cpu.add_watch_pc(pc)

    def unwatch_pc(self, pc: int) -> None:
        """Remove a raw-PC watch and re-allow block translation."""
        self._watched_pcs.discard(pc & 0xFFFF)
        self.device.cpu.remove_watch_pc(pc)

    def break_combined(
        self, breakpoint_id: int, threshold_v: float, one_shot: bool = False
    ) -> Breakpoint:
        """Arm a combined code+energy breakpoint."""
        return self.breakpoints.add_combined(
            breakpoint_id, threshold_v, one_shot=one_shot
        )

    def on_break(self, handler: Callable[[BreakEvent, InteractiveSession], None]):
        """Install the handler invoked when the target stops."""
        self.board.on_break = handler

    def on_assert(self, handler: Callable[[BreakEvent, InteractiveSession], None]):
        """Install the handler for keep-alive assertion failures."""
        self.board.on_assert = handler

    def on_printf(self, handler: Callable[[str], None]) -> None:
        """Install a live listener for printf output."""
        self.board.on_printf = handler

    # -- active mode / energy manipulation ----------------------------------------------
    def charge(self, voltage: float) -> float:
        """Console ``charge``: raise the target's stored energy."""
        return self.board.charge_target(voltage)

    def discharge(self, voltage: float) -> float:
        """Console ``discharge``: lower the target's stored energy."""
        return self.board.discharge_target(voltage)

    @property
    def save_restore_records(self) -> list[SaveRestoreRecord]:
        """Every completed save/restore bracket (Table 3's raw data)."""
        assert self.board.energy is not None
        return self.board.energy.records

    def release(self) -> None:
        """Drop a keep-alive tether (end of a post-assert session)."""
        assert self.board.energy is not None
        self.board.energy.release()

    @property
    def is_tethered(self) -> bool:
        """True while the target runs on EDB's continuous supply."""
        return self.device.power.is_tethered

    # -- divergence capture -----------------------------------------------------------
    def divergence_context(self, tail: int = 64) -> dict:
        """Monitor-derived context around a failing run's end.

        The campaign engine re-executes a diverging run with EDB
        attached in passive mode and stores this snapshot in its report:
        the last ``tail`` energy samples, per-watchpoint hit counts, and
        any printf output — the same correlated streams a developer
        would pull up in the console to understand the failure.
        """
        times, volts = self.monitor.energy_series()
        energy_tail = [
            [round(t, 9), round(v, 6)]
            for t, v in list(zip(times, volts))[-tail:]
        ]
        # Hit counts come from the monitor's aggregate stats, which
        # count every decoded marker pulse; the "watchpoints" *stream*
        # only has events while that trace was enabled, so deriving
        # counts from it undercounts (or reads zero) whenever tracing
        # was off or enabled late.
        watchpoints = {
            str(wp_id): stats.hits
            for wp_id, stats in sorted(self.monitor.watchpoints.items())
        }
        return {
            "energy_tail": energy_tail,
            "watchpoint_hits": watchpoints,
            "printf": [text for _, text in self.printf_output],
        }

    # -- characterisation -------------------------------------------------------------
    def interference_report(self, trials: int = 50) -> dict:
        """Per-connection worst-case leakage (the Table 2 sweep)."""
        return self.board.harness.characterise(trials=trials)

    def worst_case_interference(self, trials: int = 50) -> float:
        """Total worst-case interference current in amperes."""
        return self.board.harness.worst_case_total(trials=trials)

    def detach(self) -> None:
        """Physically disconnect from the target."""
        for pc in list(self._watched_pcs):
            self.device.cpu.remove_watch_pc(pc)
        self._watched_pcs.clear()
        self.board.detach()
