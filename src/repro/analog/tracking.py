"""The Vreg-tracking level-shifter bank (§4.1.2).

EDB's digital taps sit behind level shifters whose reference rail must
match the target's regulated voltage.  The subtlety the paper calls out:
*"the Vreg line may drop below its specified, regulated value during a
power failure on the target device"* — and if the shifter keeps driving
at the nominal rail while the target's rail sags, the mismatch exceeds
the MCU's ±0.3 V protection-diode window and the diodes conduct,
dumping current into the dying target — catastrophic interference at
exactly the moment that must not be perturbed.

:class:`LevelShifterBank` models a bank of debugger-driven lines with a
selectable reference strategy:

- ``tracked=True`` (EDB's design): the analog buffer follows the live
  Vreg, keeping the mismatch at millivolts in every power state;
- ``tracked=False`` (the naive design): the reference is fixed at the
  nominal rail, and the bank reports the protection-diode current the
  target suffers as its rail sags.
"""

from __future__ import annotations

from repro.analog.components import AnalogBufferTracker, ProtectionDiodes
from repro.power.supply import PowerSystem
from repro.sim.rng import RngHub


class LevelShifterBank:
    """Debugger-driven lines referenced to a (tracked or fixed) rail.

    Parameters
    ----------
    rng:
        Random hub (tracking-error jitter).
    power:
        The target's power system (provides the live Vreg).
    lines:
        Names of the debugger-driven lines in the bank.
    tracked:
        Reference strategy (see module docstring).
    nominal_rail:
        The fixed reference used when ``tracked`` is false.
    """

    def __init__(
        self,
        rng: RngHub,
        power: PowerSystem,
        lines: list[str] | None = None,
        tracked: bool = True,
        nominal_rail: float = 2.0,
    ) -> None:
        self.power = power
        self.tracked = tracked
        self.nominal_rail = nominal_rail
        self.lines = lines or ["debugger_to_target_comm"]
        self.states: dict[str, bool] = {name: False for name in self.lines}
        self._tracker = AnalogBufferTracker(rng, "shifter.tracker")
        self._diodes = ProtectionDiodes()

    def drive(self, line: str, state: bool) -> None:
        """Set a debugger-driven line's logic state."""
        if line not in self.states:
            raise KeyError(f"no line {line!r} in the bank; have {self.lines}")
        self.states[line] = state

    def reference_voltage(self) -> float:
        """The rail the shifters' output stage uses right now."""
        if self.tracked:
            return self._tracker.reference_voltage(self.power.vreg)
        return self.nominal_rail

    def line_voltage(self, line: str) -> float:
        """The voltage presented on one line (reference if HIGH, 0 if LOW)."""
        return self.reference_voltage() if self.states[line] else 0.0

    def mismatch(self, line: str) -> float:
        """Line voltage minus the target's rail (the dangerous quantity)."""
        return self.line_voltage(line) - self.power.vreg

    def protection_current(self) -> float:
        """Total current through the target's protection diodes, amperes.

        Zero whenever every line stays within the ±0.3 V window of the
        target's rail — which the tracked design guarantees by
        construction and the naive design violates during power
        failures.
        """
        rail = self.power.vreg
        total = 0.0
        for line in self.lines:
            total += self._diodes.injected_current(self.line_voltage(line), rail)
        return total

    def apply_interference(self) -> float:
        """Inject the current protection-diode current into the target.

        Returns the injected current; call periodically (like the
        board's leakage updater) to make the interference live.
        """
        current = self.protection_current()
        existing = self.power.injected_current
        self.power.inject_current(existing + current)
        return current
