"""EDB's charge/discharge circuit and its software control loops.

Hardware (§4.1.1): a GPIO pin drives the target's storage capacitor
through a low-pass filter and keeper diode to charge it; a fixed
resistive load discharges it.  While inactive the circuit sits in a
high-impedance state (its leakage is part of the Table 2 harness).

Software: basic iterative control loops — sample the capacitor voltage
through EDB's ADC every control period, keep charging/discharging until
the measurement crosses the setpoint.

The model reproduces the two real inaccuracy mechanisms that Table 3
measures:

- *quantisation*: the loop only observes the voltage once per control
  period through a 12-bit ADC, so it always overshoots the setpoint by
  up to one period's worth of charge;
- *filter dump*: when the charging GPIO turns off, the low-pass
  filter's capacitor is still charged above the target voltage and
  bleeds through the keeper diode into the storage capacitor, adding a
  final ~50 mV — the dominant term in the paper's mean 54 mV
  save/restore discrepancy.
"""

from __future__ import annotations

from repro.mcu.adc import Adc
from repro.power.supply import PowerSystem
from repro.sim import units
from repro.sim.kernel import Simulator


class ChargeDischargeCircuit:
    """The energy-manipulation circuit plus its control loops.

    Parameters
    ----------
    sim / power:
        Simulation kernel and the *target's* power system (the circuit
        manipulates the target's storage capacitor directly).
    adc:
        EDB's ADC, through which the control loops observe Vcap.
    charge_current:
        Current delivered while the charging GPIO is on.
    discharge_resistance:
        The fixed resistive discharge load.
    control_period:
        Interval between control-loop voltage samples.
    gpio_voltage:
        EDB's GPIO rail (sets the filter-dump magnitude).
    filter_capacitance:
        The low-pass filter capacitor that causes the post-charge dump.
    diode_drop:
        Keeper diode forward drop.
    """

    def __init__(
        self,
        sim: Simulator,
        power: PowerSystem,
        adc: Adc,
        charge_current: float = 5 * units.MA,
        discharge_resistance: float = 220 * units.OHM,
        # The fine load must out-pull the strongest harvesting condition
        # (~1.1 mA close to the reader) or the approach loop stalls.
        fine_discharge_resistance: float = 1.5 * units.KOHM,
        coarse_band: float = 10 * units.MV,
        control_period: float = 100 * units.US,
        gpio_voltage: float = 3.3,
        filter_capacitance: float = 3.3 * units.UF,
        diode_drop: float = 0.25,
    ) -> None:
        self.sim = sim
        self.power = power
        self.adc = adc
        self.charge_current = charge_current
        self.discharge_resistance = discharge_resistance
        self.fine_discharge_resistance = fine_discharge_resistance
        self.coarse_band = coarse_band
        self.control_period = control_period
        self.gpio_voltage = gpio_voltage
        self.filter_capacitance = filter_capacitance
        self.diode_drop = diode_drop
        self.charge_operations = 0
        self.discharge_operations = 0

    # -- internals --------------------------------------------------------
    def _measured_vcap(self) -> float:
        return self.adc.measure(self.power.vcap)

    def _tick(self) -> None:
        """One control period of simulated time at idle target load."""
        self.sim.advance(self.control_period)
        self.power.idle_step(self.control_period)

    def _filter_dump(self) -> None:
        """The post-charge filter-capacitor dump through the keeper diode.

        Charge conservation between the filter cap (at the GPIO rail)
        and the storage cap, down to one diode drop of headroom, with
        ~25 % lot-to-lot and timing spread.
        """
        headroom = self.gpio_voltage - self.power.vcap - self.diode_drop
        if headroom <= 0.0:
            return
        charge = self.filter_capacitance * headroom
        spread = self.sim.rng.gauss("charge-circuit.dump", 1.0, 0.25)
        spread = min(max(spread, 0.0), 2.0)
        delta_v = charge * spread / self.power.capacitor.capacitance
        self.power.capacitor.voltage = self.power.vcap + delta_v

    # -- public control loops ------------------------------------------------
    def charge_to(
        self, v_target: float, timeout: float = 1.0, fine: bool = False
    ) -> float:
        """Charge the target's capacitor until it measures >= ``v_target``.

        Returns the *true* final capacitor voltage.  ``fine`` uses a
        10x smaller charging current for trim operations (smaller
        quantisation overshoot, same filter dump).
        """
        if v_target <= 0.0:
            raise ValueError(f"target voltage must be positive (got {v_target})")
        current = self.charge_current * (0.1 if fine else 1.0)
        deadline = self.sim.now + timeout
        capacitance = self.power.capacitor.capacitance
        while (measured := self._measured_vcap()) < v_target:
            if self.sim.now >= deadline:
                raise TimeoutError(
                    f"charge_to({v_target:.3f}) stuck at {self.power.vcap:.3f} V"
                )
            # Pulse-width modulate the final approach: never deliver
            # (much) more charge than the remaining gap needs.
            gap = v_target - measured + 1e-3
            pulse = min(self.control_period, capacitance * gap / current)
            self.power.capacitor.apply_current(current, pulse)
            self._tick()
        self._filter_dump()
        self.charge_operations += 1
        self.sim.trace.record("edb.charge", self.power.vcap, target=v_target)
        return self.power.vcap

    def discharge_to(self, v_target: float, timeout: float = 1.0) -> float:
        """Discharge through the resistive loads until measured <= target.

        Two-stage control: the coarse load runs the bulk of the way,
        then the fine (high-resistance) load finishes the approach, so
        the final undershoot is a couple of millivolts — small enough
        that high-rate compensation (printf, energy guards) stays
        nearly free for the target.
        """
        if v_target < 0.0:
            raise ValueError(f"target voltage must be non-negative (got {v_target})")
        deadline = self.sim.now + timeout
        while (measured := self._measured_vcap()) > v_target:
            if self.sim.now >= deadline:
                raise TimeoutError(
                    f"discharge_to({v_target:.3f}) stuck at {self.power.vcap:.3f} V"
                )
            # Stage selection: use the coarse load only while a full
            # control period of it cannot overshoot the setpoint (plus
            # the configured band); finish with the fine load, whose
            # per-period step bounds the final undershoot.
            capacitance = self.power.capacitor.capacitance
            gap = measured - v_target
            coarse_current = self.power.vcap / self.discharge_resistance
            coarse_step = coarse_current * self.control_period / capacitance
            if gap > coarse_step + self.coarse_band:
                current = coarse_current
            else:
                current = self.power.vcap / self.fine_discharge_resistance
            self.power.capacitor.apply_current(-current, self.control_period)
            self._tick()
        self.discharge_operations += 1
        self.sim.trace.record("edb.discharge", self.power.vcap, target=v_target)
        return self.power.vcap

    def restore_to(self, v_target: float) -> float:
        """Return the capacitor to a previously saved level.

        Used by energy compensation (§3.2): after an active-mode task
        on tethered power leaves the capacitor at the tether voltage,
        bring it back to the saved level — discharge below, then trim
        up with the fine charge path.  The trim's filter dump is what
        leaves the restored level a few tens of millivolts above the
        saved one (Table 3's ``+54 mV`` mean).
        """
        if self.power.vcap > v_target:
            self.discharge_to(v_target)
        if self.power.vcap < v_target:
            self.charge_to(v_target, fine=True)
        return self.power.vcap
