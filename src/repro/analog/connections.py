"""The debugger↔target connection harness (the wires of Figure 5).

Every physical connection between EDB and the target is represented by
a :class:`Connection` that knows which component terminates it on the
debugger side and can therefore report the DC current flowing across it
for a given drive state.  :class:`EDBConnectionHarness` assembles the
full set from the paper's Figure 5 / Table 2:

- capacitor sense/manipulate (instrumentation amp + keeper diode),
- regulator sense / level reference (instrumentation amp),
- debugger→target communication (level shifter output),
- target→debugger communication, 2x code marker, UART RX/TX,
  RF RX/TX (low-leakage digital buffer inputs),
- I2C SCL/SDA (open-drain taps).

The harness provides both the *measurement* interface the Table 2 bench
sweeps with a source meter, and the *live* interface the debugger board
uses to inject its (tiny) aggregate leakage into the target's power
system during passive monitoring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.analog.components import (
    DigitalBufferInput,
    InstrumentationAmplifier,
    KeeperDiode,
    LevelShifter,
    OpenDrainTap,
)
from repro.sim.rng import RngHub


class LineState(enum.Enum):
    """Drive state of a connection during a leakage measurement."""

    HIGH = "high"
    LOW = "low"
    ANALOG = "analog"  # analog sense line (no logic state)


@dataclass
class Connection:
    """One debugger↔target wire.

    ``measure(voltage, state)`` returns the DC current across the
    connection in amperes (positive into the target), evaluating the
    terminating component's leakage model once — i.e. one source-meter
    reading.
    """

    name: str
    driver: str  # "target", "debugger", or "analog"
    states: tuple[LineState, ...]
    _model: Callable[[float, LineState], float]

    def measure(self, voltage: float, state: LineState) -> float:
        """One leakage sample at ``voltage`` in ``state`` (amperes)."""
        if state not in self.states:
            raise ValueError(
                f"connection {self.name!r} has no {state.value!r} state"
            )
        return self._model(voltage, state)

    def worst_case(
        self, voltage: float, trials: int = 50
    ) -> dict[LineState, dict[str, float]]:
        """Min/avg/max over ``trials`` samples, per drive state."""
        out: dict[LineState, dict[str, float]] = {}
        for state in self.states:
            samples = [self.measure(voltage, state) for _ in range(trials)]
            out[state] = {
                "min": min(samples),
                "avg": sum(samples) / len(samples),
                "max": max(samples),
            }
        return out


# Measurement endpoint voltage: the paper applies 0 V or 2.4 V ("the
# maximum voltage that can arise on any of the connections").
MEASUREMENT_VOLTAGE = 2.4

_DIGITAL = (LineState.HIGH, LineState.LOW)


class EDBConnectionHarness:
    """All of EDB's physical connections to one target."""

    def __init__(self, rng: RngHub) -> None:
        self.rng = rng
        self.connections: dict[str, Connection] = {}
        self._build()

    def _add(self, connection: Connection) -> None:
        self.connections[connection.name] = connection

    def _analog(self, name: str, *models) -> None:
        def evaluate(voltage: float, state: LineState) -> float:
            return sum(m.leakage_current(voltage) for m in models)

        self._add(Connection(name, "analog", (LineState.ANALOG,), evaluate))

    def _buffer_tap(self, name: str, tap: DigitalBufferInput) -> None:
        def evaluate(voltage: float, state: LineState) -> float:
            return tap.leakage_current(voltage, state is LineState.HIGH)

        self._add(Connection(name, "target", _DIGITAL, evaluate))

    def _build(self) -> None:
        rng = self.rng
        self._analog(
            "capacitor_sense_manipulate",
            InstrumentationAmplifier(rng, "amp.vcap"),
            KeeperDiode(rng, "diode.charge"),
        )
        self._analog(
            "regulator_sense_level_reference",
            InstrumentationAmplifier(
                rng, "amp.vreg", bias_at_fullscale=0.02e-9
            ),
        )

        shifter = LevelShifter(rng, "shifter.d2t")

        def d2t(voltage: float, state: LineState) -> float:
            return shifter.leakage_current(voltage, state is LineState.HIGH)

        self._add(
            Connection("debugger_to_target_comm", "debugger", _DIGITAL, d2t)
        )

        for name in (
            "target_to_debugger_comm",
            "code_marker_0",
            "code_marker_1",
            "uart_rx",
            "uart_tx",
            "rf_rx",
            "rf_tx",
        ):
            self._buffer_tap(name, DigitalBufferInput(rng, f"buffer.{name}"))

        for name in ("i2c_scl", "i2c_sda"):
            self._buffer_tap(name, OpenDrainTap(rng, f"tap.{name}"))

    # -- queries ------------------------------------------------------------
    def names(self) -> list[str]:
        """All connection names, in Figure 5 order."""
        return list(self.connections)

    def connection(self, name: str) -> Connection:
        """Look a connection up by name."""
        try:
            return self.connections[name]
        except KeyError:
            raise KeyError(
                f"no connection {name!r}; have {self.names()}"
            ) from None

    def characterise(
        self, voltage: float = MEASUREMENT_VOLTAGE, trials: int = 50
    ) -> dict[str, dict[LineState, dict[str, float]]]:
        """The full Table 2 sweep: per-connection, per-state min/avg/max."""
        return {
            name: conn.worst_case(voltage, trials)
            for name, conn in self.connections.items()
        }

    def worst_case_total(
        self, voltage: float = MEASUREMENT_VOLTAGE, trials: int = 50
    ) -> float:
        """Worst-case total interference current (amperes).

        The paper's bottom-line number: the sum over all connections of
        the largest-magnitude current observed in any state — the
        absolute worst case "when all lines are active".
        """
        total = 0.0
        for conn in self.connections.values():
            stats = conn.worst_case(voltage, trials)
            total += max(
                max(abs(s["min"]), abs(s["max"])) for s in stats.values()
            )
        return total

    # -- live operating point --------------------------------------------------
    def live_leakage(self, line_states: dict[str, bool], vcap: float) -> float:
        """Net DC current into the target at a live operating point.

        ``line_states`` maps digital connection names to their current
        logic level (absent names are assumed LOW); analog senses are
        always connected.  This is what the debugger board feeds into
        :meth:`repro.power.supply.PowerSystem.inject_current` while
        passively monitoring.
        """
        total = 0.0
        for name, conn in self.connections.items():
            if LineState.ANALOG in conn.states:
                total += conn.measure(vcap, LineState.ANALOG)
            else:
                high = line_states.get(name, False)
                state = LineState.HIGH if high else LineState.LOW
                # Input leakage of a target-driven HIGH line is sourced
                # by the target's driver, i.e. it leaves the target.
                sample = conn.measure(vcap, state)
                total += -sample if conn.driver == "target" else sample
        return total
