"""Component-level leakage models.

Each component answers one question: *given the voltage the target is
presenting on this wire, how much DC current flows between the target
and the debugger?*  Sign convention matches the paper's Table 2:
positive current flows **into** the target (inadvertent charging),
negative flows **out of** the target (inadvertent loading).

Magnitudes are datasheet-style figures for the parts the paper's
prototype uses: a dual high-impedance unity-gain instrumentation
amplifier on the analog senses, an extremely-low-leakage digital buffer
plus level shifter on the digital taps, and a keeper diode in the
charge path.  Each model draws per-sample jitter from a named RNG
stream so repeated measurements scatter like real silicon.
"""

from __future__ import annotations

from repro.sim import units
from repro.sim.rng import RngHub


class InstrumentationAmplifier:
    """High-impedance unity-gain instrumentation amplifier input.

    Used on the Vcap and Vreg sense lines.  Input bias current is the
    only leakage path: sub-nanoamp, roughly proportional to input
    voltage, with small part-to-part scatter.
    """

    def __init__(
        self,
        rng: RngHub,
        stream: str,
        bias_at_fullscale: float = 0.05 * units.NA,
        fullscale: float = 2.4,
    ) -> None:
        self.rng = rng
        self.stream = stream
        self.bias_at_fullscale = bias_at_fullscale
        self.fullscale = fullscale

    def leakage_current(self, line_voltage: float) -> float:
        """Input bias current at ``line_voltage`` (flows out of the target)."""
        scale = line_voltage / self.fullscale
        nominal = -self.bias_at_fullscale * scale
        return nominal + self.rng.gauss(self.stream, 0.0, 0.01 * units.NA)


class KeeperDiode:
    """The charge-path keeper diode in its blocking (inactive) state.

    Reverse leakage grows with reverse bias; occasional larger draws
    reflect the low-pass filter's capacitor exchanging charge with the
    line — which is why the paper's "Capacitor sense, manipulate" row
    has the widest min/max span of the sub-nanoamp rows.
    """

    def __init__(
        self,
        rng: RngHub,
        stream: str,
        reverse_leakage: float = 0.4 * units.NA,
        filter_exchange_sigma: float = 0.8 * units.NA,
    ) -> None:
        self.rng = rng
        self.stream = stream
        self.reverse_leakage = reverse_leakage
        self.filter_exchange_sigma = filter_exchange_sigma

    def leakage_current(self, line_voltage: float) -> float:
        """Net leakage on the charge line while the circuit is inactive."""
        reverse = self.reverse_leakage * (line_voltage / 2.4)
        exchange = self.rng.gauss(self.stream, 0.0, self.filter_exchange_sigma)
        return reverse * 0.3 + exchange * 0.35


class DigitalBufferInput:
    """An extremely-low-leakage digital buffer input (target-driven taps).

    When the target drives the line HIGH, the buffer input sinks tens
    of nanoamps (input leakage at Vin = 2.4 V); driven LOW, a couple of
    nanoamps flow the other way through the input protection network.
    These are the ~+65 nA (high) / ~-2 nA (low) signatures of the
    Target->Debugger, code-marker, UART, and RF rows of Table 2.

    Note the *sign*: at logic HIGH the measured current in Table 2 is
    positive.  The source meter drives the line in that measurement, so
    "into the target" reads positive; during live operation the target
    itself sources this current, i.e. it is an energy cost of holding a
    line high, paid only for the cycles the line is actually high.
    """

    def __init__(
        self,
        rng: RngHub,
        stream: str,
        high_leakage: float = 65 * units.NA,
        high_sigma: float = 18 * units.NA,
        low_leakage: float = -1.9 * units.NA,
        low_sigma: float = 0.2 * units.NA,
    ) -> None:
        self.rng = rng
        self.stream = stream
        self.high_leakage = high_leakage
        self.high_sigma = high_sigma
        self.low_leakage = low_leakage
        self.low_sigma = low_sigma

    def leakage_current(self, line_voltage: float, logic_high: bool) -> float:
        """Leakage for the given drive state."""
        if logic_high:
            draw = self.rng.gauss(self.stream, self.high_leakage, self.high_sigma)
            return max(0.0, draw) * (line_voltage / 2.4)
        return self.rng.gauss(self.stream, self.low_leakage, self.low_sigma)


class LevelShifter:
    """Debugger-driven level-shifted output (Debugger->Target comm).

    The shifter's output stage is what drives the line, so the target
    sees only the receiver's input leakage: essentially nothing
    (+/- tens of picoamps).
    """

    def __init__(
        self, rng: RngHub, stream: str, input_leakage_sigma: float = 0.012 * units.NA
    ) -> None:
        self.rng = rng
        self.stream = stream
        self.input_leakage_sigma = input_leakage_sigma

    def leakage_current(self, line_voltage: float, logic_high: bool) -> float:
        """Receiver input leakage (state-dependent offset, tiny)."""
        offset = 0.0 if logic_high else -0.02 * units.NA
        return offset + self.rng.gauss(self.stream, 0.0, self.input_leakage_sigma)


class OpenDrainTap(DigitalBufferInput):
    """I2C-style open-drain tap: low-leakage in both states.

    The I2C rows of Table 2 are two orders of magnitude below the
    push-pull digital taps because the monitor presents only a
    high-impedance comparator input, never a driven stage.
    """

    def __init__(self, rng: RngHub, stream: str) -> None:
        super().__init__(
            rng,
            stream,
            high_leakage=0.04 * units.NA,
            high_sigma=0.02 * units.NA,
            low_leakage=-0.18 * units.NA,
            low_sigma=0.05 * units.NA,
        )

    def leakage_current(self, line_voltage: float, logic_high: bool) -> float:
        if logic_high:
            return self.rng.gauss(self.stream, self.high_leakage, self.high_sigma)
        return self.rng.gauss(self.stream, self.low_leakage, self.low_sigma)


class AnalogBufferTracker:
    """The Vreg-tracking analog buffer of §4.1.2.

    Keeps the level shifter's reference rail equal to the target's
    (possibly sagging) Vreg so the mismatch never exceeds the MCU's
    protection-diode window.  ``reference_voltage`` is what the level
    shifters see; the tracking error is a few millivolts.
    """

    def __init__(self, rng: RngHub, stream: str, error_sigma: float = 2 * units.MV):
        self.rng = rng
        self.stream = stream
        self.error_sigma = error_sigma

    def reference_voltage(self, vreg: float) -> float:
        """The tracked rail presented to the level shifters."""
        return max(0.0, vreg + self.rng.gauss(self.stream, 0.0, self.error_sigma))


class ProtectionDiodes:
    """The target MCU's I/O protection diodes.

    If an externally driven line exceeds the target's rail by more than
    the diode threshold (+/- 0.3 V per the MSP430FR datasheet the paper
    cites), the diode conducts and dumps current into (or out of) the
    target's supply — catastrophic energy interference.  EDB's Vreg
    tracking exists precisely to keep this from ever activating.
    """

    def __init__(self, threshold: float = 0.3, on_resistance: float = 300.0) -> None:
        self.threshold = threshold
        self.on_resistance = on_resistance

    def injected_current(self, line_voltage: float, rail_voltage: float) -> float:
        """Current through the protection network (0 when within window)."""
        excess = line_voltage - (rail_voltage + self.threshold)
        if excess > 0.0:
            return excess / self.on_resistance  # into the target rail
        deficit = line_voltage - (0.0 - self.threshold)
        if deficit < 0.0:
            return deficit / self.on_resistance  # out of the target rail
        return 0.0
