"""Analog/electrical models of the EDB↔target interface.

Energy-interference-freedom is an *electrical* property before it is a
software one: every wire between the debugger and the target is a
potential path for charge to leak into or out of the target's storage
capacitor.  This package models each connection of the paper's Figure 5
as a stack of components with datasheet-style leakage (instrumentation
amplifiers, keeper diodes, low-leakage digital buffers, level shifters),
so the Table 2 interference characterisation is a real measurement over
the component models rather than a hard-coded table.

It also contains the charge/discharge circuit (GPIO + low-pass filter +
keeper diode, resistive discharge path) and its iterative software
control loops — the mechanism behind EDB's energy manipulation, whose
accuracy Table 3 quantifies.
"""

from repro.analog.components import (
    AnalogBufferTracker,
    DigitalBufferInput,
    InstrumentationAmplifier,
    KeeperDiode,
    LevelShifter,
    ProtectionDiodes,
)
from repro.analog.connections import (
    Connection,
    EDBConnectionHarness,
    LineState,
)
from repro.analog.charge_circuit import ChargeDischargeCircuit
from repro.analog.tracking import LevelShifterBank

__all__ = [
    "LevelShifterBank",
    "AnalogBufferTracker",
    "ChargeDischargeCircuit",
    "Connection",
    "DigitalBufferInput",
    "EDBConnectionHarness",
    "InstrumentationAmplifier",
    "KeeperDiode",
    "LevelShifter",
    "LineState",
    "ProtectionDiodes",
]
