"""The target device: MCU + memory + peripherals on an intermittent supply.

:class:`TargetDevice` is the simulated WISP.  It is the only component
that converts *work* (CPU cycles, UART bytes, I2C transactions) into
*time and energy*: every unit of work advances the simulation clock and
drains the storage capacitor, and if the capacitor crosses the brown-out
threshold mid-work the device raises :class:`PowerFailure` — the
simulator's rendition of an intermittent reboot.

A reboot (:meth:`TargetDevice.reboot`) does exactly what the paper says
a power failure does: clears volatile state (register file, SRAM, GPIO,
peripheral queues), retains non-volatile state (FRAM), and transfers
control back to the program entry point.
"""

from __future__ import annotations

from typing import Callable

from repro.io.i2c import I2CBus
from repro.io.lines import DigitalLine
from repro.io.uart import Uart
from repro.mcu.adc import Adc, AdcChannelMux
from repro.mcu.assembler import Program
from repro.mcu.cpu import Cpu, Halted
from repro.mcu.gpio import GpioPort
from repro.mcu.memory import MemoryMap, make_msp430_memory_map
from repro.power.supply import PowerSystem
from repro.power.wisp import WispPowerConstants
from repro.sim import units
from repro.sim.kernel import Simulator


class PowerFailure(Exception):
    """The supply browned out while the device was doing work."""

    def __init__(self, message: str, vcap: float, at: float) -> None:
        super().__init__(message)
        self.vcap = vcap
        self.at = at


class ExecutionLimit(Exception):
    """The executor's simulated-time deadline expired mid-execution."""


class TargetDevice:
    """A WISP-class energy-harvesting target.

    Parameters
    ----------
    sim:
        Simulation kernel.
    power:
        The intermittent power system feeding the device.
    constants:
        Electrical constants (clock rate, currents); defaults to WISP 5.
    memory:
        Address space; defaults to the MSP430FR5969-flavoured map.
    marker_bits:
        Number of GPIO lines allocated to EDB code markers; supports
        ``2**marker_bits - 1`` distinct watchpoint identifiers (§4.1.3).
    """

    def __init__(
        self,
        sim: Simulator,
        power: PowerSystem,
        constants: WispPowerConstants | None = None,
        memory: MemoryMap | None = None,
        marker_bits: int = 4,
    ) -> None:
        self.sim = sim
        self.power = power
        self.constants = constants or WispPowerConstants()
        self.memory = memory or make_msp430_memory_map()
        # Hot-path constants, hoisted out of execute_cycles.  The static
        # current is the same left-to-right sum the inline expression
        # performed, so downstream float arithmetic is unchanged.
        self._cycle_time = self.constants.cycle_time
        self._static_current = (
            self.constants.active_current + self.constants.system_current
        )

        self.gpio = GpioPort(sim)
        self.gpio.add_pin("led", load_current=self.constants.led_current)
        self.adc = Adc(
            reference_voltage=3.3, noise_sigma_v=0.5 * units.MV, rng=sim.rng,
            stream="target-adc",
        )
        self.adc_mux = AdcChannelMux(self.adc)
        self.adc_mux.add_channel("vcap", lambda: self.power.vcap)

        self.uart = Uart(sim, spend=self.spend_time, name="uart")
        self.debug_uart = Uart(sim, spend=self.spend_time, name="debug_uart")
        self.i2c = I2CBus(sim, spend=self.spend_time)

        if marker_bits < 1:
            raise ValueError("need at least one code-marker line")
        self.marker_lines = [
            DigitalLine(sim, f"code_marker_{i}") for i in range(marker_bits)
        ]
        self.debug_signal = DigitalLine(sim, "debug_signal")
        self.on_code_marker: list[Callable[[int], None]] = []

        self.cpu = Cpu(self.memory, spend=self.execute_cycles)
        self.cpu.on_mark = self._cpu_mark
        self._program: Program | None = None

        self.cycles_executed = 0
        self.reboot_count = 0
        self.energy_consumed = 0.0
        self.stop_after: float | None = None  # executor deadline (sim time)
        # Observers of power-failure resets (fault injectors re-arm
        # their per-boot schedules here; recorders log boot boundaries).
        self.on_reboot: list[Callable[[int], None]] = []
        # Hooks run after each unit of work completes (an attached
        # debugger services pending energy breakpoints here, mimicking
        # its interrupt line).  Guarded against re-entrancy.
        self.post_work_hooks: list[Callable[[], None]] = []
        self._in_hook = False

    # -- work -> time + energy ------------------------------------------------
    @property
    def max_marker_id(self) -> int:
        """Largest encodable watchpoint identifier (``2^n - 1``)."""
        return (1 << len(self.marker_lines)) - 1

    def _check_power(self) -> None:
        if not self.power.is_on:
            raise PowerFailure(
                f"brown-out at {self.sim.now * 1e3:.3f} ms "
                f"(Vcap = {self.power.vcap:.3f} V)",
                vcap=self.power.vcap,
                at=self.sim.now,
            )

    def execute_cycles(self, cycles: int, extra_current: float = 0.0) -> None:
        """Burn ``cycles`` of CPU time against the supply.

        Raises :class:`PowerFailure` if the supply browns out during or
        before the work.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative (got {cycles})")
        if self.stop_after is not None and self.sim.now >= self.stop_after:
            raise ExecutionLimit(f"deadline {self.stop_after:.6f} s reached")
        self._check_power()
        dt = cycles * self._cycle_time
        current = (
            self._static_current
            + self.gpio.total_load_current()
            + extra_current
        )
        # Inline of capacitor.energy (0.5 * C * V * V, the exact
        # cap_energy expression): this runs twice per unit of work and
        # the property + helper call overhead dominates it.
        capacitor = self.power.capacitor
        v = capacitor._voltage
        energy_before = 0.5 * capacitor.capacitance * v * v
        self.sim.advance(dt)
        powered = self.power.step(dt, current)
        self.cycles_executed += cycles
        v = capacitor._voltage
        drained = energy_before - 0.5 * capacitor.capacitance * v * v
        if drained > 0.0:
            self.energy_consumed += drained
        if not powered:
            raise PowerFailure(
                f"brown-out at {self.sim.now * 1e3:.3f} ms "
                f"(Vcap = {self.power.vcap:.3f} V)",
                vcap=self.power.vcap,
                at=self.sim.now,
            )
        if self.post_work_hooks and not self._in_hook:
            self._in_hook = True
            try:
                for hook in self.post_work_hooks:
                    hook()
            finally:
                self._in_hook = False

    def spend_time(self, seconds: float, extra_current: float = 0.0) -> None:
        """Burn wall-clock work (bus transfers) against the supply."""
        cycles = max(1, round(seconds * self.constants.clock_hz))
        self.execute_cycles(cycles, extra_current=extra_current)

    def sleep(self, seconds: float) -> None:
        """Low-power sleep: time passes at the sleep current.

        Sleep is work like any other: the energy drawn at the sleep
        current lands in :attr:`energy_consumed`, and the post-work
        hooks run afterwards — an attached debugger's energy
        breakpoints must fire whether the device burned the energy
        computing or dozing.
        """
        if self.stop_after is not None and self.sim.now >= self.stop_after:
            raise ExecutionLimit(f"deadline {self.stop_after:.6f} s reached")
        self._check_power()
        capacitor = self.power.capacitor
        v = capacitor._voltage
        energy_before = 0.5 * capacitor.capacitance * v * v
        self.sim.advance(seconds)
        powered = self.power.step(seconds, self.constants.sleep_current)
        v = capacitor._voltage
        drained = energy_before - 0.5 * capacitor.capacitance * v * v
        if drained > 0.0:
            self.energy_consumed += drained
        if not powered:
            raise PowerFailure(
                f"brown-out during sleep at {self.sim.now * 1e3:.3f} ms",
                vcap=self.power.vcap,
                at=self.sim.now,
            )
        if self.post_work_hooks and not self._in_hook:
            self._in_hook = True
            try:
                for hook in self.post_work_hooks:
                    hook()
            finally:
                self._in_hook = False

    # -- code markers (EDB program-event monitoring) ----------------------------
    def code_marker(self, marker_id: int) -> None:
        """Pulse the code-marker GPIO lines to encode ``marker_id``.

        This is the near-free program-event signalling of §4.1.3: the
        target holds the lines for a single cycle.  Identifier 0 is
        reserved (it is indistinguishable from "no marker").
        """
        if not 1 <= marker_id <= self.max_marker_id:
            raise ValueError(
                f"marker id {marker_id} out of range 1..{self.max_marker_id}"
            )
        # The release must survive a brown-out inside the one-cycle
        # pulse: without the finally, a PowerFailure raised by the spend
        # leaves the lines driven high until the next reboot, and the
        # debugger would read a phantom marker while the target is dark.
        try:
            for bit, line in enumerate(self.marker_lines):
                line.drive(bool(marker_id & (1 << bit)))
            self.execute_cycles(1)
            for hook in self.on_code_marker:
                hook(marker_id)
        finally:
            for line in self.marker_lines:
                line.drive(False)

    def _cpu_mark(self, marker_id: int) -> None:
        self.code_marker(marker_id)

    # -- reboot / program control -------------------------------------------------
    def reboot(self) -> None:
        """Power-failure reset: clear volatile state, keep FRAM."""
        self.memory.clear_volatile()
        self.gpio.reset()
        self.uart.reset()
        self.debug_uart.reset()
        for line in self.marker_lines:
            line.drive(False)
        self.debug_signal.drive(False)
        if self._program is not None:
            self.cpu.reset(self._program.entry)
        else:
            self.cpu.reset(0)
        self.reboot_count += 1
        self.sim.trace.record("target.reboot", self.reboot_count)
        for hook in self.on_reboot:
            hook(self.reboot_count)

    def load_program(self, program: Program) -> None:
        """Write an assembled image into FRAM and point the CPU at it."""
        self.memory.write_bytes(program.origin, program.to_bytes())
        self._program = program
        self.cpu.reset(program.entry)

    @property
    def program(self) -> Program | None:
        """The currently loaded ISA program image, if any."""
        return self._program

    def run_isa(self, max_instructions: int = 1_000_000) -> str:
        """Run the loaded ISA program until HALT, power failure, or limit.

        Returns ``"halted"``, or raises :class:`PowerFailure` — callers
        that want intermittent semantics use the executor in
        :mod:`repro.runtime.executor`, which catches the failure,
        charges, reboots, and retries.
        """
        if self._program is None:
            raise RuntimeError("no program loaded")
        for _ in range(max_instructions):
            try:
                self.cpu.step()
            except Halted:
                return "halted"
        raise RuntimeError(f"exceeded {max_instructions} instructions")

    # -- self-measurement ------------------------------------------------------------
    def measure_own_vcap(self) -> float:
        """The target measuring its *own* storage voltage via its ADC.

        Costs ~160 cycles (ADC setup + conversion), which — as §4.1
        notes — itself perturbs the energy state being measured.
        """
        self.execute_cycles(160)
        return self.adc_mux.read("vcap")
