"""The target device: MCU + memory + peripherals on an intermittent supply.

:class:`TargetDevice` is the simulated WISP.  It is the only component
that converts *work* (CPU cycles, UART bytes, I2C transactions) into
*time and energy*: every unit of work advances the simulation clock and
drains the storage capacitor, and if the capacitor crosses the brown-out
threshold mid-work the device raises :class:`PowerFailure` — the
simulator's rendition of an intermittent reboot.

A reboot (:meth:`TargetDevice.reboot`) does exactly what the paper says
a power failure does: clears volatile state (register file, SRAM, GPIO,
peripheral queues), retains non-volatile state (FRAM), and transfers
control back to the program entry point.
"""

from __future__ import annotations

import math
import os
from typing import Callable

from repro.io.i2c import I2CBus
from repro.io.lines import DigitalLine
from repro.io.uart import Uart
from repro.mcu.adc import Adc, AdcChannelMux
from repro.mcu.assembler import Program
from repro.mcu.cpu import Cpu, Halted
from repro.mcu.gpio import GpioPort
from repro.mcu.memory import MemoryMap, make_msp430_memory_map
from repro.power.supply import PowerSystem
from repro.power.wisp import WispPowerConstants
from repro.sim import units
from repro.sim.kernel import Simulator


class PowerFailure(Exception):
    """The supply browned out while the device was doing work."""

    def __init__(self, message: str, vcap: float, at: float) -> None:
        super().__init__(message)
        self.vcap = vcap
        self.at = at


class ExecutionLimit(Exception):
    """The executor's simulated-time deadline expired mid-execution."""


def _blockcache_disabled() -> bool:
    """True when ``REPRO_NO_BLOCKCACHE=1`` (or any non-zero value) is set.

    One switch disables both halves of the PR-5 speedup — the CPU's
    block translation cache and the device's fast spend window — so a
    bisection can rule the whole mechanism in or out at once.
    """
    return os.environ.get("REPRO_NO_BLOCKCACHE", "") not in ("", "0")


def _superblock_disabled() -> bool:
    """True when ``REPRO_NO_SUPERBLOCK=1`` (or any non-zero value) is set.

    Disables only the third speed tier — superblock trace formation and
    dispatch, and with it the closed-form fast-forward span — while
    block translation and the per-spend fast path stay on.  This is the
    middle configuration the differential suite pins against both
    neighbours.
    """
    return os.environ.get("REPRO_NO_SUPERBLOCK", "") not in ("", "0")


def _deopt_forced() -> bool:
    """True when ``REPRO_FORCE_DEOPT=1`` (or any non-zero value) is set.

    Makes :meth:`TargetDevice.block_guard` refuse every block and trace,
    so dispatch single-steps everywhere while the translation caches
    stay warm — the forced-deopt leg of the bit-identity contract, and
    the cheapest way to prove a suspect behaviour is (or is not) a
    guard/dispatch artifact.
    """
    return os.environ.get("REPRO_FORCE_DEOPT", "") not in ("", "0")


class _SpendWindow:
    """Steady-state constants for the fast spend path of ``execute_cycles``.

    Valid while the supply's environment epoch, the simulator's
    fired-event counter, the GPIO load sum, and the probed source
    parameters are unchanged and the clock stays strictly before
    ``bound``.  ``segments`` memoizes the per-``cycles`` step constants
    ``(dt, exp_charge, leak_factor)`` — computed with exactly the
    expressions ``charge_step`` and ``step_leakage`` use, so replaying
    them is bit-identical to the slow path.
    """

    __slots__ = (
        "epoch", "fired", "gpio_load", "source", "src_has_enabled",
        "src_has_distance", "src_enabled", "src_distance", "voc", "rs",
        "net", "v_inf", "tau", "cap", "half_cap", "vmax", "floor",
        "bound", "leak_tau", "segments", "capacitor",
    )


class TargetDevice:
    """A WISP-class energy-harvesting target.

    Parameters
    ----------
    sim:
        Simulation kernel.
    power:
        The intermittent power system feeding the device.
    constants:
        Electrical constants (clock rate, currents); defaults to WISP 5.
    memory:
        Address space; defaults to the MSP430FR5969-flavoured map.
    marker_bits:
        Number of GPIO lines allocated to EDB code markers; supports
        ``2**marker_bits - 1`` distinct watchpoint identifiers (§4.1.3).
    """

    def __init__(
        self,
        sim: Simulator,
        power: PowerSystem,
        constants: WispPowerConstants | None = None,
        memory: MemoryMap | None = None,
        marker_bits: int = 4,
    ) -> None:
        self.sim = sim
        self.power = power
        self.constants = constants or WispPowerConstants()
        self.memory = memory or make_msp430_memory_map()
        # Hot-path constants, hoisted out of execute_cycles.  The static
        # current is the same left-to-right sum the inline expression
        # performed, so downstream float arithmetic is unchanged.
        self._cycle_time = self.constants.cycle_time
        self._static_current = (
            self.constants.active_current + self.constants.system_current
        )

        self.gpio = GpioPort(sim)
        self.gpio.add_pin("led", load_current=self.constants.led_current)
        self.adc = Adc(
            reference_voltage=3.3, noise_sigma_v=0.5 * units.MV, rng=sim.rng,
            stream="target-adc",
        )
        self.adc_mux = AdcChannelMux(self.adc)
        self.adc_mux.add_channel("vcap", lambda: self.power.vcap)

        self.uart = Uart(sim, spend=self.spend_time, name="uart")
        self.debug_uart = Uart(sim, spend=self.spend_time, name="debug_uart")
        self.i2c = I2CBus(sim, spend=self.spend_time)

        if marker_bits < 1:
            raise ValueError("need at least one code-marker line")
        self.marker_lines = [
            DigitalLine(sim, f"code_marker_{i}") for i in range(marker_bits)
        ]
        self.debug_signal = DigitalLine(sim, "debug_signal")
        self.on_code_marker: list[Callable[[int], None]] = []

        self.cpu = Cpu(self.memory, spend=self.execute_cycles)
        self.cpu.on_mark = self._cpu_mark
        self._program: Program | None = None

        self.cycles_executed = 0
        self.reboot_count = 0
        self.energy_consumed = 0.0
        self._stop_after: float | None = None  # executor deadline (sim time)
        # Fast spend window (see execute_cycles).  None when the block
        # cache and spend batching are disabled via REPRO_NO_BLOCKCACHE.
        self._fast_spend_enabled = not _blockcache_disabled()
        self._spend_window: _SpendWindow | None = None
        self.cpu.block_cache_enabled = self._fast_spend_enabled
        self.cpu.block_guard = self.block_guard
        self.cpu.trace_tier_enabled = (
            self._fast_spend_enabled and not _superblock_disabled()
        )
        self.cpu.trace_guard = self.trace_guard
        self.cpu.span_end = self._span_end
        # REPRO_FORCE_DEOPT=1 pins this True: every block/trace guard
        # refuses and dispatch single-steps with warm caches.
        self.force_deopt = _deopt_forced()
        # Closed-form fast-forward state + instrumentation: worst-case
        # cycles remaining in the currently open span, spans opened by
        # trace_guard, and spends committed inside spans.
        self._span_cycles = 0
        self.ff_spans = 0
        self.ff_spends = 0
        # Observers of power-failure resets (fault injectors re-arm
        # their per-boot schedules here; recorders log boot boundaries).
        self.on_reboot: list[Callable[[int], None]] = []
        # Hooks run after each unit of work completes (an attached
        # debugger services pending energy breakpoints here, mimicking
        # its interrupt line).  Guarded against re-entrancy.
        self.post_work_hooks: list[Callable[[], None]] = []
        self._in_hook = False

    # -- work -> time + energy ------------------------------------------------
    @property
    def max_marker_id(self) -> int:
        """Largest encodable watchpoint identifier (``2^n - 1``)."""
        return (1 << len(self.marker_lines)) - 1

    @property
    def stop_after(self) -> float | None:
        """Executor deadline in simulated seconds (``None`` = unlimited)."""
        return self._stop_after

    @stop_after.setter
    def stop_after(self, value: float | None) -> None:
        # Every external intervention point in the codebase that rewinds
        # or re-targets execution (executor run boundaries, snapshot
        # restore, the intermittence emulator's cycle setup) sets the
        # deadline — dropping the spend window here makes those
        # boundaries cache-coherent for free.  Rebuilding costs one
        # source probe on the next unit of work.
        self._stop_after = value
        self._spend_window = None
        self._span_cycles = 0

    def invalidate_energy_window(self) -> None:
        """Drop the cached fast-spend window (rebuilt on next work)."""
        self._spend_window = None
        self._span_cycles = 0

    def _check_power(self) -> None:
        if not self.power.is_on:
            raise PowerFailure(
                f"brown-out at {self.sim.now * 1e3:.3f} ms "
                f"(Vcap = {self.power.vcap:.3f} V)",
                vcap=self.power.vcap,
                at=self.sim.now,
            )

    def execute_cycles(self, cycles: int, extra_current: float = 0.0) -> None:
        """Burn ``cycles`` of CPU time against the supply.

        Raises :class:`PowerFailure` if the supply browns out during or
        before the work.

        The steady-state fast path below replays the slow path's exact
        per-step arithmetic (same expressions, same operand order, same
        clamping — the discipline ``_charge_fast_forward`` established)
        from memoized constants, valid only inside a window where
        nothing can observe or perturb the trajectory: no scheduled
        event due, no source condition change (``hold_until``), no
        comparator transition (the committed voltage stays at or above
        ``floor``).  Anything else falls through to the historical
        one-call-at-a-time path, which also (re)builds the window.
        """
        span = self._span_cycles
        if span:
            # Closed-form fast-forward: trace_guard proved — against the
            # trace's *worst-case* cycle total plus one cycle of rounding
            # slack — that every spend in the open span commits on the
            # fast path: no scheduled event fires, the deadline and the
            # window bound stay ahead, and the worst-case droop keeps the
            # comparator quiet.  That hoists the per-spend staleness,
            # queue, and deadline checks out of the loop; the arithmetic
            # below is the fast path's own, replayed per spend (see
            # :func:`repro.power.capacitor.closed_form_step` for the
            # pinned reference form).  The ``v > 0`` and ``floor`` checks
            # stay per-spend because a memory-write observer (the
            # commit-boundary fault injector) can still force a brown-out
            # mid-trace, and that must land on the exact instruction.
            fw = self._spend_window
            if fw is not None and extra_current == 0.0 and 0 < cycles <= span:
                try:
                    dt, exp_charge, leak_factor = fw.segments[cycles]
                except KeyError:
                    dt = cycles * self._cycle_time
                    seg = (
                        dt,
                        math.exp(-dt / fw.tau),
                        math.exp(-dt / fw.leak_tau)
                        if fw.leak_tau is not None
                        else None,
                    )
                    if len(fw.segments) >= 256:
                        fw.segments.clear()
                    fw.segments[cycles] = seg
                    dt, exp_charge, leak_factor = seg
                capacitor = fw.capacitor
                v = capacitor._voltage
                if v > 0.0:
                    if fw.voc > v:
                        new_v = fw.v_inf + (v - fw.v_inf) * exp_charge
                    else:
                        new_v = v - fw.net * dt / fw.cap
                    if new_v < 0.0:
                        v1 = 0.0
                    elif new_v > fw.vmax:
                        v1 = fw.vmax
                    else:
                        v1 = new_v
                    if leak_factor is not None and v1 > 0.0:
                        v1 = v1 * leak_factor
                        if v1 < 0.0:
                            v1 = 0.0
                        elif v1 > fw.vmax:
                            v1 = fw.vmax
                    if v1 >= fw.floor:
                        sim = self.sim
                        sim._now = sim._now + dt
                        capacitor._voltage = v1
                        self._span_cycles = span - cycles
                        self.cycles_executed += cycles
                        half_cap = fw.half_cap
                        drained = half_cap * v * v - half_cap * v1 * v1
                        if drained > 0.0:
                            self.energy_consumed += drained
                        self.ff_spends += 1
                        return
            # A span assumption broke (a forced brown-out dropped the
            # rail under the floor, or an untracked spend shape slipped
            # in): close the span and fall through — the regular paths
            # re-derive everything and raise exactly where
            # single-stepping would.
            self._span_cycles = 0
        fw = self._spend_window
        if fw is not None and extra_current == 0.0 and cycles > 0:
            power = self.power
            sim = self.sim
            source = fw.source
            if not (
                fw.epoch == power._env_epoch
                and fw.fired == sim._fired
                # Presence flags captured at build time: the harvester
                # classes declare enabled/distance_m in __init__, so
                # attribute *presence* is a property of the source's
                # type, not of runtime state — direct loads beat the
                # defaulted getattr probes measurably here.
                and (
                    not fw.src_has_enabled
                    or source.enabled == fw.src_enabled
                )
                and (
                    not fw.src_has_distance
                    or source.distance_m == fw.src_distance
                )
            ):
                # The cached constants went stale (an env bump, a fired
                # event): rebuild instead of paying a full slow step.
                # The fast path only ever replays the *current*
                # constants, so committing from a just-rebuilt window is
                # bit-identical to the slow step that would otherwise
                # have rebuilt it afterwards.
                fw = self._build_spend_window()
                self._spend_window = fw
            elif fw.gpio_load != self.gpio._load_current_cache:
                # A GPIO edge invalidated the load cache (an edge sets
                # it to None).  Recompute: most heartbeat pins carry no
                # load, so the sum usually comes back unchanged; when it
                # did change, only the net-load constants shift —
                # everything probed from the supply (voc/rs, constant
                # until ``bound`` by the hold-window contract, and
                # nothing commits past ``bound``; floor; the tau-derived
                # exponentials in ``segments``) is still exact.
                gpio_load = self.gpio.total_load_current()
                if gpio_load != fw.gpio_load:
                    current = self._static_current + gpio_load
                    net = (
                        power.regulator.input_current(1.0, current)
                        - power._injected_current
                    )
                    fw.gpio_load = gpio_load
                    fw.net = net
                    fw.v_inf = fw.voc - net * fw.rs
            if fw is not None:
                stop = self._stop_after
                if stop is not None and sim._now >= stop:
                    raise ExecutionLimit(f"deadline {stop:.6f} s reached")
                try:
                    dt, exp_charge, leak_factor = fw.segments[cycles]
                except KeyError:
                    dt = cycles * self._cycle_time
                    seg = (
                        dt,
                        math.exp(-dt / fw.tau),
                        math.exp(-dt / fw.leak_tau)
                        if fw.leak_tau is not None
                        else None,
                    )
                    if len(fw.segments) >= 256:
                        fw.segments.clear()
                    fw.segments[cycles] = seg
                    dt, exp_charge, leak_factor = seg
                t1 = sim._now + dt
                if t1 < fw.bound:
                    queue = sim._queue
                    if not queue or queue[0].time > t1:
                        capacitor = power.capacitor
                        v = capacitor._voltage
                        if v > 0.0:
                            if fw.voc > v:
                                new_v = fw.v_inf + (v - fw.v_inf) * exp_charge
                            else:
                                new_v = v - fw.net * dt / fw.cap
                            # Branch-chain clamp: bit-identical to
                            # min(max(new_v, 0.0), vmax) including the
                            # NaN- and signed-zero-propagation corners.
                            if new_v < 0.0:
                                v1 = 0.0
                            elif new_v > fw.vmax:
                                v1 = fw.vmax
                            else:
                                v1 = new_v
                            if leak_factor is not None and v1 > 0.0:
                                v1 = v1 * leak_factor
                                if v1 < 0.0:
                                    v1 = 0.0
                                elif v1 > fw.vmax:
                                    v1 = fw.vmax
                            if v1 >= fw.floor:
                                sim._now = t1
                                capacitor._voltage = v1
                                self.cycles_executed += cycles
                                drained = (
                                    0.5 * fw.cap * v * v
                                    - 0.5 * fw.cap * v1 * v1
                                )
                                if drained > 0.0:
                                    self.energy_consumed += drained
                                if self.post_work_hooks and not self._in_hook:
                                    self._in_hook = True
                                    try:
                                        for hook in self.post_work_hooks:
                                            hook()
                                    finally:
                                        self._in_hook = False
                                return
        self._execute_cycles_slow(cycles, extra_current)

    def _execute_cycles_slow(self, cycles: int, extra_current: float) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative (got {cycles})")
        if self._stop_after is not None and self.sim.now >= self._stop_after:
            raise ExecutionLimit(f"deadline {self._stop_after:.6f} s reached")
        self._check_power()
        dt = cycles * self._cycle_time
        current = (
            self._static_current
            + self.gpio.total_load_current()
            + extra_current
        )
        # Inline of capacitor.energy (0.5 * C * V * V, the exact
        # cap_energy expression): this runs twice per unit of work and
        # the property + helper call overhead dominates it.
        capacitor = self.power.capacitor
        v = capacitor._voltage
        energy_before = 0.5 * capacitor.capacitance * v * v
        self.sim.advance(dt)
        powered = self.power.step(dt, current)
        self.cycles_executed += cycles
        v = capacitor._voltage
        drained = energy_before - 0.5 * capacitor.capacitance * v * v
        if drained > 0.0:
            self.energy_consumed += drained
        if not powered:
            raise PowerFailure(
                f"brown-out at {self.sim.now * 1e3:.3f} ms "
                f"(Vcap = {self.power.vcap:.3f} V)",
                vcap=self.power.vcap,
                at=self.sim.now,
            )
        self._refresh_spend_window()
        if self.post_work_hooks and not self._in_hook:
            self._in_hook = True
            try:
                for hook in self.post_work_hooks:
                    hook()
            finally:
                self._in_hook = False

    def _spend_window_live(self, fw: _SpendWindow) -> bool:
        """Whether an existing window is still trustworthy right now."""
        sim = self.sim
        power = self.power
        source = fw.source
        return (
            fw.epoch == power._env_epoch
            and fw.fired == sim._fired
            # total_load_current() rather than the raw cache: a GPIO
            # edge nulls the cache even when the recomputed sum is
            # unchanged (heartbeat pins carry no load), and an
            # unchanged sum keeps every constant in the window exact.
            and fw.gpio_load == self.gpio.total_load_current()
            and (not fw.src_has_enabled or source.enabled == fw.src_enabled)
            and (
                not fw.src_has_distance
                or source.distance_m == fw.src_distance
            )
            and sim._now < fw.bound
        )

    def _refresh_spend_window(self) -> None:
        """(Re)build the fast spend window after a successful slow step.

        Kept when still live — a fast-path bail on a transient condition
        (an imminent event, low energy) does not mean the constants
        changed.
        """
        if not self._fast_spend_enabled:
            return
        fw = self._spend_window
        if fw is not None and self._spend_window_live(fw):
            return
        self._spend_window = self._build_spend_window()

    def _build_spend_window(self) -> _SpendWindow | None:
        power = self.power
        probe = power.steady_window()
        if probe is None:
            return None
        voc, rs, bound, floor = probe
        gpio_load = self.gpio.total_load_current()
        # The slow path computes ((static + gpio) + extra); the fast
        # path only engages for extra == 0.0, and x + 0.0 == x bitwise
        # for the positive current sums involved — so this is the same
        # float the slow path feeds the regulator.
        current = self._static_current + gpio_load
        # input_current is voltage-independent above cut-off; probe it
        # with a nominal live rail (the fast path separately requires
        # v > 0 before using the constant).
        net = (
            power.regulator.input_current(1.0, current)
            - power._injected_current
        )
        capacitor = power.capacitor
        cap = capacitor.capacitance
        source = power._tether if power._tether is not None else power.source
        fw = _SpendWindow()
        fw.epoch = power._env_epoch
        fw.fired = self.sim._fired
        fw.gpio_load = gpio_load
        fw.source = source
        fw.src_has_enabled = hasattr(source, "enabled")
        fw.src_has_distance = hasattr(source, "distance_m")
        fw.src_enabled = source.enabled if fw.src_has_enabled else True
        fw.src_distance = (
            source.distance_m if fw.src_has_distance else None
        )
        fw.voc = voc
        fw.rs = rs
        fw.net = net
        fw.tau = rs * cap
        fw.v_inf = voc - net * rs
        fw.cap = cap
        # 0.5 * cap is exact (power-of-two multiply), so the span path's
        # ``half_cap * v * v`` is bitwise ``0.5 * cap * v * v``.
        fw.half_cap = 0.5 * cap
        fw.capacitor = capacitor
        fw.vmax = capacitor.max_voltage
        fw.floor = floor
        fw.bound = bound
        leak_r = capacitor.leakage_resistance
        fw.leak_tau = leak_r * cap if leak_r is not None else None
        fw.segments = {}
        return fw

    def block_guard(self, worst_cycles: int) -> bool:
        """Whether a translated block of ``worst_cycles`` may run now.

        Conservative by design — the CPU deoptimizes to per-instruction
        stepping when this returns ``False``: near brown-out (the
        capacitor is within the block's worst-case droop of the
        threshold), when a scheduled event falls inside the block's
        cycle span, or when no steady window exists at all.  Correctness
        never depends on this guard: every thunk still pays its spend
        through :meth:`execute_cycles`, which re-checks everything —
        the guard only keeps deoptimization at observation points
        honest and cheap.
        """
        if self.force_deopt:
            return False
        fw = self._spend_window
        if fw is None or not self._spend_window_live(fw):
            return False
        sim = self.sim
        dt = worst_cycles * self._cycle_time
        t1 = sim._now + dt
        if not t1 < fw.bound:
            return False
        queue = sim._queue
        if queue and queue[0].time <= t1:
            return False
        if self._stop_after is not None and t1 >= self._stop_after:
            return False
        v = self.power.capacitor._voltage
        if not v > 0.0:
            return False
        if fw.floor == -math.inf:
            return True
        # Worst-case voltage droop over the whole block: the net load
        # cannot pull the capacitor down faster than net/C in either
        # charge_step branch, plus leakage at the clamp voltage.
        drop = 2.0 * abs(fw.net) * dt / fw.cap
        if fw.leak_tau is not None:
            drop += fw.vmax * dt / fw.leak_tau
        return v - drop >= fw.floor

    def trace_guard(self, worst_cycles: int) -> int:
        """Admission control for a superblock trace of ``worst_cycles``.

        Returns 0 to refuse the trace (the CPU falls back to block
        dispatch), 1 to admit it on the ordinary per-spend fast path,
        or 2 after opening a closed-form fast-forward span covering the
        trace's worst case.  The span proof is :meth:`block_guard` with
        one extra cycle of slack: the span commits chained per-spend
        times whose accumulated float rounding is bounded far below one
        cycle time, so the slack guarantees that no per-spend bound,
        queue, or deadline check the span skips could have fired.
        Post-work hooks (energy breakpoints, fault injectors, run
        watchdogs) must observe every spend, so their presence keeps the
        trace on the per-spend path — mode 1 — rather than refusing it.
        """
        if not self.block_guard(worst_cycles + 1):
            return 0
        if self.post_work_hooks or self._span_cycles:
            return 1
        self._span_cycles = worst_cycles
        self.ff_spans += 1
        return 2

    def _span_end(self) -> None:
        """Close the fast-forward span (trace finished or unwound)."""
        self._span_cycles = 0

    def spend_time(self, seconds: float, extra_current: float = 0.0) -> None:
        """Burn wall-clock work (bus transfers) against the supply."""
        cycles = max(1, round(seconds * self.constants.clock_hz))
        self.execute_cycles(cycles, extra_current=extra_current)

    def sleep(self, seconds: float) -> None:
        """Low-power sleep: time passes at the sleep current.

        Sleep is work like any other: the energy drawn at the sleep
        current lands in :attr:`energy_consumed`, and the post-work
        hooks run afterwards — an attached debugger's energy
        breakpoints must fire whether the device burned the energy
        computing or dozing.
        """
        if self.stop_after is not None and self.sim.now >= self.stop_after:
            raise ExecutionLimit(f"deadline {self.stop_after:.6f} s reached")
        self._check_power()
        capacitor = self.power.capacitor
        v = capacitor._voltage
        energy_before = 0.5 * capacitor.capacitance * v * v
        self.sim.advance(seconds)
        powered = self.power.step(seconds, self.constants.sleep_current)
        v = capacitor._voltage
        drained = energy_before - 0.5 * capacitor.capacitance * v * v
        if drained > 0.0:
            self.energy_consumed += drained
        if not powered:
            raise PowerFailure(
                f"brown-out during sleep at {self.sim.now * 1e3:.3f} ms",
                vcap=self.power.vcap,
                at=self.sim.now,
            )
        if self.post_work_hooks and not self._in_hook:
            self._in_hook = True
            try:
                for hook in self.post_work_hooks:
                    hook()
            finally:
                self._in_hook = False

    # -- code markers (EDB program-event monitoring) ----------------------------
    def code_marker(self, marker_id: int) -> None:
        """Pulse the code-marker GPIO lines to encode ``marker_id``.

        This is the near-free program-event signalling of §4.1.3: the
        target holds the lines for a single cycle.  Identifier 0 is
        reserved (it is indistinguishable from "no marker").
        """
        if not 1 <= marker_id <= self.max_marker_id:
            raise ValueError(
                f"marker id {marker_id} out of range 1..{self.max_marker_id}"
            )
        # The release must survive a brown-out inside the one-cycle
        # pulse: without the finally, a PowerFailure raised by the spend
        # leaves the lines driven high until the next reboot, and the
        # debugger would read a phantom marker while the target is dark.
        try:
            for bit, line in enumerate(self.marker_lines):
                line.drive(bool(marker_id & (1 << bit)))
            self.execute_cycles(1)
            for hook in self.on_code_marker:
                hook(marker_id)
        finally:
            for line in self.marker_lines:
                line.drive(False)

    def _cpu_mark(self, marker_id: int) -> None:
        self.code_marker(marker_id)

    # -- reboot / program control -------------------------------------------------
    def reboot(self) -> None:
        """Power-failure reset: clear volatile state, keep FRAM."""
        self.memory.clear_volatile()
        self.gpio.reset()
        self.uart.reset()
        self.debug_uart.reset()
        for line in self.marker_lines:
            line.drive(False)
        self.debug_signal.drive(False)
        if self._program is not None:
            self.cpu.reset(self._program.entry)
        else:
            self.cpu.reset(0)
        self.reboot_count += 1
        self.sim.trace.record("target.reboot", self.reboot_count)
        for hook in self.on_reboot:
            hook(self.reboot_count)

    def load_program(self, program: Program) -> None:
        """Write an assembled image into FRAM and point the CPU at it."""
        self.memory.write_bytes(program.origin, program.to_bytes())
        self._program = program
        self.cpu.reset(program.entry)

    @property
    def program(self) -> Program | None:
        """The currently loaded ISA program image, if any."""
        return self._program

    def run_isa(self, max_instructions: int = 1_000_000) -> str:
        """Run the loaded ISA program until HALT, power failure, or limit.

        Returns ``"halted"``, or raises :class:`PowerFailure` — callers
        that want intermittent semantics use the executor in
        :mod:`repro.runtime.executor`, which catches the failure,
        charges, reboots, and retries.
        """
        if self._program is None:
            raise RuntimeError("no program loaded")
        budget = max_instructions
        step_block = self.cpu.step_block
        while budget > 0:
            try:
                budget -= step_block(budget)
            except Halted:
                return "halted"
        raise RuntimeError(f"exceeded {max_instructions} instructions")

    # -- self-measurement ------------------------------------------------------------
    def measure_own_vcap(self) -> float:
        """The target measuring its *own* storage voltage via its ADC.

        Costs ~160 cycles (ADC setup + conversion), which — as §4.1
        notes — itself perturbs the energy state being measured.
        """
        self.execute_cycles(160)
        return self.adc_mux.read("vcap")
