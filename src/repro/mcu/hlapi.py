"""The high-level program model for intermittent applications.

The paper's case-study applications are C programs on the WISP.  Here
they are Python classes written against :class:`DeviceAPI` — a C-like
device interface where **every operation has an explicit cycle cost**
and therefore drains the capacitor, so a power failure can interrupt
the program between any two operations.

Rules for writing intermittence-faithful programs against this API:

- *All* persistent program state lives in target memory (``load``/
  ``store`` against FRAM addresses from :meth:`DeviceAPI.nv_var`, or
  the structured containers in :mod:`repro.runtime.nonvolatile`).
- Python locals model *registers/stack*: they vanish on reboot because
  the executor re-invokes ``main()`` from the top.
- Debug instrumentation goes through :attr:`DeviceAPI.edb` (the
  target-side libEDB), which is ``None`` in a release build — apps use
  the ``edb_*`` convenience wrappers, which compile to nothing when no
  debugger is linked in.

A program is any object with a ``main(api)`` method; optional
``flash(api)`` initialises FRAM once, playing the role of programming
the device over JTAG before deployment.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.mcu.device import TargetDevice
from repro.mcu.memory import FRAM_BASE, FRAM_SIZE, MemoryFault, SRAM_BASE, SRAM_SIZE


@runtime_checkable
class IntermittentProgram(Protocol):
    """Structural type of an application runnable by the executor."""

    name: str

    def main(self, api: "DeviceAPI") -> None:
        """One powered execution attempt, entered after every reboot."""
        ...


class ProgramComplete(Exception):
    """Raised by a program to signal that its workload is finished.

    Real embedded main loops never return; test programs raise this to
    tell the executor that the experiment's exit criterion was met.
    """


# Cycle costs of the C-like primitives.  These are in the right
# proportions for an MSP430 at 4 MHz: single-cycle SRAM, multi-cycle
# FRAM (wait states), a few cycles of address arithmetic per access.
COST_COMPUTE = 1
COST_LOAD = 4
COST_STORE = 4
COST_GPIO = 2
COST_ADC = 160
COST_BRANCH = 2


class DeviceAPI:
    """C-like device interface with explicit per-operation costs.

    Parameters
    ----------
    device:
        The simulated target.
    edb:
        The target-side libEDB instance, or ``None`` for a release
        build with no debugger attached.
    """

    def __init__(self, device: TargetDevice, edb: Any = None) -> None:
        self.device = device
        self.edb = edb
        self._nv_cursor = FRAM_BASE
        self._nv_vars: dict[str, tuple[int, int]] = {}
        self._sram_cursor = SRAM_BASE
        self._sram_vars: dict[str, tuple[int, int]] = {}
        # Hot-path handles: compute/branch/load/store run once per
        # high-level operation, so the attribute chain is worth hoisting.
        self._execute_cycles = device.execute_cycles
        self._region_at = device.memory.region_at
        # Inline last-region cache for the word accessors.  Regions are
        # fixed for the map's lifetime, so a cached hit only needs the
        # bounds check; straddles and misses fall through to the map's
        # canonical lookup (which also raises the canonical faults).
        self._last_region = None

    # -- static allocation (the "linker") -----------------------------------
    def nv_var(self, name: str, size: int = 2) -> int:
        """Address of a non-volatile static variable, allocating on first use.

        Allocation is deterministic (first-come order), mirroring a
        linker placing ``__NV`` statics in FRAM.  Repeated calls with
        the same name return the same address — including across
        reboots, because the allocator mirrors the static layout rather
        than runtime state.
        """
        size = size + (size % 2)  # keep word alignment
        if name in self._nv_vars:
            address, existing = self._nv_vars[name]
            if existing != size:
                raise ValueError(
                    f"nv_var {name!r} re-declared with size {size} != {existing}"
                )
            return address
        address = self._nv_cursor
        if address + size > FRAM_BASE + FRAM_SIZE:
            raise MemoryError("FRAM statics exhausted")
        self._nv_vars[name] = (address, size)
        self._nv_cursor += size
        return address

    def sram_var(self, name: str, size: int = 2) -> int:
        """Address of a volatile static variable in SRAM.

        Like :meth:`nv_var`, the address is a property of the *name*
        (the linker's layout), not of the call — re-entering ``main``
        after a reboot sees the same address, with zeroed contents.
        """
        if name in self._sram_vars:
            address, existing = self._sram_vars[name]
            if existing != size + (size % 2):
                raise ValueError(f"sram_var {name!r} re-declared with new size")
            return address
        size = size + (size % 2)
        address = self._sram_cursor
        if address + size > SRAM_BASE + SRAM_SIZE:
            raise MemoryError("SRAM statics exhausted")
        self._sram_vars[name] = (address, size)
        self._sram_cursor += size
        return address

    # -- computation ----------------------------------------------------------
    def compute(self, cycles: int = COST_COMPUTE) -> None:
        """Burn pure-computation cycles (ALU work, loop overhead)."""
        self._execute_cycles(cycles)

    def branch(self) -> None:
        """Cost of a conditional branch."""
        self._execute_cycles(COST_BRANCH)

    # -- memory ------------------------------------------------------------------
    def load_u16(self, address: int) -> int:
        """Load a word from target memory (cost depends on region)."""
        region = self._last_region
        if region is None or not (
            region.base <= address and address + 2 <= region.end
        ):
            region = self._region_at(address, 2)
            self._last_region = region
        self._execute_cycles(COST_LOAD + region.read_cycles)
        return region.read_u16(address)

    def store_u16(self, address: int, value: int) -> None:
        """Store a word to target memory (cost depends on region)."""
        memory = self.device.memory
        region = self._last_region
        if region is None or not (
            region.base <= address and address + 2 <= region.end
        ):
            region = self._region_at(address, 2)
            self._last_region = region
        self._execute_cycles(COST_STORE + region.write_cycles)
        # Write through the already-resolved region, but keep the map's
        # write notification: dirty-page tracking and commit-boundary
        # counting both hang off it.
        region.write_u16(address, value)
        memory._notify_write(address, 2)

    def load_bytes(self, address: int, count: int) -> bytes:
        """Bulk read (cost scales with length)."""
        region = self.device.memory.region_at(address, max(1, count))
        self.device.execute_cycles(COST_LOAD + region.read_cycles * max(1, count // 2))
        return region.read_bytes(address, count)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Bulk write (cost scales with length)."""
        count = max(1, len(data))
        memory = self.device.memory
        region = memory.region_at(address, count)
        self.device.execute_cycles(
            COST_STORE + region.write_cycles * max(1, count // 2)
        )
        region.write_bytes(address, data)
        memory._notify_write(address, len(data))

    def memset(self, address: int, value: int, count: int) -> None:
        """``memset``: the write that goes wild in the Figure 6 bug."""
        self.store_bytes(address, bytes([value & 0xFF] * count))

    # -- peripherals ----------------------------------------------------------------
    def gpio_write(self, pin: str, state: bool) -> None:
        """Drive a GPIO pin."""
        self.device.execute_cycles(COST_GPIO)
        self.device.gpio.write(pin, state)

    def gpio_toggle(self, pin: str) -> None:
        """Toggle a GPIO pin (the case studies' main-loop heartbeat)."""
        self.device.execute_cycles(COST_GPIO)
        self.device.gpio.toggle(pin)

    def led(self, on: bool) -> None:
        """Light the LED — a five-fold increase in supply draw (§2.2)."""
        self.gpio_write("led", on)

    def adc_read(self, channel: str) -> float:
        """Sample an ADC channel (expensive: ~160 cycles)."""
        self.device.execute_cycles(COST_ADC)
        return self.device.adc_mux.read(channel)

    def uart_print(self, text: str) -> None:
        """Blocking UART debug output — the costly path of Table 4."""
        self.device.uart.transmit(text.encode())

    def i2c_read(self, address: int, register: int, count: int = 1) -> bytes:
        """Read sensor registers over I2C."""
        return self.device.i2c.read(address, register, count)

    def i2c_write(self, address: int, register: int, data: bytes) -> None:
        """Write sensor registers over I2C."""
        return self.device.i2c.write(address, register, data)

    def sleep(self, seconds: float) -> None:
        """Duty-cycle sleep at the sleep current."""
        self.device.sleep(seconds)

    # -- libEDB convenience wrappers (compile to nothing when unlinked) --------
    def edb_watchpoint(self, marker_id: int) -> None:
        """``WATCHPOINT(id)`` — no-op in a release build."""
        if self.edb is not None:
            self.edb.watchpoint(marker_id)

    def edb_printf(self, text: str) -> None:
        """``EDB_PRINTF(...)`` — no-op in a release build."""
        if self.edb is not None:
            self.edb.printf(text)

    def edb_assert(self, condition: bool, message: str = "") -> None:
        """``ASSERT(expr)`` — intermittence-aware when EDB is attached.

        Without EDB the failure path is the conventional embedded one
        (§3.3.2's "post-mortem" dead end): a custom fault handler
        scribbles a tiny ad hoc core dump into non-volatile memory,
        spins until the energy supply dies, and on the next boot the
        device runs straight past the assertion.  Compare the scarce
        clues in :meth:`read_core_dump` with the full live session a
        keep-alive assert opens.
        """
        if self.edb is not None:
            self.edb.assert_(condition, message)
        elif not condition:
            self._write_core_dump()
            self.drain_until_brownout()

    # Core-dump slot layout: magic, fail count, Vcap (mV), time (ms).
    _CORE_DUMP_MAGIC = 0xDEAD

    def _write_core_dump(self) -> None:
        base = self.nv_var("edb.core_dump", 8)
        count_addr = base + 2
        previous = self.load_u16(count_addr)
        self.store_u16(base, self._CORE_DUMP_MAGIC)
        self.store_u16(count_addr, (previous + 1) & 0xFFFF)
        self.store_u16(base + 4, int(self.device.power.vcap * 1000) & 0xFFFF)
        self.store_u16(base + 6, int(self.device.sim.now * 1000) & 0xFFFF)

    def read_core_dump(self) -> dict[str, int] | None:
        """Host-side read of the ad hoc post-mortem record (uncosted).

        Returns ``None`` when no assert has ever failed.  This is all a
        conventional workflow has to reconstruct the failure from —
        "a post-mortem analysis is limited to scarce clues in a tiny ad
        hoc core dump" (§3.3.2).
        """
        base = self.nv_var("edb.core_dump", 8)
        memory = self.device.memory
        if memory.read_u16(base) != self._CORE_DUMP_MAGIC:
            return None
        return {
            "failures": memory.read_u16(base + 2),
            "vcap_mv": memory.read_u16(base + 4),
            "time_ms": memory.read_u16(base + 6),
        }

    def edb_energy_guard(self):
        """``ENERGY_GUARD { ... }`` as a context manager; no-op unlinked."""
        if self.edb is not None:
            return self.edb.energy_guard()
        import contextlib

        return contextlib.nullcontext()

    def edb_breakpoint(self, breakpoint_id: int) -> None:
        """``BREAKPOINT(id)`` — no-op in a release build."""
        if self.edb is not None:
            self.edb.code_breakpoint(breakpoint_id)

    # -- failure behaviours -----------------------------------------------------
    def drain_until_brownout(self) -> None:
        """Spin, consuming energy, until the supply fails.

        Models both a conventional assert's fault-handler dead end and
        the externally observable "hang" after memory corruption.
        Always raises :class:`~repro.mcu.device.PowerFailure`.
        """
        while True:
            self.device.execute_cycles(64)
