"""A compact MSP430-inspired 16-bit instruction set.

The ISA exists so that the checkpointing runtime has real volatile
execution context to snapshot (a register file, a status register, and
a stack), and so that program-event monitoring has a real program
counter to watch.  It is deliberately small — 16 registers, five
addressing modes, ~25 opcodes — but fully encoded: every instruction
assembles to 2-4 little-endian 16-bit words and decodes back (the
property-based tests round-trip this).

Register conventions (MSP430-style):

- ``R0`` is the program counter (PC),
- ``R1`` is the stack pointer (SP),
- ``R2`` is the status register (SR) holding the Z/N/C/V flags,
- ``R3``-``R15`` are general purpose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_REGISTERS = 16
PC, SP, SR = 0, 1, 2

# Status-register flag bits.
FLAG_C = 1 << 0
FLAG_Z = 1 << 1
FLAG_N = 1 << 2
FLAG_V = 1 << 8

WORD_MASK = 0xFFFF


class Op(enum.IntEnum):
    """Opcodes. Values are stable: they are part of the binary encoding."""

    NOP = 0x00
    MOV = 0x01
    ADD = 0x02
    SUB = 0x03
    CMP = 0x04
    AND = 0x05
    OR = 0x06
    XOR = 0x07
    PUSH = 0x10
    POP = 0x11
    CALL = 0x12
    RET = 0x13
    INC = 0x14
    DEC = 0x15
    SHL = 0x16  # logical shift left one bit (MSB -> carry)
    SHR = 0x17  # logical shift right one bit (LSB -> carry)
    SWPB = 0x18  # swap bytes
    INV = 0x19  # one's complement
    BIT = 0x1A  # AND setting flags only (like CMP for AND)
    JMP = 0x20
    JZ = 0x21
    JNZ = 0x22
    JC = 0x23
    JNC = 0x24
    JN = 0x25
    HALT = 0x30
    OUT = 0x31  # write src to a peripheral port
    IN = 0x32  # read a peripheral port into dst
    MARK = 0x33  # EDB watchpoint marker (code-marker GPIO pulse)


class Mode(enum.IntEnum):
    """Operand addressing modes."""

    NONE = 0x0  # operand absent
    REG = 0x1  # Rn
    IMM = 0x2  # #value          (extension word)
    ABS = 0x3  # &address        (extension word)
    IDX = 0x4  # offset(Rn)      (extension word)
    IND = 0x5  # @Rn


# Opcode -> (has_src, has_dst).  CMP/OUT treat "dst" as a second source.
OPERAND_SHAPE: dict[Op, tuple[bool, bool]] = {
    Op.NOP: (False, False),
    Op.MOV: (True, True),
    Op.ADD: (True, True),
    Op.SUB: (True, True),
    Op.CMP: (True, True),
    Op.AND: (True, True),
    Op.OR: (True, True),
    Op.XOR: (True, True),
    Op.PUSH: (True, False),
    Op.POP: (False, True),
    Op.CALL: (True, False),
    Op.RET: (False, False),
    Op.INC: (False, True),
    Op.DEC: (False, True),
    Op.SHL: (False, True),
    Op.SHR: (False, True),
    Op.SWPB: (False, True),
    Op.INV: (False, True),
    Op.BIT: (True, True),
    Op.JMP: (True, False),
    Op.JZ: (True, False),
    Op.JNZ: (True, False),
    Op.JC: (True, False),
    Op.JNC: (True, False),
    Op.JN: (True, False),
    Op.HALT: (False, False),
    Op.OUT: (True, True),  # OUT value, #port
    Op.IN: (True, True),  # IN #port, dst
    Op.MARK: (True, False),
}

JUMPS = {Op.JMP, Op.JZ, Op.JNZ, Op.JC, Op.JNC, Op.JN}

# Modes that carry an extension word in the encoding.
_EXTENDED_MODES = {Mode.IMM, Mode.ABS, Mode.IDX}


@dataclass(frozen=True)
class Operand:
    """One operand: an addressing mode plus its register and/or value."""

    mode: Mode
    reg: int = 0
    value: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.reg < NUM_REGISTERS:
            raise ValueError(f"register out of range: r{self.reg}")
        if self.mode in (Mode.NONE, Mode.REG, Mode.IND) and self.value:
            raise ValueError(f"mode {self.mode.name} takes no value")

    @property
    def needs_extension(self) -> bool:
        """Whether the operand occupies an extension word when encoded."""
        return self.mode in _EXTENDED_MODES

    def render(self) -> str:
        """Assembly-syntax rendering of the operand."""
        if self.mode is Mode.NONE:
            return ""
        if self.mode is Mode.REG:
            return f"r{self.reg}"
        if self.mode is Mode.IMM:
            return f"#{self.value}"
        if self.mode is Mode.ABS:
            return f"&0x{self.value & WORD_MASK:04X}"
        if self.mode is Mode.IDX:
            return f"{self.value}(r{self.reg})"
        return f"@r{self.reg}"


NO_OPERAND = Operand(Mode.NONE)


def reg(n: int) -> Operand:
    """Register-direct operand ``Rn``."""
    return Operand(Mode.REG, reg=n)


def imm(value: int) -> Operand:
    """Immediate operand ``#value``."""
    return Operand(Mode.IMM, value=value & WORD_MASK)


def absolute(address: int) -> Operand:
    """Absolute-address operand ``&address``."""
    return Operand(Mode.ABS, value=address & WORD_MASK)


def indexed(offset: int, base_reg: int) -> Operand:
    """Indexed operand ``offset(Rn)``."""
    return Operand(Mode.IDX, reg=base_reg, value=offset & WORD_MASK)


def indirect(base_reg: int) -> Operand:
    """Register-indirect operand ``@Rn``."""
    return Operand(Mode.IND, reg=base_reg)


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction: opcode plus source and destination operands."""

    op: Op
    src: Operand = NO_OPERAND
    dst: Operand = NO_OPERAND

    def __post_init__(self) -> None:
        has_src, has_dst = OPERAND_SHAPE[self.op]
        if has_src != (self.src.mode is not Mode.NONE):
            raise ValueError(f"{self.op.name}: bad source operand shape")
        if has_dst != (self.dst.mode is not Mode.NONE):
            raise ValueError(f"{self.op.name}: bad destination operand shape")
        if has_dst and self.dst.mode is Mode.IMM and self.op is not Op.OUT:
            raise ValueError(f"{self.op.name}: destination cannot be immediate")

    # -- encoding ---------------------------------------------------------
    def encode(self) -> list[int]:
        """Encode to little-endian 16-bit words.

        Layout: ``word0 = opcode<<8 | src_mode<<4 | dst_mode``,
        ``word1 = src_reg<<8 | dst_reg``, then one extension word per
        extended operand (src first).
        """
        words = [
            ((int(self.op) & 0xFF) << 8)
            | ((int(self.src.mode) & 0xF) << 4)
            | (int(self.dst.mode) & 0xF),
            ((self.src.reg & 0xFF) << 8) | (self.dst.reg & 0xFF),
        ]
        if self.src.needs_extension:
            words.append(self.src.value & WORD_MASK)
        if self.dst.needs_extension:
            words.append(self.dst.value & WORD_MASK)
        return words

    @property
    def size_words(self) -> int:
        """Encoded size in 16-bit words."""
        return (
            2
            + (1 if self.src.needs_extension else 0)
            + (1 if self.dst.needs_extension else 0)
        )

    @property
    def size_bytes(self) -> int:
        """Encoded size in bytes."""
        return 2 * self.size_words

    def cycles(self) -> int:
        """Base cycle cost (operand memory-access costs are added by the CPU).

        1 cycle to execute, +1 per extension word fetched, +1 per
        memory-touching operand, +2 for stack-manipulating ops.
        """
        cost = 1
        for operand in (self.src, self.dst):
            if operand.needs_extension:
                cost += 1
            if operand.mode in (Mode.ABS, Mode.IDX, Mode.IND):
                cost += 1
        if self.op in (Op.PUSH, Op.POP, Op.CALL, Op.RET):
            cost += 2
        return cost

    def render(self) -> str:
        """Assembly-syntax rendering of the instruction."""
        parts = [o.render() for o in (self.src, self.dst) if o.mode is not Mode.NONE]
        if not parts:
            return self.op.name.lower()
        return f"{self.op.name.lower()} {', '.join(parts)}"


class DecodeError(Exception):
    """The word stream is not a valid instruction encoding."""


def decode(fetch, address: int) -> tuple[Instruction, int]:
    """Decode one instruction.

    Parameters
    ----------
    fetch:
        Callable ``fetch(address) -> int`` returning the 16-bit word at
        a byte address.
    address:
        Byte address of the instruction's first word.

    Returns
    -------
    ``(instruction, size_bytes)``.
    """
    word0 = fetch(address)
    opcode = (word0 >> 8) & 0xFF
    try:
        op = Op(opcode)
    except ValueError:
        raise DecodeError(
            f"invalid opcode 0x{opcode:02X} at 0x{address:04X}"
        ) from None
    try:
        src_mode = Mode((word0 >> 4) & 0xF)
        dst_mode = Mode(word0 & 0xF)
    except ValueError:
        raise DecodeError(
            f"invalid addressing mode in word 0x{word0:04X} at 0x{address:04X}"
        ) from None
    word1 = fetch(address + 2)
    src_reg = (word1 >> 8) & 0xFF
    dst_reg = word1 & 0xFF
    if src_reg >= NUM_REGISTERS or dst_reg >= NUM_REGISTERS:
        raise DecodeError(f"register number out of range at 0x{address:04X}")
    offset = address + 4
    src_value = dst_value = 0
    if src_mode in _EXTENDED_MODES:
        src_value = fetch(offset)
        offset += 2
    if dst_mode in _EXTENDED_MODES:
        dst_value = fetch(offset)
        offset += 2
    try:
        instruction = Instruction(
            op=op,
            src=Operand(src_mode, reg=src_reg, value=src_value),
            dst=Operand(dst_mode, reg=dst_reg, value=dst_value),
        )
    except ValueError as exc:
        raise DecodeError(f"malformed instruction at 0x{address:04X}: {exc}") from exc
    return instruction, offset - address


# -- worst-case cycle bounds -------------------------------------------------
#
# Memory regions charge at most this many cycles per 16-bit access (FRAM
# read/write cost 3, SRAM 1).  Only worst-case reasoning uses it — exact
# accounting always asks the touched region.
_MAX_ACCESS_CYCLES = 3

_RMW_OPS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.INC,
        Op.DEC,
        Op.SHL,
        Op.SHR,
        Op.SWPB,
        Op.INV,
    }
)
_MEM_MODES = frozenset({Mode.ABS, Mode.IDX, Mode.IND})
_STACK_OPS = frozenset({Op.PUSH, Op.POP, Op.CALL, Op.RET})


def worst_case_cycles(ins: Instruction) -> int:
    """Upper bound on the cycles one execution of ``ins`` can spend.

    ``Instruction.cycles()`` is the base cost the CPU charges up front;
    memory-mode operands and stack traffic additionally charge the
    touched region's access cycles at execution time.  This bounds the
    total assuming every access hits the slowest region.  The bound
    feeds the block translation cache's energy guard, which is advisory
    only — an over-estimate merely costs a harmless deoptimization.
    """
    accesses = 0
    if ins.src.mode in _MEM_MODES:
        accesses += 1
    if ins.dst.mode in _MEM_MODES:
        # Read-modify-write destinations pay a read and a write.
        accesses += 2 if ins.op in _RMW_OPS else 1
    if ins.op in _STACK_OPS:
        accesses += 1
    return ins.cycles() + _MAX_ACCESS_CYCLES * accesses
