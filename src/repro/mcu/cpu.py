"""The interpreting CPU core for the :mod:`repro.mcu.isa` instruction set.

The core owns the register file (volatile!) and executes instructions
out of the target's memory map.  Every instruction reports its cycle
cost to a ``spend`` callback supplied by the device; the device converts
cycles into simulated time and energy drawn from the capacitor — which
is how a power failure can interrupt the program between any two
instructions.
"""

from __future__ import annotations

from typing import Callable

from repro.mcu.isa import (
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    JUMPS,
    Instruction,
    Mode,
    NUM_REGISTERS,
    Op,
    PC,
    SP,
    SR,
    WORD_MASK,
    decode,
)
from repro.mcu.memory import MemoryMap, SRAM_BASE, SRAM_SIZE


class Halted(Exception):
    """The program executed a HALT instruction."""


class CpuError(Exception):
    """An architecturally invalid operation (e.g. unknown port)."""


def _signed(value: int) -> int:
    """Interpret a 16-bit word as a signed integer."""
    return value - 0x10000 if value & 0x8000 else value


class Cpu:
    """A 16-register interpreting core over a :class:`MemoryMap`.

    Parameters
    ----------
    memory:
        The target's address space (code lives in FRAM).
    spend:
        ``spend(cycles)`` — charge the given cycle count to the power
        system; may raise :class:`repro.mcu.device.PowerFailure`.
    """

    def __init__(
        self, memory: MemoryMap, spend: Callable[[int], None] | None = None
    ) -> None:
        self.memory = memory
        self.spend = spend or (lambda cycles: None)
        self.registers = [0] * NUM_REGISTERS
        self.ports_out: dict[int, Callable[[int], None]] = {}
        self.ports_in: dict[int, Callable[[], int]] = {}
        self.on_mark: Callable[[int], None] | None = None
        self.instructions_retired = 0
        self.halted = False
        # Decoded-instruction cache: PC -> (instruction, size, cycles).
        # FRAM-resident code is decoded once per image instead of once
        # per retirement.  Invalidation rides the map's write observers
        # (every map-level store, plus whole-region notifications from
        # ``clear_volatile``); code paths that mutate memory behind the
        # map's back must call :meth:`invalidate_decode_cache`.
        self._decode_cache: dict[int, tuple[Instruction, int, int]] = {}
        self._cache_lo = 0  # lowest byte address any cached encoding covers
        self._cache_hi = 0  # one past the highest (lo == hi means empty)
        memory.write_observers.append(self._on_memory_write)

    # -- register/flag helpers ---------------------------------------------
    @property
    def pc(self) -> int:
        """Program counter (R0)."""
        return self.registers[PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.registers[PC] = value & WORD_MASK

    @property
    def sp(self) -> int:
        """Stack pointer (R1)."""
        return self.registers[SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.registers[SP] = value & WORD_MASK

    def flag(self, bit: int) -> bool:
        """Read one status-register flag."""
        return bool(self.registers[SR] & bit)

    def _set_flags(self, result: int, carry: bool, overflow: bool) -> int:
        result &= WORD_MASK
        sr = 0
        if result == 0:
            sr |= FLAG_Z
        if result & 0x8000:
            sr |= FLAG_N
        if carry:
            sr |= FLAG_C
        if overflow:
            sr |= FLAG_V
        self.registers[SR] = sr
        return result

    # -- decoded-instruction cache ---------------------------------------------
    def invalidate_decode_cache(self) -> None:
        """Drop every cached decode (call after out-of-band code edits)."""
        self._decode_cache.clear()
        self._cache_lo = self._cache_hi = 0

    def _on_memory_write(self, address: int, width: int) -> None:
        # One range overlap test per store; a hit wipes the whole cache
        # (self-modifying code is rare enough that precision would cost
        # more than it saves).
        if self._decode_cache and address < self._cache_hi and address + width > self._cache_lo:
            self.invalidate_decode_cache()

    # -- reset / power cycle -------------------------------------------------
    def reset(self, entry: int) -> None:
        """Power-on reset: clear all registers, PC = entry, SP = top of SRAM."""
        self.registers = [0] * NUM_REGISTERS
        self.pc = entry
        self.sp = SRAM_BASE + SRAM_SIZE
        self.halted = False

    # -- operand resolution ----------------------------------------------------
    def _operand_address(self, operand) -> int:
        if operand.mode is Mode.ABS:
            return operand.value
        if operand.mode is Mode.IDX:
            return (self.registers[operand.reg] + _signed(operand.value)) & WORD_MASK
        if operand.mode is Mode.IND:
            return self.registers[operand.reg]
        raise CpuError(f"operand {operand!r} has no address")

    def _read_operand(self, operand) -> int:
        if operand.mode is Mode.REG:
            return self.registers[operand.reg]
        if operand.mode is Mode.IMM:
            return operand.value
        address = self._operand_address(operand)
        region = self.memory.region_at(address, 2)
        self.spend(region.read_cycles)
        # Read through the region directly: the map-level accessor would
        # only repeat the region lookup (reads have no observers).
        return region.read_u16(address)

    def _write_operand(self, operand, value: int) -> None:
        if operand.mode is Mode.REG:
            self.registers[operand.reg] = value & WORD_MASK
            return
        address = self._operand_address(operand)
        region = self.memory.region_at(address, 2)
        self.spend(region.write_cycles)
        self.memory.write_u16(address, value)

    # -- stack ----------------------------------------------------------------
    #
    # Stack traffic is memory traffic: PUSH/POP/CALL/RET charge the
    # destination region's access cycles through ``spend`` exactly like
    # an equivalent MOV would, so stack-heavy code is not energy-free
    # relative to the same data movement through ``_write_operand``.
    def _push(self, value: int) -> None:
        self.sp = self.sp - 2
        address = self.sp
        region = self.memory.region_at(address, 2)
        self.spend(region.write_cycles)
        self.memory.write_u16(address, value)

    def _pop(self) -> int:
        address = self.sp
        region = self.memory.region_at(address, 2)
        self.spend(region.read_cycles)
        value = region.read_u16(address)
        self.sp = address + 2
        return value

    # -- execution ---------------------------------------------------------------
    def step(self) -> Instruction:
        """Fetch, decode, and execute one instruction at the PC.

        Returns the executed instruction.  Raises :class:`Halted` on
        HALT, propagates :class:`~repro.mcu.memory.MemoryFault` on wild
        accesses and whatever ``spend`` raises on power failure.
        """
        if self.halted:
            raise Halted("CPU is halted")
        pc = self.registers[PC]
        cached = self._decode_cache.get(pc)
        if cached is None:
            instruction, size = decode(self.memory.read_u16, pc)
            cached = (instruction, size, instruction.cycles())
            self._decode_cache[pc] = cached
            end = pc + size
            if self._cache_lo == self._cache_hi:  # first entry
                self._cache_lo, self._cache_hi = pc, end
            else:
                if pc < self._cache_lo:
                    self._cache_lo = pc
                if end > self._cache_hi:
                    self._cache_hi = end
        instruction, size, cycles = cached
        self.spend(cycles)
        next_pc = (pc + size) & WORD_MASK
        self._execute(instruction, next_pc)
        self.instructions_retired += 1
        return instruction

    def _execute(self, ins: Instruction, next_pc: int) -> None:
        op = ins.op
        if op in JUMPS:
            self.pc = self._jump_target(ins) if self._jump_taken(op) else next_pc
            return
        self.pc = next_pc
        if op is Op.NOP:
            return
        if op is Op.HALT:
            self.halted = True
            raise Halted(f"HALT at 0x{(next_pc - ins.size_bytes) & WORD_MASK:04X}")
        if op is Op.MOV:
            self._write_operand(ins.dst, self._read_operand(ins.src))
        elif op in (Op.ADD, Op.SUB, Op.CMP, Op.AND, Op.OR, Op.XOR, Op.BIT):
            self._alu(ins)
        elif op in (Op.INC, Op.DEC, Op.SHL, Op.SHR, Op.SWPB, Op.INV):
            self._unary(ins)
        elif op is Op.PUSH:
            self._push(self._read_operand(ins.src))
        elif op is Op.POP:
            self._write_operand(ins.dst, self._pop())
        elif op is Op.CALL:
            self._push(self.pc)
            self.pc = self._read_operand(ins.src)
        elif op is Op.RET:
            self.pc = self._pop()
        elif op is Op.OUT:
            port = self._read_operand(ins.dst)
            handler = self.ports_out.get(port)
            if handler is None:
                raise CpuError(f"OUT to unknown port 0x{port:04X}")
            handler(self._read_operand(ins.src))
        elif op is Op.IN:
            port = self._read_operand(ins.src)
            handler = self.ports_in.get(port)
            if handler is None:
                raise CpuError(f"IN from unknown port 0x{port:04X}")
            self._write_operand(ins.dst, handler() & WORD_MASK)
        elif op is Op.MARK:
            marker = self._read_operand(ins.src)
            if self.on_mark is not None:
                self.on_mark(marker)
        else:  # pragma: no cover - every opcode is handled above
            raise CpuError(f"unimplemented opcode {op!r}")

    def _alu(self, ins: Instruction) -> None:
        src = self._read_operand(ins.src)
        dst = self._read_operand(ins.dst)
        op = ins.op
        if op is Op.ADD:
            raw = dst + src
            overflow = ((dst ^ raw) & (src ^ raw) & 0x8000) != 0
            result = self._set_flags(raw, carry=raw > WORD_MASK, overflow=overflow)
            self._write_operand(ins.dst, result)
        elif op in (Op.SUB, Op.CMP):
            raw = dst - src
            overflow = ((dst ^ src) & (dst ^ raw) & 0x8000) != 0
            result = self._set_flags(raw, carry=dst >= src, overflow=overflow)
            if op is Op.SUB:
                self._write_operand(ins.dst, result)
        else:
            table = {
                Op.AND: dst & src,
                Op.OR: dst | src,
                Op.XOR: dst ^ src,
                Op.BIT: dst & src,
            }
            result = self._set_flags(table[op], carry=False, overflow=False)
            if op is not Op.BIT:  # BIT only sets flags
                self._write_operand(ins.dst, result)

    def _unary(self, ins: Instruction) -> None:
        value = self._read_operand(ins.dst)
        op = ins.op
        if op is Op.INC:
            raw = value + 1
            result = self._set_flags(raw, carry=raw > WORD_MASK, overflow=False)
        elif op is Op.DEC:
            raw = value - 1
            result = self._set_flags(raw, carry=value >= 1, overflow=False)
        elif op is Op.SHL:
            raw = value << 1
            result = self._set_flags(
                raw, carry=bool(value & 0x8000), overflow=False
            )
        elif op is Op.SHR:
            result = self._set_flags(
                value >> 1, carry=bool(value & 1), overflow=False
            )
        elif op is Op.SWPB:
            swapped = ((value & 0xFF) << 8) | (value >> 8)
            result = self._set_flags(swapped, carry=False, overflow=False)
        else:  # INV
            result = self._set_flags(~value, carry=False, overflow=False)
        self._write_operand(ins.dst, result)

    def _jump_taken(self, op: Op) -> bool:
        if op is Op.JMP:
            return True
        if op is Op.JZ:
            return self.flag(FLAG_Z)
        if op is Op.JNZ:
            return not self.flag(FLAG_Z)
        if op is Op.JC:
            return self.flag(FLAG_C)
        if op is Op.JNC:
            return not self.flag(FLAG_C)
        return self.flag(FLAG_N)  # JN

    def _jump_target(self, ins: Instruction) -> int:
        return self._read_operand(ins.src)
