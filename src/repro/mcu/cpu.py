"""The interpreting CPU core for the :mod:`repro.mcu.isa` instruction set.

The core owns the register file (volatile!) and executes instructions
out of the target's memory map.  Every instruction reports its cycle
cost to a ``spend`` callback supplied by the device; the device converts
cycles into simulated time and energy drawn from the capacitor — which
is how a power failure can interrupt the program between any two
instructions.

Two execution engines share that contract:

- :meth:`Cpu.step` — the reference single-instruction interpreter.
- :meth:`Cpu.step_block` — a QEMU-TCG-style basic-block translation
  cache.  On first execution from a PC the core decodes forward to the
  next control transfer / SR write / watch-hooked address and compiles
  the run into a tuple of pre-bound Python closures (one per
  instruction).  Steady-state execution then runs whole blocks with one
  dict lookup instead of a decode + dispatch round trip per
  instruction.  Every thunk replays the *exact* ``spend``/memory-access
  sequence of :meth:`step`, so voltage trajectories, power failures,
  and faults land on the same instruction boundaries bit-for-bit; the
  translation only removes interpreter overhead, never accounting.

On top of the block cache sits a third tier: profile-guided
**superblock traces**.  A per-start-PC execution counter finds hot
blocks; when a hot block's final branch was observed taken into another
live translated block, the chain is compiled into a :class:`_Trace` —
up to :data:`_TRACE_BLOCK_LIMIT` components, with self-loops unrolled
to the limit — and dispatched under a single combined guard
(``trace_guard``, installed by the device, which may additionally open
a closed-form energy fast-forward span for the whole trace).  Traces
run the *same* thunk tuples the block tier runs, checking between
components that each taken branch really landed on the next component
(a side exit simply ends the trace early), so the tier is
architecturally invisible: identical retirement, coverage, energy, and
fault boundaries, one dispatch for dozens of instructions.
"""

from __future__ import annotations

from typing import Callable

from repro.mcu.isa import (
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    JUMPS,
    DecodeError,
    Instruction,
    Mode,
    NUM_REGISTERS,
    Op,
    PC,
    SP,
    SR,
    WORD_MASK,
    decode,
    worst_case_cycles,
)
from repro.mcu.memory import MemoryFault, MemoryMap, SRAM_BASE, SRAM_SIZE


class Halted(Exception):
    """The program executed a HALT instruction."""


class CpuError(Exception):
    """An architecturally invalid operation (e.g. unknown port)."""


def _signed(value: int) -> int:
    """Interpret a 16-bit word as a signed integer."""
    return value - 0x10000 if value & 0x8000 else value


# Instructions a block must end *after* (control transfer, or an explicit
# architectural write to PC/SR through a register destination — checked
# separately) and instructions a block may never contain (host-visible
# side channels whose hooks expect plain single-stepping).
_TERMINAL_OPS = frozenset(JUMPS | {Op.CALL, Op.RET, Op.HALT})
_UNTRANSLATABLE_OPS = frozenset({Op.OUT, Op.IN, Op.MARK})
_ALU_OPS = frozenset({Op.ADD, Op.SUB, Op.CMP, Op.AND, Op.OR, Op.XOR, Op.BIT})
_UNARY_OPS = frozenset({Op.INC, Op.DEC, Op.SHL, Op.SHR, Op.SWPB, Op.INV})
# Conditional jump -> (flag bit, jump when flag *clear*).
_JUMP_FLAG = {
    Op.JZ: (FLAG_Z, False),
    Op.JNZ: (FLAG_Z, True),
    Op.JC: (FLAG_C, False),
    Op.JNC: (FLAG_C, True),
    Op.JN: (FLAG_N, False),
}
# Ops that write their destination operand (an explicit REG-mode store to
# R0/R2 is a control-flow/SR write and therefore ends a block).
_NON_WRITING_OPS = frozenset({Op.CMP, Op.BIT, Op.NOP} | JUMPS)

_BLOCK_LIMIT = 64  # instructions per block; bounds translation latency
_BLOCK_POOL_LIMIT = 1024  # retired blocks kept for fingerprint revival
_TRACE_HEAT = 16  # executions from one start PC before trace formation
_TRACE_BLOCK_LIMIT = 16  # components per trace; self-loops unroll this far


class _Block:
    """A translated straight-line run of instructions.

    ``thunks`` execute the run one closure per instruction, each fully
    updating PC/flags/memory exactly as :meth:`Cpu.step` would.  ``lo``/
    ``hi`` bound the code bytes the block was compiled from (used for
    write invalidation), ``worst_cycles`` bounds the cycles one pass can
    spend (used by the advisory energy guard), and ``fingerprint`` holds
    the exact code bytes at translation time so a block retired by a
    wholesale :meth:`Cpu.invalidate_decode_cache` can be revived cheaply
    iff the code is still byte-identical.
    """

    __slots__ = (
        "start", "lo", "hi", "thunks", "worst_cycles", "valid",
        "fingerprint", "end_pc",
    )


class _Trace:
    """A profile-guided superblock: hot blocks chained across taken branches.

    ``blocks`` holds the component :class:`_Block` objects in dispatch
    order (a self-looping block appears repeatedly — the unrolled form).
    The trace owns no thunks of its own: execution runs each component's
    tuple, so any state a component bail or side exit leaves behind is
    exactly what consecutive ``step_block`` calls would have produced.
    ``worst_cycles`` is the sum of the components' worst cases — the
    budget a single combined guard (and the closed-form fast-forward
    span) is proven against.  Component code writes invalidate the
    *blocks*; the trace notices dead components at dispatch (via
    ``unique_blocks``, deduplicated so an unrolled self-loop sweeps one
    object, not sixteen) and retires itself lazily.  ``parts`` holds
    one pre-sliced ``(block, first_thunk, rest_thunks, link)`` tuple
    per component: the first thunk runs unconditionally (matching block
    dispatch, which only checks self-invalidation *after* the first
    retirement), ``rest_thunks`` carries the remainder, and ``link`` is
    the start PC the component's taken branch must land on for the
    trace to continue (``None`` for the last component).
    """

    __slots__ = (
        "start", "blocks", "parts", "unique_blocks", "worst_cycles",
        "instructions", "valid",
    )


class Cpu:
    """A 16-register interpreting core over a :class:`MemoryMap`.

    Parameters
    ----------
    memory:
        The target's address space (code lives in FRAM).
    spend:
        ``spend(cycles)`` — charge the given cycle count to the power
        system; may raise :class:`repro.mcu.device.PowerFailure`.
    """

    def __init__(
        self, memory: MemoryMap, spend: Callable[[int], None] | None = None
    ) -> None:
        self.memory = memory
        self.spend = spend or (lambda cycles: None)
        self._registers = [0] * NUM_REGISTERS
        self.ports_out: dict[int, Callable[[int], None]] = {}
        self.ports_in: dict[int, Callable[[], int]] = {}
        self.on_mark: Callable[[int], None] | None = None
        self.instructions_retired = 0
        self.halted = False
        # Optional dynamic-coverage hook: a CoverageRecorder, or None
        # (the default — the checks below then cost one attribute read).
        # When attached, reset() and every *taken* control transfer
        # record the landing PC, identically under step() and
        # step_block(), so coverage is dispatch-invariant by design.
        self.coverage = None
        # Decoded-instruction cache: PC -> (instruction, size, cycles).
        # FRAM-resident code is decoded once per image instead of once
        # per retirement.  Invalidation rides the map's write observers
        # (every map-level store, plus whole-region notifications from
        # ``clear_volatile``); code paths that mutate memory behind the
        # map's back must call :meth:`invalidate_decode_cache`.
        self._decode_cache: dict[int, tuple[Instruction, int, int]] = {}
        self._cache_lo = 0  # lowest byte address any cached encoding covers
        self._cache_hi = 0  # one past the highest (lo == hi means empty)
        # -- block translation cache ------------------------------------
        # ``block_guard(worst_cycles) -> bool`` is installed by the
        # device: it answers "is it *certainly* safe to run a block this
        # expensive?".  It is advisory — thunks replicate the exact
        # per-instruction spend sequence, so a mid-block power failure
        # still lands on the right instruction even if the guard said
        # yes — but deoptimizing near brown-out keeps the single-step
        # reference path exercised exactly where the ISSUE requires it.
        self.block_cache_enabled = True
        self.block_guard: Callable[[int], bool] | None = None
        self.blocks_translated = 0
        self.blocks_executed = 0
        self.blocks_deopts = 0
        self._block_cache: dict[int, _Block] = {}
        self._block_index: dict[int, list[_Block]] = {}  # page -> blocks
        self._blk_lo = 0  # address span covered by any live block
        self._blk_hi = 0  # (lo == hi means no live blocks)
        self._no_block: set[int] = set()  # PCs translation refused
        self._block_pool: dict[int, _Block] = {}  # retired, revivable
        self._watch_pcs: set[int] = set()
        # -- superblock trace tier ---------------------------------------
        # ``trace_guard(worst_cycles) -> int`` is installed by the
        # device: 0 refuses the trace (dispatch falls back to the block
        # tier), 1 admits it on the ordinary per-spend path, 2
        # additionally opens a closed-form energy fast-forward span that
        # ``span_end`` closes when the trace finishes or unwinds.
        self.trace_tier_enabled = True
        self.trace_guard: Callable[[int], int] | None = None
        self.span_end: Callable[[], None] | None = None
        self.traces_formed = 0
        self.traces_executed = 0
        self.trace_exits = 0
        self._trace_cache: dict[int, _Trace] = {}
        self._block_heat: dict[int, int] = {}  # start PC -> executions
        self._block_succ: dict[int, int] = {}  # start PC -> last taken target
        self._no_trace: set[int] = set()  # head PCs formation refused
        # The write observer that keeps both caches honest is installed
        # lazily, at the first decode: before anything is decoded both
        # caches are empty, so no store can invalidate anything, and
        # workloads that drive the device purely through the high-level
        # API never pay the per-store observer call at all.
        self._observing = False

    # -- register/flag helpers ---------------------------------------------
    @property
    def registers(self) -> list[int]:
        """The register file.

        The backing list's identity is stable for the CPU's lifetime —
        translated thunks bind it directly — so assigning to this
        property replaces the *contents*, not the list.
        """
        return self._registers

    @registers.setter
    def registers(self, value) -> None:
        self._registers[:] = value

    @property
    def pc(self) -> int:
        """Program counter (R0)."""
        return self._registers[PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self._registers[PC] = value & WORD_MASK

    @property
    def sp(self) -> int:
        """Stack pointer (R1)."""
        return self._registers[SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self._registers[SP] = value & WORD_MASK

    def flag(self, bit: int) -> bool:
        """Read one status-register flag."""
        return bool(self._registers[SR] & bit)

    def _set_flags(self, result: int, carry: bool, overflow: bool) -> int:
        result &= WORD_MASK
        sr = 0
        if result == 0:
            sr |= FLAG_Z
        if result & 0x8000:
            sr |= FLAG_N
        if carry:
            sr |= FLAG_C
        if overflow:
            sr |= FLAG_V
        self._registers[SR] = sr
        return result

    # -- decoded-instruction cache -----------------------------------------
    def invalidate_decode_cache(self) -> None:
        """Drop every cached decode (call after out-of-band code edits).

        Translated blocks are retired to a revival pool rather than
        destroyed: each holds a fingerprint of the code bytes it was
        compiled from, so the next execution revives it for free when
        the edit did not actually touch its code (the common case for
        region-level corruption hitting data, not text).
        """
        self._decode_cache.clear()
        self._cache_lo = self._cache_hi = 0
        self._retire_blocks()

    def _on_memory_write(self, address: int, width: int) -> None:
        # One range overlap test per store; a hit wipes the whole decode
        # cache (self-modifying code is rare enough that precision would
        # cost more than it saves).
        if (
            self._decode_cache
            and address < self._cache_hi
            and address + width > self._cache_lo
        ):
            self._decode_cache.clear()
            self._cache_lo = self._cache_hi = 0
        # Blocks are invalidated precisely through the per-page index: a
        # store that misses every block's byte span cannot change block
        # semantics (thunks never consult the decode cache), so blocks
        # survive the wholesale decode wipe above.
        if (
            self._block_index
            and address < self._blk_hi
            and address + width > self._blk_lo
        ):
            end = address + width
            shift = MemoryMap.PAGE_SHIFT
            index = self._block_index
            cache = self._block_cache
            for page in range(address >> shift, ((end - 1) >> shift) + 1):
                bucket = index.pop(page, None)
                if bucket is None:
                    continue
                keep = None
                for block in bucket:
                    if block.valid and (end <= block.lo or address >= block.hi):
                        if keep is None:
                            keep = [block]
                        else:
                            keep.append(block)
                    elif block.valid:
                        block.valid = False
                        cache.pop(block.start, None)
                if keep is not None:
                    index[page] = keep
            if self._no_block:
                # The store may have turned an untranslatable PC into a
                # translatable one (or vice versa); re-probe lazily.
                self._no_block.clear()
            if self._no_trace:
                # Invalidated blocks can change what is chainable, so
                # refused trace heads get another shot too.  Traces with
                # a newly dead component retire themselves at dispatch.
                self._no_trace.clear()

    # -- block cache bookkeeping -------------------------------------------
    def _retire_blocks(self) -> None:
        """Move every live block to the revival pool and clear the index.

        Traces are dropped outright — they are cheap to re-form from the
        surviving heat/successor profile once their components revive —
        but the profile itself is kept: it describes dynamic behaviour,
        which a code-preserving retirement does not change.
        """
        pool = self._block_pool
        if len(pool) > _BLOCK_POOL_LIMIT:
            pool.clear()
        for start, block in self._block_cache.items():
            block.valid = False
            pool[start] = block
        self._block_cache.clear()
        self._block_index.clear()
        self._blk_lo = self._blk_hi = 0
        self._no_block.clear()
        self._drop_traces()

    def _drop_blocks(self) -> None:
        """Destroy every block, pooled ones included (watch set changed)."""
        for block in self._block_cache.values():
            block.valid = False
        self._block_cache.clear()
        self._block_pool.clear()
        self._block_index.clear()
        self._blk_lo = self._blk_hi = 0
        self._no_block.clear()
        self._drop_traces()
        # A changed watch set redraws block boundaries, so the recorded
        # successors may name PCs that will never be block starts again.
        self._block_heat.clear()
        self._block_succ.clear()

    def _drop_traces(self) -> None:
        """Destroy every formed trace (components changed wholesale)."""
        for trace in self._trace_cache.values():
            trace.valid = False
        self._trace_cache.clear()
        self._no_trace.clear()

    def add_watch_pc(self, pc: int) -> None:
        """Exclude ``pc`` from block translation (breakpoint/watch hook).

        Execution reaching a watched address always goes through
        :meth:`step`, one instruction at a time, so PC-matching hooks
        observe it exactly as they would without the block cache.
        """
        self._watch_pcs.add(pc & WORD_MASK)
        self._drop_blocks()

    def remove_watch_pc(self, pc: int) -> None:
        """Re-allow block translation across ``pc``."""
        self._watch_pcs.discard(pc & WORD_MASK)
        self._drop_blocks()

    @property
    def watch_pcs(self) -> frozenset[int]:
        """Addresses currently excluded from block translation."""
        return frozenset(self._watch_pcs)

    def _code_fingerprint(self, lo: int, hi: int) -> bytes:
        """The raw code bytes in ``[lo, hi)`` (no read-counter traffic)."""
        memory = self.memory
        parts = []
        address = lo
        while address < hi:
            region = memory.region_at(address, 1)
            take = min(hi, region.end) - address
            offset = address - region.base
            parts.append(bytes(region._data[offset : offset + take]))
            address += take
        return b"".join(parts)

    def _install_block(self, block: _Block) -> None:
        self._block_cache[block.start] = block
        shift = MemoryMap.PAGE_SHIFT
        index = self._block_index
        for page in range(block.lo >> shift, ((block.hi - 1) >> shift) + 1):
            bucket = index.get(page)
            if bucket is None:
                index[page] = [block]
            else:
                bucket.append(block)
        if self._blk_lo == self._blk_hi:  # first live block
            self._blk_lo, self._blk_hi = block.lo, block.hi
        else:
            if block.lo < self._blk_lo:
                self._blk_lo = block.lo
            if block.hi > self._blk_hi:
                self._blk_hi = block.hi

    def _revive_block(self, pc: int) -> _Block | None:
        block = self._block_pool.pop(pc, None)
        if block is None:
            return None
        try:
            fresh = self._code_fingerprint(block.lo, block.hi)
        except MemoryFault:  # address space changed under the pool
            return None
        if fresh != block.fingerprint:
            return None
        block.valid = True
        self._install_block(block)
        return block

    # -- reset / power cycle -----------------------------------------------
    def reset(self, entry: int) -> None:
        """Power-on reset: clear all registers, PC = entry, SP = top of SRAM."""
        self.registers = [0] * NUM_REGISTERS
        self.pc = entry
        self.sp = SRAM_BASE + SRAM_SIZE
        self.halted = False
        if self.coverage is not None:
            self.coverage.record(self._registers[PC])

    # -- operand resolution --------------------------------------------------
    def _operand_address(self, operand) -> int:
        if operand.mode is Mode.ABS:
            return operand.value
        if operand.mode is Mode.IDX:
            return (self._registers[operand.reg] + _signed(operand.value)) & WORD_MASK
        if operand.mode is Mode.IND:
            return self._registers[operand.reg]
        raise CpuError(f"operand {operand!r} has no address")

    def _read_operand(self, operand) -> int:
        if operand.mode is Mode.REG:
            return self._registers[operand.reg]
        if operand.mode is Mode.IMM:
            return operand.value
        address = self._operand_address(operand)
        region = self.memory.region_at(address, 2)
        self.spend(region.read_cycles)
        # Read through the region directly: the map-level accessor would
        # only repeat the region lookup (reads have no observers).
        return region.read_u16(address)

    def _write_operand(self, operand, value: int) -> None:
        if operand.mode is Mode.REG:
            self._registers[operand.reg] = value & WORD_MASK
            return
        address = self._operand_address(operand)
        region = self.memory.region_at(address, 2)
        self.spend(region.write_cycles)
        self.memory.write_u16(address, value)

    # -- stack ---------------------------------------------------------------
    #
    # Stack traffic is memory traffic: PUSH/POP/CALL/RET charge the
    # destination region's access cycles through ``spend`` exactly like
    # an equivalent MOV would, so stack-heavy code is not energy-free
    # relative to the same data movement through ``_write_operand``.
    def _push(self, value: int) -> None:
        self.sp = self.sp - 2
        address = self.sp
        region = self.memory.region_at(address, 2)
        self.spend(region.write_cycles)
        self.memory.write_u16(address, value)

    def _pop(self) -> int:
        address = self.sp
        region = self.memory.region_at(address, 2)
        self.spend(region.read_cycles)
        value = region.read_u16(address)
        self.sp = address + 2
        return value

    # -- execution -----------------------------------------------------------
    def step(self) -> Instruction:
        """Fetch, decode, and execute one instruction at the PC.

        Returns the executed instruction.  Raises :class:`Halted` on
        HALT, propagates :class:`~repro.mcu.memory.MemoryFault` on wild
        accesses and whatever ``spend`` raises on power failure.
        """
        if self.halted:
            raise Halted("CPU is halted")
        pc = self._registers[PC]
        cached = self._decode_cache.get(pc)
        if cached is None:
            cached = self._decode_at(pc)
        instruction, size, cycles = cached
        self.spend(cycles)
        next_pc = (pc + size) & WORD_MASK
        self._execute(instruction, next_pc)
        self.instructions_retired += 1
        if self.coverage is not None and self._registers[PC] != next_pc:
            self.coverage.record(self._registers[PC])
        return instruction

    def _decode_at(self, pc: int) -> tuple[Instruction, int, int]:
        if not self._observing:
            self.memory.write_observers.append(self._on_memory_write)
            self._observing = True
        instruction, size = decode(self.memory.read_u16, pc)
        cached = (instruction, size, instruction.cycles())
        self._decode_cache[pc] = cached
        end = pc + size
        if self._cache_lo == self._cache_hi:  # first entry
            self._cache_lo, self._cache_hi = pc, end
        else:
            if pc < self._cache_lo:
                self._cache_lo = pc
            if end > self._cache_hi:
                self._cache_hi = end
        return cached

    def step_block(self, limit: int | None = None) -> int:
        """Execute one translated block (or one instruction) at the PC.

        Returns the number of instructions retired (≥ 1 unless an
        exception unwinds mid-block, in which case the partial count is
        reflected in :attr:`instructions_retired` exactly as repeated
        :meth:`step` calls would leave it).  ``limit`` caps how many
        instructions this call may retire; a block longer than the
        remaining budget deoptimizes to a single step.

        Exceptions land on the same instruction boundary single-stepping
        would produce: thunks replay the exact spend/memory sequence of
        :meth:`step`, so a power failure, memory fault, or HALT inside a
        block leaves PC, registers, retired counts, and the capacitor in
        the bit-identical state.
        """
        if self.halted:
            raise Halted("CPU is halted")
        if not self.block_cache_enabled:
            self.step()
            return 1
        pc = self._registers[PC]
        if self.trace_tier_enabled:
            trace = self._trace_cache.get(pc)
            if trace is not None:
                retired = self._run_trace(trace, limit)
                if retired:
                    return retired
                # Refused (budget, guard, or a dead component): nothing
                # ran; fall through to ordinary block dispatch.
        block = self._block_cache.get(pc)
        if block is None:
            if pc in self._no_block:
                self.step()
                return 1
            block = self._revive_block(pc)
            if block is None:
                block = self._translate(pc)
                if block is None:
                    self._no_block.add(pc)
                    self.step()
                    return 1
                self.blocks_translated += 1
                self._install_block(block)
        thunks = block.thunks
        guard = self.block_guard
        if (limit is not None and limit < len(thunks)) or (
            guard is not None and not guard(block.worst_cycles)
        ):
            self.blocks_deopts += 1
            self.step()
            return 1
        self.blocks_executed += 1
        retired = 0
        for thunk in thunks:
            if retired and not block.valid:
                # A store inside the block modified the block's own
                # code: stop and let the next dispatch retranslate.
                self.blocks_deopts += 1
                break
            thunk()
            self.instructions_retired += 1
            retired += 1
        if (
            self.coverage is not None
            and retired == len(thunks)
            and self._registers[PC] != block.end_pc
        ):
            # An early (invalidation) break leaves PC at the last
            # executed thunk's own fall-through — no transfer taken, so
            # nothing to record; only a completed block whose final
            # transfer landed elsewhere opens a new dynamic block.
            self.coverage.record(self._registers[PC])
        if self.trace_tier_enabled and retired == len(thunks):
            heat = self._block_heat
            executions = heat.get(pc, 0) + 1
            heat[pc] = executions
            landed = self._registers[PC]
            if landed != block.end_pc:
                self._block_succ[pc] = landed
                if (
                    executions >= _TRACE_HEAT
                    and pc not in self._trace_cache
                    and pc not in self._no_trace
                ):
                    self._form_trace(pc)
        return retired

    # -- superblock traces ---------------------------------------------------
    def _form_trace(self, start: int) -> _Trace | None:
        """Chain hot blocks across recorded taken branches into a trace.

        Follows the last-observed taken successor from ``start`` while
        every hop lands on a live translated block, up to
        :data:`_TRACE_BLOCK_LIMIT` components — a block whose branch
        jumps back to itself chains to itself, so tight loops come out
        unrolled to the limit.  Anything shorter than two components is
        not worth a trace; the refusal is memoized in ``_no_trace``
        until the next code write changes what is chainable.
        """
        cache = self._block_cache
        succ = self._block_succ
        blocks: list[_Block] = []
        worst = 0
        instructions = 0
        at = start
        while len(blocks) < _TRACE_BLOCK_LIMIT:
            block = cache.get(at)
            if block is None or not block.valid:
                break
            blocks.append(block)
            worst += block.worst_cycles
            instructions += len(block.thunks)
            nxt = succ.get(at)
            if nxt is None:
                break
            at = nxt
        if len(blocks) < 2:
            self._no_trace.add(start)
            return None
        trace = _Trace()
        trace.start = start
        trace.blocks = tuple(blocks)
        links = [nxt.start for nxt in blocks[1:]] + [None]
        trace.parts = tuple(
            (block, block.thunks[0], block.thunks[1:], link)
            for block, link in zip(blocks, links)
        )
        unique: list[_Block] = []
        for block in blocks:
            if block not in unique:
                unique.append(block)
        trace.unique_blocks = tuple(unique)
        trace.worst_cycles = worst
        trace.instructions = instructions
        trace.valid = True
        self._trace_cache[start] = trace
        self.traces_formed += 1
        return trace

    def _run_trace(self, trace: _Trace, limit: int | None) -> int:
        """Execute a formed trace; returns instructions retired (0 = refused).

        A refusal — retirement budget too small, a component block
        invalidated by a code write since formation, or the device guard
        declining the combined worst case — executes *nothing*, so the
        caller can fall back to block dispatch with no state to unwind.
        Once admitted, the trace runs each component's thunk tuple
        exactly as block dispatch would, checking between components
        that the previous component's taken branch actually landed on
        the next one; a side exit ends the trace early with everything
        retired so far already architecturally committed.  Guard mode 2
        means the device opened a closed-form fast-forward span for the
        trace's worst-case cycles; it is closed on every way out,
        including exceptions unwinding mid-trace.
        """
        if limit is not None and limit < trace.instructions:
            return 0
        for block in trace.unique_blocks:
            if not block.valid:
                # A code write retired a component since formation:
                # drop the trace and let the profile re-form it once
                # the block tier has retranslated the new code.
                trace.valid = False
                self._trace_cache.pop(trace.start, None)
                return 0
        guard = self.trace_guard
        if guard is None:
            block_guard = self.block_guard
            mode = (
                1
                if block_guard is None or block_guard(trace.worst_cycles)
                else 0
            )
        else:
            mode = guard(trace.worst_cycles)
        if mode == 0:
            return 0
        self.traces_executed += 1
        regs = self._registers
        coverage = self.coverage
        retired = 0
        # Mode 2 means the device opened a fast-forward span, which
        # requires an empty post-work hook list — nothing can observe
        # ``instructions_retired`` between spends, so the counter is
        # batched into the local ``retired`` and committed exactly (on
        # success *and* on an unwinding exception) by the finally
        # below.  Mode 1 keeps the per-thunk increment: hooks run after
        # every spend and may read the live count.
        batched = mode == 2
        try:
            for block, first, rest, link in trace.parts:
                if batched:
                    first()
                    retired += 1
                    for thunk in rest:
                        if not block.valid:
                            # The component modified its own code: stop
                            # on the same boundary block dispatch would.
                            self.blocks_deopts += 1
                            self.trace_exits += 1
                            return retired
                        thunk()
                        retired += 1
                else:
                    first()
                    self.instructions_retired += 1
                    retired += 1
                    for thunk in rest:
                        if not block.valid:
                            self.blocks_deopts += 1
                            self.trace_exits += 1
                            return retired
                        thunk()
                        self.instructions_retired += 1
                        retired += 1
                landed = regs[0]
                if coverage is not None and landed != block.end_pc:
                    coverage.record(landed)
                if link is not None and landed != link:
                    # The final branch went somewhere the profile did
                    # not predict; the next dispatch starts from the
                    # actual landing PC.
                    self.trace_exits += 1
                    return retired
        finally:
            if batched:
                self.instructions_retired += retired
                self.span_end()
        return retired

    # -- block translation ---------------------------------------------------
    def _translate(self, start: int) -> _Block | None:
        """Decode forward from ``start`` and compile a straight-line block.

        Stops *before* watch-hooked addresses, port I/O, code markers,
        and anything that fails to decode; stops *after* control
        transfers, HALT, and explicit REG-mode writes to PC or SR.
        Returns ``None`` when not even one instruction is translatable.
        """
        watch = self._watch_pcs
        decode_cache = self._decode_cache
        thunks: list[Callable[[], None]] = []
        worst = 0
        at = start
        while True:
            if at in watch:
                break
            cached = decode_cache.get(at)
            if cached is None:
                try:
                    cached = self._decode_at(at)
                except (DecodeError, MemoryFault):
                    break
            ins, size, cycles = cached
            if ins.op in _UNTRANSLATABLE_OPS:
                break
            npc = (at + size) & WORD_MASK
            thunks.append(self._compile_thunk(ins, npc, cycles))
            worst += worst_case_cycles(ins)
            at += size
            if ins.op in _TERMINAL_OPS or self._writes_control_reg(ins):
                break
            if at != npc:  # wrapped the 16-bit address space
                break
            if len(thunks) >= _BLOCK_LIMIT:
                break
        if not thunks:
            return None
        block = _Block()
        block.start = start
        block.lo = start
        block.hi = at
        block.thunks = tuple(thunks)
        block.worst_cycles = worst
        block.valid = True
        block.fingerprint = self._code_fingerprint(start, at)
        # Fall-through PC after the final thunk.  Only the last
        # instruction of a block can transfer control (everything
        # earlier is non-terminal by construction), so "PC != end_pc
        # after a full block" is exactly "the last transfer was taken" —
        # the same predicate step() evaluates per instruction.
        block.end_pc = at & WORD_MASK
        return block

    @staticmethod
    def _writes_control_reg(ins: Instruction) -> bool:
        dst = ins.dst
        return (
            dst.mode is Mode.REG
            and (dst.reg == PC or dst.reg == SR)
            and ins.op not in _NON_WRITING_OPS
        )

    def _compile_thunk(
        self, ins: Instruction, npc: int, cycles: int
    ) -> Callable[[], None]:
        """One closure reproducing ``spend(cycles); _execute(ins, npc)``.

        Specialized shapes below inline the interpreter's work for the
        hot opcodes; anything else falls back to a generic thunk that
        literally calls :meth:`_execute`.  Either way the observable
        sequence (spend calls, memory traffic, register/flag updates,
        exceptions) is identical to :meth:`step` — specialization is
        pure dispatch-overhead removal.
        """
        op = ins.op
        spend = self.spend
        regs = self._registers
        if op in JUMPS and ins.src.mode is Mode.IMM:
            target = ins.src.value & WORD_MASK
            if op is Op.JMP:

                def thunk() -> None:
                    spend(cycles)
                    regs[0] = target

                return thunk
            flag, when_clear = _JUMP_FLAG[op]
            if when_clear:

                def thunk() -> None:
                    spend(cycles)
                    regs[0] = npc if regs[2] & flag else target

            else:

                def thunk() -> None:
                    spend(cycles)
                    regs[0] = target if regs[2] & flag else npc

            return thunk
        if op is Op.NOP:

            def thunk() -> None:
                spend(cycles)
                regs[0] = npc

            return thunk
        if op is Op.MOV:
            read_src = self._compile_read(ins.src)
            write_dst = self._compile_write(ins.dst)
            if read_src is not None and write_dst is not None:

                def thunk() -> None:
                    spend(cycles)
                    regs[0] = npc
                    write_dst(read_src())

                return thunk
        elif op in _ALU_OPS:
            thunk = self._compile_alu(ins, npc, cycles)
            if thunk is not None:
                return thunk
        elif op in _UNARY_OPS:
            thunk = self._compile_unary(ins, npc, cycles)
            if thunk is not None:
                return thunk
        elif op is Op.PUSH:
            read_src = self._compile_read(ins.src)
            if read_src is not None:
                region_at = self.memory.region_at
                write_u16 = self.memory.write_u16

                def thunk() -> None:
                    spend(cycles)
                    regs[0] = npc
                    value = read_src()
                    sp = (regs[1] - 2) & 0xFFFF
                    regs[1] = sp
                    region = region_at(sp, 2)
                    spend(region.write_cycles)
                    write_u16(sp, value)

                return thunk
        elif op is Op.POP:
            write_dst = self._compile_write(ins.dst)
            if write_dst is not None:
                region_at = self.memory.region_at

                def thunk() -> None:
                    spend(cycles)
                    regs[0] = npc
                    address = regs[1]
                    region = region_at(address, 2)
                    spend(region.read_cycles)
                    value = region.read_u16(address)
                    regs[1] = (address + 2) & 0xFFFF
                    write_dst(value)

                return thunk
        # Generic fallback: CALL/RET/HALT, non-immediate jump targets,
        # and any operand shape the specializers declined.
        execute = self._execute

        def thunk() -> None:
            spend(cycles)
            execute(ins, npc)

        return thunk

    def _compile_alu(self, ins, npc, cycles):
        op = ins.op
        spend = self.spend
        regs = self._registers
        read_src = self._compile_read(ins.src)
        read_dst = self._compile_read(ins.dst)
        if read_src is None or read_dst is None:
            return None
        if op in (Op.CMP, Op.BIT):
            write_dst = None
        else:
            write_dst = self._compile_write(ins.dst)
            if write_dst is None:
                return None
        # Flag bits below are the architectural encoding (C=1, Z=2, N=4,
        # V=0x100) — kept literal so each thunk avoids global lookups.
        if op is Op.ADD:

            def thunk() -> None:
                spend(cycles)
                regs[0] = npc
                src = read_src()
                dst = read_dst()
                raw = dst + src
                result = raw & 0xFFFF
                sr = 0
                if result == 0:
                    sr |= 2
                if result & 0x8000:
                    sr |= 4
                if raw > 0xFFFF:
                    sr |= 1
                if (dst ^ raw) & (src ^ raw) & 0x8000:
                    sr |= 0x100
                regs[2] = sr
                write_dst(result)

            return thunk
        if op is Op.SUB or op is Op.CMP:
            writing = op is Op.SUB

            def thunk() -> None:
                spend(cycles)
                regs[0] = npc
                src = read_src()
                dst = read_dst()
                raw = dst - src
                result = raw & 0xFFFF
                sr = 0
                if result == 0:
                    sr |= 2
                if result & 0x8000:
                    sr |= 4
                if dst >= src:
                    sr |= 1
                if (dst ^ src) & (dst ^ raw) & 0x8000:
                    sr |= 0x100
                regs[2] = sr
                if writing:
                    write_dst(result)

            return thunk
        # AND / OR / XOR / BIT: logical result, Z/N only.
        if op is Op.OR:
            combine = lambda dst, src: dst | src  # noqa: E731
        elif op is Op.XOR:
            combine = lambda dst, src: dst ^ src  # noqa: E731
        else:  # AND and BIT share the same result computation
            combine = lambda dst, src: dst & src  # noqa: E731

        def thunk() -> None:
            spend(cycles)
            regs[0] = npc
            src = read_src()
            dst = read_dst()
            result = combine(dst, src) & 0xFFFF
            sr = 0
            if result == 0:
                sr |= 2
            if result & 0x8000:
                sr |= 4
            regs[2] = sr
            if write_dst is not None:
                write_dst(result)

        return thunk

    def _compile_unary(self, ins, npc, cycles):
        op = ins.op
        spend = self.spend
        regs = self._registers
        read_dst = self._compile_read(ins.dst)
        write_dst = self._compile_write(ins.dst)
        if read_dst is None or write_dst is None:
            return None

        if op is Op.INC:

            def compute(value):
                raw = value + 1
                return raw & 0xFFFF, 1 if raw > 0xFFFF else 0

        elif op is Op.DEC:

            def compute(value):
                return (value - 1) & 0xFFFF, 1 if value >= 1 else 0

        elif op is Op.SHL:

            def compute(value):
                return (value << 1) & 0xFFFF, 1 if value & 0x8000 else 0

        elif op is Op.SHR:

            def compute(value):
                return value >> 1, 1 if value & 1 else 0

        elif op is Op.SWPB:

            def compute(value):
                return ((value & 0xFF) << 8) | (value >> 8), 0

        else:  # INV

            def compute(value):
                return ~value & 0xFFFF, 0

        def thunk() -> None:
            spend(cycles)
            regs[0] = npc
            result, carry = compute(read_dst())
            sr = carry
            if result == 0:
                sr |= 2
            if result & 0x8000:
                sr |= 4
            regs[2] = sr
            write_dst(result)

        return thunk

    def _compile_read(self, operand) -> Callable[[], int] | None:
        """An accessor replicating ``_read_operand`` for one operand."""
        mode = operand.mode
        regs = self._registers
        if mode is Mode.REG:
            reg = operand.reg
            return lambda: regs[reg]
        if mode is Mode.IMM:
            value = operand.value
            return lambda: value
        spend = self.spend
        region_at = self.memory.region_at
        if mode is Mode.ABS:
            address = operand.value
            try:
                region = region_at(address, 2)
            except MemoryFault:
                # Unmapped absolute operand: the generic thunk raises
                # the fault at execution time, same as single-stepping.
                return None
            read_cycles = region.read_cycles
            read_u16 = region.read_u16

            def read() -> int:
                spend(read_cycles)
                return read_u16(address)

            return read
        if mode is Mode.IND:
            reg = operand.reg

            def read() -> int:
                address = regs[reg]
                region = region_at(address, 2)
                spend(region.read_cycles)
                return region.read_u16(address)

            return read
        if mode is Mode.IDX:
            reg = operand.reg
            offset = _signed(operand.value)

            def read() -> int:
                address = (regs[reg] + offset) & 0xFFFF
                region = region_at(address, 2)
                spend(region.read_cycles)
                return region.read_u16(address)

            return read
        return None  # Mode.NONE — malformed; the generic path faults

    def _compile_write(self, operand) -> Callable[[int], None] | None:
        """An accessor replicating ``_write_operand`` for one operand.

        Writes go through the map-level accessor so write observers
        (decode/block invalidation, dirty tracking, commit triggers)
        fire exactly as they do when single-stepping.
        """
        mode = operand.mode
        regs = self._registers
        if mode is Mode.REG:
            reg = operand.reg

            def write(value: int) -> None:
                regs[reg] = value & 0xFFFF

            return write
        spend = self.spend
        region_at = self.memory.region_at
        write_u16 = self.memory.write_u16
        if mode is Mode.ABS:
            address = operand.value
            try:
                region = region_at(address, 2)
            except MemoryFault:
                return None
            write_cycles = region.write_cycles

            def write(value: int) -> None:
                spend(write_cycles)
                write_u16(address, value)

            return write
        if mode is Mode.IND:
            reg = operand.reg

            def write(value: int) -> None:
                address = regs[reg]
                region = region_at(address, 2)
                spend(region.write_cycles)
                write_u16(address, value)

            return write
        if mode is Mode.IDX:
            reg = operand.reg
            offset = _signed(operand.value)

            def write(value: int) -> None:
                address = (regs[reg] + offset) & 0xFFFF
                region = region_at(address, 2)
                spend(region.write_cycles)
                write_u16(address, value)

            return write
        return None  # Mode.NONE / IMM destination — the generic path faults

    def _execute(self, ins: Instruction, next_pc: int) -> None:
        op = ins.op
        if op in JUMPS:
            self.pc = self._jump_target(ins) if self._jump_taken(op) else next_pc
            return
        self.pc = next_pc
        if op is Op.NOP:
            return
        if op is Op.HALT:
            self.halted = True
            raise Halted(f"HALT at 0x{(next_pc - ins.size_bytes) & WORD_MASK:04X}")
        if op is Op.MOV:
            self._write_operand(ins.dst, self._read_operand(ins.src))
        elif op in (Op.ADD, Op.SUB, Op.CMP, Op.AND, Op.OR, Op.XOR, Op.BIT):
            self._alu(ins)
        elif op in (Op.INC, Op.DEC, Op.SHL, Op.SHR, Op.SWPB, Op.INV):
            self._unary(ins)
        elif op is Op.PUSH:
            self._push(self._read_operand(ins.src))
        elif op is Op.POP:
            self._write_operand(ins.dst, self._pop())
        elif op is Op.CALL:
            self._push(self.pc)
            self.pc = self._read_operand(ins.src)
        elif op is Op.RET:
            self.pc = self._pop()
        elif op is Op.OUT:
            port = self._read_operand(ins.dst)
            handler = self.ports_out.get(port)
            if handler is None:
                raise CpuError(f"OUT to unknown port 0x{port:04X}")
            handler(self._read_operand(ins.src))
        elif op is Op.IN:
            port = self._read_operand(ins.src)
            handler = self.ports_in.get(port)
            if handler is None:
                raise CpuError(f"IN from unknown port 0x{port:04X}")
            self._write_operand(ins.dst, handler() & WORD_MASK)
        elif op is Op.MARK:
            marker = self._read_operand(ins.src)
            if self.on_mark is not None:
                self.on_mark(marker)
        else:  # pragma: no cover - every opcode is handled above
            raise CpuError(f"unimplemented opcode {op!r}")

    def _alu(self, ins: Instruction) -> None:
        src = self._read_operand(ins.src)
        dst = self._read_operand(ins.dst)
        op = ins.op
        if op is Op.ADD:
            raw = dst + src
            overflow = ((dst ^ raw) & (src ^ raw) & 0x8000) != 0
            result = self._set_flags(raw, carry=raw > WORD_MASK, overflow=overflow)
            self._write_operand(ins.dst, result)
        elif op in (Op.SUB, Op.CMP):
            raw = dst - src
            overflow = ((dst ^ src) & (dst ^ raw) & 0x8000) != 0
            result = self._set_flags(raw, carry=dst >= src, overflow=overflow)
            if op is Op.SUB:
                self._write_operand(ins.dst, result)
        else:
            table = {
                Op.AND: dst & src,
                Op.OR: dst | src,
                Op.XOR: dst ^ src,
                Op.BIT: dst & src,
            }
            result = self._set_flags(table[op], carry=False, overflow=False)
            if op is not Op.BIT:  # BIT only sets flags
                self._write_operand(ins.dst, result)

    def _unary(self, ins: Instruction) -> None:
        value = self._read_operand(ins.dst)
        op = ins.op
        if op is Op.INC:
            raw = value + 1
            result = self._set_flags(raw, carry=raw > WORD_MASK, overflow=False)
        elif op is Op.DEC:
            raw = value - 1
            result = self._set_flags(raw, carry=value >= 1, overflow=False)
        elif op is Op.SHL:
            raw = value << 1
            result = self._set_flags(
                raw, carry=bool(value & 0x8000), overflow=False
            )
        elif op is Op.SHR:
            result = self._set_flags(
                value >> 1, carry=bool(value & 1), overflow=False
            )
        elif op is Op.SWPB:
            swapped = ((value & 0xFF) << 8) | (value >> 8)
            result = self._set_flags(swapped, carry=False, overflow=False)
        else:  # INV
            result = self._set_flags(~value, carry=False, overflow=False)
        self._write_operand(ins.dst, result)

    def _jump_taken(self, op: Op) -> bool:
        if op is Op.JMP:
            return True
        if op is Op.JZ:
            return self.flag(FLAG_Z)
        if op is Op.JNZ:
            return not self.flag(FLAG_Z)
        if op is Op.JC:
            return self.flag(FLAG_C)
        if op is Op.JNC:
            return not self.flag(FLAG_C)
        return self.flag(FLAG_N)  # JN

    def _jump_target(self, ins: Instruction) -> int:
        return self._read_operand(ins.src)
