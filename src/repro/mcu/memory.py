"""Byte-addressable target memory with volatile and non-volatile regions.

The memory map mirrors the MSP430FR5969 on the WISP 5:

- SRAM at ``0x1C00``, 2 KiB — volatile, cleared on every reboot;
- FRAM at ``0x4400``, 47.75 KiB — non-volatile, survives reboots.

Accesses outside any mapped region, or misaligned word accesses, raise
:class:`MemoryFault`.  That fault is the simulator's rendition of the
paper's "undefined behavior": the wild-pointer write at the end of the
Figure 3 bug chain lands here.
"""

from __future__ import annotations

from typing import Iterable

SRAM_BASE = 0x1C00
SRAM_SIZE = 2 * 1024
FRAM_BASE = 0x4400
FRAM_SIZE = 0xBF80  # 0x4400 .. 0xFF7F on the FR5969

NULL = 0x0000


class MemoryFault(Exception):
    """A wild access: unmapped address, misalignment, or bad width."""

    def __init__(self, message: str, address: int | None = None) -> None:
        super().__init__(message)
        self.address = address


class MemoryRegion:
    """A contiguous block of byte-addressable memory.

    Parameters
    ----------
    name:
        Human-readable region name ("sram", "fram").
    base:
        First mapped address.
    size:
        Region size in bytes.
    volatile:
        Whether the region is cleared by a power failure.
    write_cycles / read_cycles:
        Access cost in CPU cycles (FRAM writes on real parts incur wait
        states; the costs feed the device's time/energy accounting).
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        volatile: bool,
        read_cycles: int = 1,
        write_cycles: int = 1,
    ) -> None:
        if size <= 0:
            raise ValueError(f"region size must be positive (got {size})")
        if base < 0:
            raise ValueError(f"region base must be non-negative (got {base})")
        self.name = name
        self.base = base
        self.size = size
        # One past the last mapped address.  A plain attribute, not a
        # property: bounds checks read it on every access and the
        # descriptor-call overhead is measurable in campaign profiles.
        self.end = base + size
        self.volatile = volatile
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles
        self._data = bytearray(size)
        self.writes = 0
        self.reads = 0

    def contains(self, address: int, width: int = 1) -> bool:
        """True if ``[address, address+width)`` lies inside the region."""
        return self.base <= address and address + width <= self.end

    def _offset(self, address: int, width: int) -> int:
        if self.base <= address and address + width <= self.end:
            return address - self.base
        raise MemoryFault(
            f"access of {width} byte(s) at 0x{address:04X} escapes "
            f"region '{self.name}' [0x{self.base:04X}, 0x{self.end:04X})",
            address=address,
        )

    def read_u8(self, address: int) -> int:
        """Read one byte."""
        self.reads += 1
        return self._data[self._offset(address, 1)]

    def write_u8(self, address: int, value: int) -> None:
        """Write one byte (value truncated to 8 bits)."""
        self.writes += 1
        self._data[self._offset(address, 1)] = value & 0xFF

    def read_u16(self, address: int) -> int:
        """Read one little-endian 16-bit word (must be 2-byte aligned)."""
        if address % 2:
            raise MemoryFault(
                f"misaligned word read at 0x{address:04X}", address=address
            )
        base = self.base
        if base <= address and address + 2 <= self.end:
            offset = address - base
            self.reads += 1
            data = self._data
            return data[offset] | (data[offset + 1] << 8)
        self._offset(address, 2)  # raises the canonical escape fault
        raise AssertionError("unreachable")  # pragma: no cover

    def write_u16(self, address: int, value: int) -> None:
        """Write one little-endian 16-bit word (must be 2-byte aligned)."""
        if address % 2:
            raise MemoryFault(
                f"misaligned word write at 0x{address:04X}", address=address
            )
        base = self.base
        if base <= address and address + 2 <= self.end:
            offset = address - base
            self.writes += 1
            data = self._data
            data[offset] = value & 0xFF
            data[offset + 1] = (value >> 8) & 0xFF
            return
        self._offset(address, 2)  # raises the canonical escape fault
        raise AssertionError("unreachable")  # pragma: no cover

    def read_bytes(self, address: int, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        offset = self._offset(address, count)
        self.reads += 1
        return bytes(self._data[offset : offset + count])

    def write_bytes(self, address: int, data: bytes | bytearray) -> None:
        """Write raw bytes."""
        offset = self._offset(address, len(data))
        self.writes += 1
        self._data[offset : offset + len(data)] = data

    def clear(self) -> None:
        """Zero the region (what a power failure does to volatile RAM)."""
        self._data[:] = bytes(self.size)

    def __repr__(self) -> str:
        kind = "volatile" if self.volatile else "non-volatile"
        return (
            f"MemoryRegion({self.name!r}, 0x{self.base:04X}+{self.size}, {kind})"
        )


class MemoryMap:
    """The full address space: an ordered set of non-overlapping regions."""

    #: Page granularity of the precomputed address→region table (2^8 =
    #: 256 bytes).  Pages that straddle a region boundary are left out
    #: and fall through to the linear scan.
    PAGE_SHIFT = 8

    def __init__(self, regions: Iterable[MemoryRegion]) -> None:
        self.regions = sorted(regions, key=lambda r: r.base)
        for a, b in zip(self.regions, self.regions[1:]):
            if a.end > b.base:
                raise ValueError(f"regions overlap: {a!r} and {b!r}")
        self._by_name = {r.name: r for r in self.regions}
        if len(self._by_name) != len(self.regions):
            raise ValueError("region names must be unique")
        # Write observers: ``hook(address, width)`` after every
        # successful map-level store.  The campaign's commit-boundary
        # fault injector watches FRAM traffic here; observers must not
        # themselves touch target memory.
        self.write_observers: list = []
        # Out-of-band observers: notified (via ``notify_out_of_band``)
        # of region-level writes that deliberately bypass the map —
        # FRAM decay flips, host-side surgery.  Kept separate so
        # observers that model the *program's* store stream (the
        # commit-boundary trigger) never count them, while bookkeeping
        # that must see every mutation (snapshot dirty tracking) can.
        self.oob_write_observers: list = []
        # Region-lookup acceleration: a last-hit cache plus a page
        # table covering every page that lies entirely inside one
        # region.  Both only ever *shortcut* the linear scan — fault
        # semantics for unmapped/straddling accesses are unchanged.
        self._last_region: MemoryRegion | None = None
        shift = self.PAGE_SHIFT
        page_size = 1 << shift
        self._page_table: dict[int, MemoryRegion] = {}
        for region in self.regions:
            first = region.base >> shift
            last = (region.end - 1) >> shift
            for page in range(first, last + 1):
                start = page << shift
                if start >= region.base and start + page_size <= region.end:
                    self._page_table[page] = region

    def _notify_write(self, address: int, width: int) -> None:
        for hook in self.write_observers:
            hook(address, width)

    def notify_out_of_band(self, address: int, width: int) -> None:
        """Report a region-level write that bypassed the map accessors."""
        for hook in self.oob_write_observers:
            hook(address, width)

    def region(self, name: str) -> MemoryRegion:
        """Look a region up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no region named {name!r}; have {sorted(self._by_name)}"
            ) from None

    def region_at(self, address: int, width: int = 1) -> MemoryRegion:
        """The region mapping ``[address, address+width)``.

        Raises :class:`MemoryFault` for unmapped addresses — including
        address 0, so NULL-pointer dereferences fault here.  The lookup
        is O(1) on the hot path: the last-hit region, then the page
        table, then the full scan only for misses and faults.
        """
        region = self._last_region
        if (
            region is not None
            and region.base <= address
            and address + width <= region.end
        ):
            return region
        region = self._page_table.get(address >> self.PAGE_SHIFT)
        if region is not None and address + width <= region.end:
            self._last_region = region
            return region
        for region in self.regions:
            if region.contains(address, width):
                self._last_region = region
                return region
        raise MemoryFault(
            f"access of {width} byte(s) at unmapped address 0x{address:04X}",
            address=address,
        )

    # -- whole-address-space accessors -------------------------------------
    def read_u8(self, address: int) -> int:
        """Read a byte anywhere in the address space."""
        return self.region_at(address, 1).read_u8(address)

    def write_u8(self, address: int, value: int) -> None:
        """Write a byte anywhere in the address space."""
        self.region_at(address, 1).write_u8(address, value)
        self._notify_write(address, 1)

    def read_u16(self, address: int) -> int:
        """Read a word anywhere in the address space."""
        return self.region_at(address, 2).read_u16(address)

    def write_u16(self, address: int, value: int) -> None:
        """Write a word anywhere in the address space."""
        self.region_at(address, 2).write_u16(address, value)
        self._notify_write(address, 2)

    def read_bytes(self, address: int, count: int) -> bytes:
        """Read raw bytes anywhere in the address space."""
        return self.region_at(address, count).read_bytes(address, count)

    def write_bytes(self, address: int, data: bytes | bytearray) -> None:
        """Write raw bytes anywhere in the address space."""
        self.region_at(address, len(data)).write_bytes(address, data)
        self._notify_write(address, len(data))

    def clear_volatile(self) -> None:
        """Clear every volatile region (reboot semantics).

        The wipe is reported to the write observers as one whole-region
        store, so caches keyed on memory contents (e.g. the CPU's
        decoded-instruction cache) see volatile code vanish.  Observers
        that filter by address range (the commit-boundary injector
        watches FRAM only) are unaffected: volatile regions are by
        definition not FRAM.
        """
        for region in self.regions:
            if region.volatile:
                region.clear()
                self._notify_write(region.base, region.size)


def make_msp430_memory_map() -> MemoryMap:
    """Build the MSP430FR5969-flavoured map used by the WISP target.

    FRAM accesses are costed at 3 cycles to reflect the wait states the
    real part inserts above 8 MHz plus the cache-miss penalty; SRAM is
    single-cycle.
    """
    return MemoryMap(
        [
            MemoryRegion("sram", SRAM_BASE, SRAM_SIZE, volatile=True),
            MemoryRegion(
                "fram",
                FRAM_BASE,
                FRAM_SIZE,
                volatile=False,
                read_cycles=3,
                write_cycles=3,
            ),
        ]
    )
