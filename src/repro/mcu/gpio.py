"""General-purpose I/O pins of the target MCU.

GPIO matters to the evaluation in two ways:

- the case-study applications toggle a pin to signal main-loop progress
  (the "Main Loop" digital channel in the paper's oscilloscope traces);
- EDB's code markers are GPIO lines the target pulses for one cycle per
  watchpoint, and their (negligible) cost is quantified in §4.1.3.

Pins can also carry a static load such as an LED: Section 2.2's point
that an LED raises the WISP's draw five-fold is modelled by attaching a
load current to a pin, which the device adds to the MCU draw while the
pin is high.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.kernel import Simulator


@dataclass
class Pin:
    """One digital output pin."""

    name: str
    state: bool = False
    load_current: float = 0.0  # extra supply draw while high (amperes)
    listeners: list[Callable[[str, bool], None]] = field(default_factory=list)
    toggles: int = 0
    channel: str = ""  # precomputed trace channel ("gpio.<name>")


class GpioPort:
    """A bank of named digital pins with edge listeners.

    Pin states are volatile: a reboot drives every pin low (the MCU's
    reset state), which is why the paper's "main loop" traces go quiet
    when the device browns out.
    """

    def __init__(self, sim: Simulator, trace_channel: str = "gpio") -> None:
        self.sim = sim
        self.trace_channel = trace_channel
        self._pins: dict[str, Pin] = {}
        # total_load_current() is on the per-instruction hot path but
        # only changes on pin edges, which are rare by comparison — so
        # the sum is cached and edges invalidate it.
        self._load_current_cache: float | None = None

    def add_pin(self, name: str, load_current: float = 0.0) -> Pin:
        """Declare a pin; returns the :class:`Pin` record."""
        if name in self._pins:
            raise ValueError(f"pin {name!r} already exists")
        pin = Pin(
            name=name,
            load_current=load_current,
            channel=f"{self.trace_channel}.{name}",
        )
        self._pins[name] = pin
        self._load_current_cache = None
        return pin

    def pin(self, name: str) -> Pin:
        """Look up a pin, creating it on first use."""
        pin = self._pins.get(name)
        if pin is None:
            pin = self.add_pin(name)
        return pin

    def write(self, name: str, state: bool) -> None:
        """Drive a pin high or low, notifying listeners on a change."""
        pin = self._pins.get(name)
        if pin is None:
            pin = self.add_pin(name)
        if pin.state == state:
            return
        pin.state = state
        pin.toggles += 1
        if pin.load_current != 0.0:
            # A zero-load edge cannot change the load sum's value
            # (x + 0.0 == x for the non-negative loads pins carry), so
            # the cache — and everything keyed off it, notably the
            # device's energy fast path — stays exact without a flush.
            self._load_current_cache = None
        self.sim.trace.record(pin.channel, state)
        for listener in pin.listeners:
            listener(name, state)

    def toggle(self, name: str) -> None:
        """Invert a pin's state."""
        pin = self._pins.get(name)
        if pin is None:
            pin = self.add_pin(name)
        self.write(name, not pin.state)

    def read(self, name: str) -> bool:
        """Current state of a pin."""
        return self.pin(name).state

    def subscribe(self, name: str, listener: Callable[[str, bool], None]) -> None:
        """Call ``listener(name, state)`` on every edge of the pin."""
        self.pin(name).listeners.append(listener)

    def total_load_current(self) -> float:
        """Sum of load currents of all pins currently driven high."""
        total = self._load_current_cache
        if total is None:
            # The identical sum expression as before caching, so the
            # accumulated value is bit-for-bit the historical one.
            total = sum(p.load_current for p in self._pins.values() if p.state)
            self._load_current_cache = total
        return total

    def reset(self) -> None:
        """Drive all pins low (power-on reset state)."""
        for name in list(self._pins):
            self.write(name, False)

    def names(self) -> list[str]:
        """All declared pin names."""
        return sorted(self._pins)
