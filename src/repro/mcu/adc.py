"""A 12-bit successive-approximation ADC model.

Two ADCs appear in the system: the target MCU's own ADC (used by
applications to read sensors, and — expensively — to self-measure the
capacitor voltage) and EDB's ADC (used to digitise Vcap/Vreg for energy
monitoring and the save/restore control loops).  Both share this model:
12-bit quantisation over a reference voltage, an effective resolution of
about 1 mV, and optional Gaussian noise.

The paper's Table 3 bounds the save/restore accuracy by exactly this
ADC: "a 12-bit ADC with effective resolution of approximately 1 mV
imposes a theoretical lower bound on dE of 0.08 %".
"""

from __future__ import annotations

from typing import Callable

from repro.sim.rng import RngHub


class Adc:
    """12-bit ADC over a voltage reference.

    Parameters
    ----------
    reference_voltage:
        Full-scale input voltage; codes span ``[0, 2^bits - 1]``.
    bits:
        Resolution in bits (12 on both the MSP430 and EDB's MCU).
    noise_sigma_v:
        Gaussian input-referred noise in volts (0 disables noise).
    rng / stream:
        Random hub and stream name for the noise draws.
    """

    def __init__(
        self,
        reference_voltage: float = 3.3,
        bits: int = 12,
        noise_sigma_v: float = 0.0,
        rng: RngHub | None = None,
        stream: str = "adc-noise",
    ) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive (got {bits})")
        if reference_voltage <= 0.0:
            raise ValueError("reference voltage must be positive")
        self.reference_voltage = reference_voltage
        self.bits = bits
        self.noise_sigma_v = noise_sigma_v
        self._rng = rng
        self._stream = stream
        self.samples_taken = 0

    @property
    def max_code(self) -> int:
        """Largest output code (``2^bits - 1``)."""
        return (1 << self.bits) - 1

    @property
    def lsb_volts(self) -> float:
        """Voltage represented by one code step."""
        return self.reference_voltage / (1 << self.bits)

    def sample(self, voltage: float) -> int:
        """Digitise ``voltage`` to an output code (clamped to range)."""
        if self.noise_sigma_v > 0.0 and self._rng is not None:
            voltage += self._rng.gauss(self._stream, 0.0, self.noise_sigma_v)
        code = round(voltage / self.lsb_volts)
        self.samples_taken += 1
        return min(max(code, 0), self.max_code)

    def to_volts(self, code: int) -> float:
        """Convert an output code back to volts."""
        return code * self.lsb_volts

    def measure(self, voltage: float) -> float:
        """Digitise and convert back: the voltage as the MCU perceives it."""
        return self.to_volts(self.sample(voltage))


class AdcChannelMux:
    """Named analog channels in front of a single ADC.

    Register channels with a probe callable that returns the live
    voltage; ``read(name)`` samples it through the converter.
    """

    def __init__(self, adc: Adc) -> None:
        self.adc = adc
        self._channels: dict[str, Callable[[], float]] = {}

    def add_channel(self, name: str, probe: Callable[[], float]) -> None:
        """Connect an analog signal to a named channel."""
        if name in self._channels:
            raise ValueError(f"channel {name!r} already connected")
        self._channels[name] = probe

    def read(self, name: str) -> float:
        """Sample a channel, returning the ADC-quantised voltage."""
        try:
            probe = self._channels[name]
        except KeyError:
            raise KeyError(
                f"no ADC channel {name!r}; have {sorted(self._channels)}"
            ) from None
        return self.adc.measure(probe())

    def read_code(self, name: str) -> int:
        """Sample a channel, returning the raw ADC code."""
        return self.adc.sample(self._channels[name]())

    def channels(self) -> list[str]:
        """All connected channel names."""
        return sorted(self._channels)
