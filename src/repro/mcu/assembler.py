"""A two-pass assembler for the :mod:`repro.mcu.isa` instruction set.

Syntax (MSP430-flavoured)::

    ; comments run to end of line
            .org 0xA000          ; set location counter
    count:  .word 0              ; reserve/initialise a data word
            .equ LIMIT, 10       ; symbolic constant

    start:  mov #0, r4
    loop:   add #1, r4
            mark #1              ; EDB watchpoint marker
            cmp #LIMIT, r4
            jnz loop
            mov r4, &count
            halt

Operands: ``rN`` (register), ``#expr`` (immediate), ``&expr``
(absolute), ``expr(rN)`` (indexed), ``@rN`` (indirect).  Expressions are
integers (decimal, ``0x`` hex, ``0b`` binary), labels, or ``.equ``
constants.

:func:`assemble` returns a :class:`Program` with the encoded words, the
origin, the symbol table, and a map from byte address to source line —
which the debugger uses to print where a breakpoint hit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.mcu.isa import (
    Instruction,
    Mode,
    NUM_REGISTERS,
    Op,
    OPERAND_SHAPE,
    Operand,
    WORD_MASK,
    decode,
)


class AssemblyError(Exception):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


@dataclass
class Program:
    """An assembled program image."""

    origin: int
    words: list[int]
    symbols: dict[str, int]
    line_map: dict[int, int] = field(default_factory=dict)  # byte addr -> line no

    @property
    def size_bytes(self) -> int:
        """Image size in bytes."""
        return 2 * len(self.words)

    @property
    def entry(self) -> int:
        """Entry point: the ``start`` symbol if defined, else the origin."""
        return self.symbols.get("start", self.origin)

    def to_bytes(self) -> bytes:
        """Little-endian byte image suitable for loading into memory."""
        out = bytearray()
        for word in self.words:
            out.append(word & 0xFF)
            out.append((word >> 8) & 0xFF)
        return bytes(out)


_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REG_RE = re.compile(r"^[rR](\d{1,2})$")
_IDX_RE = re.compile(r"^(.+)\(\s*[rR](\d{1,2})\s*\)$")

_ALIASES = {"jeq": Op.JZ, "jne": Op.JNZ, "br": Op.JMP}


def _parse_int(text: str) -> int | None:
    text = text.strip()
    sign = 1
    if text.startswith("-"):
        sign, text = -1, text[1:].strip()
    try:
        if text.lower().startswith("0x"):
            return sign * int(text, 16)
        if text.lower().startswith("0b"):
            return sign * int(text, 2)
        return sign * int(text, 10)
    except ValueError:
        return None


@dataclass
class _Line:
    no: int
    label: str | None
    mnemonic: str | None
    operands: list[str]


def _tokenise(source: str) -> list[_Line]:
    lines: list[_Line] = []
    for no, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].rstrip()
        if not text.strip():
            continue
        label = None
        body = text.strip()
        if ":" in body.split()[0]:
            label_part, body = body.split(":", 1)
            label = label_part.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"bad label {label!r}", no)
            body = body.strip()
        if not body:
            lines.append(_Line(no, label, None, []))
            continue
        parts = body.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
        )
        lines.append(_Line(no, label, mnemonic, operands))
    return lines


class _Assembler:
    def __init__(self, source: str, origin: int) -> None:
        self.lines = _tokenise(source)
        self.origin = origin
        self.symbols: dict[str, int] = {}

    # -- pass 1: lay out addresses, collect symbols -------------------------
    def _operand_size(self, text: str) -> int:
        """Extension words contributed by one operand (pass-1 estimate)."""
        text = text.strip()
        if _REG_RE.match(text) or text.startswith("@"):
            return 0
        return 1  # immediate, absolute, or indexed

    def _layout(self) -> None:
        lc = self.origin
        self.addresses: dict[int, int] = {}  # line index -> byte address
        for index, line in enumerate(self.lines):
            if line.mnemonic == ".equ":
                if len(line.operands) != 2:
                    raise AssemblyError(".equ needs NAME, VALUE", line.no)
                name = line.operands[0]
                value = _parse_int(line.operands[1])
                if not _LABEL_RE.match(name) or value is None:
                    raise AssemblyError("bad .equ directive", line.no)
                self._define(name, value & WORD_MASK, line.no)
                continue
            if line.mnemonic == ".org":
                if len(line.operands) != 1:
                    raise AssemblyError(".org needs one address", line.no)
                value = _parse_int(line.operands[0])
                if value is None or value % 2:
                    raise AssemblyError("bad .org address", line.no)
                lc = value
            if line.label:
                self._define(line.label, lc, line.no)
            if line.mnemonic is None or line.mnemonic == ".org":
                self.addresses[index] = lc
                continue
            self.addresses[index] = lc
            if line.mnemonic == ".word":
                lc += 2 * max(1, len(line.operands))
            elif line.mnemonic == ".space":
                count = _parse_int(line.operands[0]) if line.operands else None
                if count is None or count < 0 or count % 2:
                    raise AssemblyError(".space needs an even byte count", line.no)
                lc += count
            else:
                lc += self._instruction_size(line)

    def _define(self, name: str, value: int, line_no: int) -> None:
        if name in self.symbols:
            raise AssemblyError(f"symbol {name!r} redefined", line_no)
        self.symbols[name] = value

    def _instruction_size(self, line: _Line) -> int:
        op = self._opcode(line)
        has_src, has_dst = OPERAND_SHAPE[op]
        expected = int(has_src) + int(has_dst)
        if len(line.operands) != expected:
            raise AssemblyError(
                f"{op.name.lower()} expects {expected} operand(s), "
                f"got {len(line.operands)}",
                line.no,
            )
        extensions = sum(self._operand_size(text) for text in line.operands)
        return 2 * (2 + extensions)

    def _opcode(self, line: _Line) -> Op:
        assert line.mnemonic is not None
        if line.mnemonic in _ALIASES:
            return _ALIASES[line.mnemonic]
        try:
            return Op[line.mnemonic.upper()]
        except KeyError:
            raise AssemblyError(f"unknown mnemonic {line.mnemonic!r}", line.no) from None

    # -- pass 2: encode -------------------------------------------------------
    def _eval(self, text: str, line_no: int) -> int:
        value = _parse_int(text)
        if value is not None:
            return value & WORD_MASK
        if text in self.symbols:
            return self.symbols[text]
        raise AssemblyError(f"undefined symbol {text!r}", line_no)

    def _parse_operand(self, text: str, line_no: int) -> Operand:
        text = text.strip()
        match = _REG_RE.match(text)
        if match:
            n = int(match.group(1))
            if n >= NUM_REGISTERS:
                raise AssemblyError(f"no such register r{n}", line_no)
            return Operand(Mode.REG, reg=n)
        if text.startswith("#"):
            return Operand(Mode.IMM, value=self._eval(text[1:], line_no))
        if text.startswith("&"):
            return Operand(Mode.ABS, value=self._eval(text[1:], line_no))
        if text.startswith("@"):
            match = _REG_RE.match(text[1:])
            if not match:
                raise AssemblyError(f"bad indirect operand {text!r}", line_no)
            n = int(match.group(1))
            if n >= NUM_REGISTERS:
                raise AssemblyError(f"no such register r{n}", line_no)
            return Operand(Mode.IND, reg=n)
        match = _IDX_RE.match(text)
        if match:
            n = int(match.group(2))
            if n >= NUM_REGISTERS:
                raise AssemblyError(f"no such register r{n}", line_no)
            return Operand(
                Mode.IDX, reg=n, value=self._eval(match.group(1), line_no)
            )
        # A bare symbol/number is a jump/call convenience: immediate.
        return Operand(Mode.IMM, value=self._eval(text, line_no))

    def assemble(self) -> Program:
        self._layout()
        # The image spans from the lowest to the highest laid-out address.
        words: dict[int, int] = {}
        line_map: dict[int, int] = {}
        for index, line in enumerate(self.lines):
            if line.mnemonic in (None, ".equ", ".org"):
                continue
            address = self.addresses[index]
            if line.mnemonic == ".word":
                values = line.operands or ["0"]
                for text in values:
                    words[address] = self._eval(text, line.no)
                    address += 2
                continue
            if line.mnemonic == ".space":
                count = _parse_int(line.operands[0])
                assert count is not None
                for offset in range(0, count, 2):
                    words[address + offset] = 0
                continue
            op = self._opcode(line)
            has_src, has_dst = OPERAND_SHAPE[op]
            operands = [self._parse_operand(t, line.no) for t in line.operands]
            src = operands[0] if has_src else Operand(Mode.NONE)
            dst = operands[-1] if has_dst and operands else Operand(Mode.NONE)
            if has_dst and not has_src:
                dst = operands[0]
                src = Operand(Mode.NONE)
            try:
                instruction = Instruction(op=op, src=src, dst=dst)
            except ValueError as exc:
                raise AssemblyError(str(exc), line.no) from exc
            line_map[address] = line.no
            for word in instruction.encode():
                words[address] = word
                address += 2
        if not words:
            raise AssemblyError("program is empty")
        base = min(words)
        top = max(words) + 2
        image = [words.get(addr, 0) for addr in range(base, top, 2)]
        return Program(
            origin=base, words=image, symbols=dict(self.symbols), line_map=line_map
        )


def assemble(source: str, origin: int = 0xA000) -> Program:
    """Assemble MSP430-flavoured source text into a :class:`Program`."""
    return _Assembler(source, origin).assemble()


def disassemble(
    program: Program, start: int | None = None
) -> list[tuple[int, str]]:
    """Best-effort linear disassembly: ``[(address, text), ...]``.

    Decoding begins at ``start`` (default: the program entry point, so
    data words placed before the code are skipped).  Data words
    interleaved *within* code will decode as garbage or raise; callers
    that mix them should slice by symbols first.
    """
    image = {program.origin + 2 * i: w for i, w in enumerate(program.words)}

    def fetch(address: int) -> int:
        return image.get(address, 0)

    out: list[tuple[int, str]] = []
    address = start if start is not None else program.entry
    end = program.origin + program.size_bytes
    while address < end:
        instruction, size = decode(fetch, address)
        out.append((address, instruction.render()))
        address += size
    return out
