"""The target microcontroller: an MSP430-class MCU simulator.

The WISP 5's MCU (an MSP430FR5969) has a mix of volatile state
(register file, SRAM) and non-volatile state (FRAM).  A power failure
clears the volatile state and transfers control back to the program
entry point; non-volatile state survives.  That asymmetry is what makes
intermittence bugs possible, so the simulator models it directly:

- :mod:`repro.mcu.memory` — byte-addressable SRAM/FRAM regions with an
  MSP430-flavoured memory map and hard faults on wild accesses.
- :mod:`repro.mcu.isa`, :mod:`repro.mcu.assembler`, :mod:`repro.mcu.cpu`
  — a compact 16-bit ISA, its assembler, and an interpreting core with
  per-instruction cycle costs (used by the checkpointing runtime).
- :mod:`repro.mcu.hlapi` — the high-level, op-costed program model the
  paper's case-study applications are written against.
- :mod:`repro.mcu.device` — :class:`TargetDevice`, gluing CPU, memory,
  peripherals, and the intermittent power system together.
"""

from repro.mcu.device import PowerFailure, TargetDevice
from repro.mcu.memory import (
    FRAM_BASE,
    FRAM_SIZE,
    MemoryFault,
    MemoryMap,
    MemoryRegion,
    SRAM_BASE,
    SRAM_SIZE,
    make_msp430_memory_map,
)

__all__ = [
    "FRAM_BASE",
    "FRAM_SIZE",
    "MemoryFault",
    "MemoryMap",
    "MemoryRegion",
    "PowerFailure",
    "SRAM_BASE",
    "SRAM_SIZE",
    "TargetDevice",
    "make_msp430_memory_map",
]
