"""Dynamic basic-block coverage recording for the ISA core.

A :class:`CoverageRecorder` attached to :attr:`Cpu.coverage` collects
the ordered set of *dynamic block entry* PCs: the reset entry point plus
the landing PC of every taken control transfer.  That definition is a
property of the executed trajectory, not of the dispatch mechanism, so
the same program run produces the same record whether instructions
retire through translated blocks (``step_block``) or the single-step
interpreter (``step`` — including the ``REPRO_NO_BLOCKCACHE=1`` kill
switch).  The fuzzer's coverage signatures lean on exactly that
invariance for their bit-identity contract.

Recording is first-seen-ordered and deduplicated, so the signature
distinguishes "reached block A then B" from "reached B then A" while
staying O(unique blocks) in space no matter how long the run is.
"""

from __future__ import annotations

import hashlib


class CoverageRecorder:
    """Ordered, deduplicated set of executed block-entry PCs."""

    __slots__ = ("_order", "_seen")

    def __init__(self) -> None:
        self._order: list[int] = []
        self._seen: set[int] = set()

    def record(self, pc: int) -> None:
        """Note a block entry (idempotent per PC)."""
        if pc not in self._seen:
            self._seen.add(pc)
            self._order.append(pc)

    def __len__(self) -> int:
        return len(self._order)

    def blocks(self) -> tuple[int, ...]:
        """Entry PCs in first-seen order."""
        return tuple(self._order)

    def signature(self) -> str:
        """Stable hash of the ordered entry set (16 hex chars)."""
        digest = hashlib.sha256()
        for pc in self._order:
            digest.update(pc.to_bytes(2, "big"))
        return digest.hexdigest()[:16]

    def clear(self) -> None:
        """Forget everything (a fresh run on the same CPU)."""
        self._order.clear()
        self._seen.clear()

    # -- snapshot integration ------------------------------------------------
    def export_state(self) -> tuple[int, ...]:
        """The recorder's full state, as an immutable value."""
        return tuple(self._order)

    def restore_state(self, state: tuple[int, ...]) -> None:
        """Rewind to a previously exported state."""
        self._order = list(state)
        self._seen = set(state)
