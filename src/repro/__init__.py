"""EDB: an energy-interference-free debugger for intermittent systems.

A full-stack Python reproduction of *"An Energy-interference-free
Hardware-Software Debugger for Intermittent Energy-harvesting Systems"*
(Colin, Harvey, Lucia, Sample — ASPLOS 2016), simulating the entire
hardware stack the paper builds on: a WISP-class energy-harvesting
target (MSP430-style MCU, 47 uF storage capacitor, RF harvesting), the
EDB debugger board (analog front end, charge/discharge circuit, taps),
and the co-designed software on both sides.

Quick start::

    from repro import (
        EDB, IntermittentExecutor, Simulator, TargetDevice,
        make_wisp_power_system,
    )
    from repro.apps import LinkedListApp

    sim = Simulator(seed=7)
    power = make_wisp_power_system(sim)
    target = TargetDevice(sim, power)
    edb = EDB(sim, target)
    edb.trace("energy")

    app = LinkedListApp(use_assert=True)
    executor = IntermittentExecutor(sim, target, app, edb=edb.libedb())
    result = executor.run(duration=5.0)   # seconds of simulated time
    print(result.status)                  # assert_failed: bug caught live

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for the per-table/figure reproduction record.
"""

from repro.core.debugger import EDB
from repro.mcu.device import PowerFailure, TargetDevice
from repro.power.wisp import WispPowerConstants, make_wisp_power_system
from repro.runtime.executor import IntermittentExecutor, RunResult, RunStatus
from repro.sim.kernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "EDB",
    "IntermittentExecutor",
    "PowerFailure",
    "RunResult",
    "RunStatus",
    "Simulator",
    "TargetDevice",
    "WispPowerConstants",
    "make_wisp_power_system",
    "__version__",
]
