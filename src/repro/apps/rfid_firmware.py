"""The WISP RFID firmware of §5.3.4 (Figure 12).

The firmware decodes reader commands from the demodulated RX bit
stream in software and replies with the tag's identifier by
backscatter.  Between commands it sleeps at the harvesting duty cycle;
while decoding and replying it burns real cycles, so a sagging supply
can (and does) cut a decode short — which is exactly why the paper
needs an *external* decoder on EDB's side to tell corrupted-in-flight
messages apart from messages the tag failed to parse.
"""

from __future__ import annotations

from repro.io.rfid.channel import RfidChannel
from repro.io.rfid.protocol import (
    CommandKind,
    ReaderCommand,
    ReplyKind,
    RfidDecodeError,
    TagReply,
)
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.nonvolatile import NVCounter

DECODE_CYCLES_PER_BIT = 60  # software demodulation + framing per bit
REPLY_SETUP_CYCLES = 400  # assemble the response, seed the modulator
BACKSCATTER_CYCLES_PER_BIT = 8  # modulator toggling per reply bit
POLL_BUSY_CYCLES = 800  # tight edge-sampling loop between commands


class RfidFirmwareApp:
    """WISP RFID firmware: decode queries, reply with the tag EPC.

    Parameters
    ----------
    channel:
        The air interface shared with an :class:`RFIDReader`.
    epc_word:
        The identifier word sent in replies.
    max_replies:
        Stop after this many replies (``None`` = run forever).
    """

    name = "wisp-rfid-firmware"

    def __init__(
        self,
        channel: RfidChannel,
        epc_word: int = 0xB0B0,
        max_replies: int | None = None,
    ) -> None:
        self.channel = channel
        self.epc_word = epc_word
        self.max_replies = max_replies
        self.commands_decoded = 0
        self.decode_failures = 0
        self.replies_attempted = 0

    def flash(self, api: DeviceAPI) -> None:
        """Zero the NV reply counter."""
        api.device.memory.write_u16(api.nv_var("counter.rfid.replies"), 0)
        self.commands_decoded = 0
        self.decode_failures = 0
        self.replies_attempted = 0

    def main(self, api: DeviceAPI) -> None:
        """Poll the demodulator; decode; reply."""
        # Demodulated bits buffered before this boot are gone: the
        # demodulator front end is volatile state.
        self.channel.clear_tag_queue()
        replies = NVCounter(api, "rfid.replies")
        while True:
            delivered = self.channel.pop_tag_command()
            api.branch()
            if delivered is None:
                # The real firmware busy-samples the demodulator for
                # edges; listening is not free, which is why the tag
                # still power-cycles at 1 m (Figure 12's sawtooth).
                api.compute(POLL_BUSY_CYCLES)
                continue
            # Software decode: per-bit cost, interruptible by brown-out.
            for _ in delivered.bits:
                api.compute(DECODE_CYCLES_PER_BIT)
            try:
                command = ReaderCommand.decode_bits(delivered.bits)
            except RfidDecodeError:
                self.decode_failures += 1
                continue
            self.commands_decoded += 1
            api.branch()
            if command.kind in (CommandKind.QUERY, CommandKind.QUERYREP):
                reply = TagReply(ReplyKind.GENERIC, payload=(self.epc_word,))
                api.compute(REPLY_SETUP_CYCLES)
                api.compute(BACKSCATTER_CYCLES_PER_BIT * reply.bit_length())
                self.replies_attempted += 1
                self.channel.send_reply(reply)
                count = replies.increment()
                api.branch()
                if self.max_replies is not None and count >= self.max_replies:
                    raise ProgramComplete(count)
            # ACKs carry no work for this firmware subset.
