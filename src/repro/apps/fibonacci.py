"""The Fibonacci list generator of §5.3.2 (Figures 8, 9).

The app generates the Fibonacci sequence (mod 2^16) and appends each
number to a non-volatile doubly-linked list; a GPIO pin toggles per
iteration.  The *debug build* begins every ``main()`` entry with an
energy-hungry consistency check that traverses the whole list and
verifies the pointer structure and the Fibonacci recurrence in every
node.

The check's cost is proportional to the list length, so once the list
is long enough the check alone consumes an entire charge-discharge
cycle and the main loop never runs again — the paper observed the hang
at roughly 555 items.  Wrapping the check in EDB energy guards
(``use_energy_guard=True``) moves its cost onto tethered power and the
main loop keeps executing indefinitely.
"""

from __future__ import annotations

from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.nonvolatile import NVLinkedList, SafeNVLinkedList


class FibonacciApp:
    """Persistent Fibonacci generator with an optional debug build.

    Parameters
    ----------
    debug_build:
        Include the O(n) consistency check at the top of ``main``.
    use_energy_guard:
        Wrap the check in EDB energy guards (needs libEDB linked in).
    capacity:
        Node-pool size (bounds how long the list can grow).
    check_node_cycles:
        Extra per-node cost of the check beyond its memory traffic
        (assert machinery, redundant recomputation).  The default is
        calibrated so the un-guarded debug build hangs at a list length
        in the neighbourhood of the paper's ~555 items.
    iteration_cycles:
        Per-iteration work besides the append itself (number
        generation, statistics, the GPIO heartbeat) — this is what
        spreads list growth across many charge/discharge cycles.
    target_length:
        Raise :class:`ProgramComplete` when the list reaches this
        length (``None`` = run forever).
    use_safe_list:
        Use the intermittence-safe list with reboot repair (the
        protected baseline for differential campaigns).
    """

    name = "fibonacci-list"

    def __init__(
        self,
        debug_build: bool = True,
        use_energy_guard: bool = False,
        capacity: int = 800,
        check_node_cycles: int = 315,
        iteration_cycles: int = 2000,
        target_length: int | None = None,
        use_safe_list: bool = False,
    ) -> None:
        self.debug_build = debug_build
        self.use_energy_guard = use_energy_guard
        self.capacity = capacity
        self.check_node_cycles = check_node_cycles
        self.iteration_cycles = iteration_cycles
        self.target_length = target_length
        self.use_safe_list = use_safe_list
        self.checks_run = 0
        self.check_failures = 0

    def flash(self, api: DeviceAPI) -> None:
        """Initialise the list with the seed values F(0)=0, F(1)=1."""
        nv_list = self._list(api)
        nv_list.init()
        for index, seed in enumerate((0, 1)):
            node = nv_list.node(index)
            # Direct image writes: flashing happens off-device.
            api.device.memory.write_u16(
                node.address + node.layout.offset("value"), seed
            )
        nv_list.append(nv_list.node_address(0))
        nv_list.append(nv_list.node_address(1))
        api.device.memory.write_u16(api.nv_var("fib.alloc"), 2)

    def _list(self, api: DeviceAPI) -> NVLinkedList:
        cls = SafeNVLinkedList if self.use_safe_list else NVLinkedList
        return cls(api, "fib", capacity=self.capacity)

    # -- the debug build's consistency check ------------------------------------
    def consistency_check(self, api: DeviceAPI, nv_list: NVLinkedList) -> bool:
        """Traverse the list verifying structure and the recurrence.

        Cost scales with list length — the property that makes this
        check lethal on harvested energy without an energy guard.
        """
        self.checks_run += 1
        ok = True
        prev_addr = 0
        prev_value: int | None = None
        prev_prev_value: int | None = None
        cursor = nv_list.header.get("head")
        visited = 0
        while cursor != 0 and visited <= self.capacity + 2:
            node = nv_list.node_at(cursor)
            if node.get("prev") != prev_addr:
                ok = False
            value = node.get("value")
            api.branch()
            if prev_value is not None and prev_prev_value is not None:
                expected = (prev_value + prev_prev_value) & 0xFFFF
                if value != expected:
                    ok = False
            # Assert machinery / redundant verification work.
            api.compute(self.check_node_cycles)
            prev_prev_value, prev_value = prev_value, value
            prev_addr = cursor
            cursor = node.get("next")
            visited += 1
        if prev_addr != nv_list.header.get("tail"):
            ok = False
        if visited != nv_list.length():
            ok = False
        if not ok:
            self.check_failures += 1
        return ok

    # -- one powered execution attempt ----------------------------------------------
    def main(self, api: DeviceAPI) -> None:
        """Figure 8's main: debug check first, then the generate loop."""
        nv_list = self._list(api)
        if self.use_safe_list:
            nv_list.repair()  # type: ignore[attr-defined]
        if self.debug_build:
            if self.use_energy_guard:
                with api.edb_energy_guard():
                    self.consistency_check(api, nv_list)
            else:
                self.consistency_check(api, nv_list)
        alloc_addr = api.nv_var("fib.alloc")
        while True:
            api.gpio_toggle("main_loop")
            # Fresh-node allocation: bump the NV counter *before*
            # linking, so a reboot can at worst leak a pool slot, never
            # hand the same node out twice (which would self-loop the
            # chain).
            alloc = api.load_u16(alloc_addr)
            api.branch()
            if alloc >= self.capacity:
                raise ProgramComplete(nv_list.length())
            if self.target_length is not None and alloc >= self.target_length:
                raise ProgramComplete(nv_list.length())
            api.store_u16(alloc_addr, alloc + 1)
            tail_addr = nv_list.header.get("tail")
            tail = nv_list.node_at(tail_addr)
            prev_addr = tail.get("prev")
            value = (
                tail.get("value") + nv_list.node_at(prev_addr).get("value")
            ) & 0xFFFF
            node = nv_list.node(alloc)
            node.set("value", value)
            node.set("buf", 0)
            nv_list.append(nv_list.node_address(alloc))
            api.compute(self.iteration_cycles)
            api.gpio_toggle("main_loop")
