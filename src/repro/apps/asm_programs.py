"""Assembly versions of intermittent workloads for the ISA core.

The high-level apps in this package model the paper's C programs at
operation granularity; these are the same ideas expressed in actual
assembly for the instruction-level core — useful for exercising the
checkpointing runtime, program-event monitoring of real code (``mark``
instructions are EDB watchpoints), and the debugger's register/memory
inspection on something with a genuine PC and stack.

Each entry is a source string plus an ``assemble_*`` helper returning
the :class:`~repro.mcu.assembler.Program`.
"""

from __future__ import annotations

from repro.mcu.assembler import Program, assemble

# -- persistent Fibonacci (the Figure 8 idea, registers + FRAM) ------------
#
# Generates Fibonacci numbers into an FRAM array.  The *index* is kept
# in FRAM and re-read at boot, so progress survives reboots one element
# at a time (each store is idempotent for a given index) — the
# assembly analogue of keeping state in non-volatile memory.
FIB_SOURCE = """
        .org 0xA000
index:  .word 2              ; next element to produce (NV progress)
array:  .space 128           ; up to 64 Fibonacci values
        .equ COUNT, 40

start:  mov &index, r4       ; resume from NV progress
next:   cmp #COUNT, r4
        jz  done
        mark #1              ; watchpoint: producing one element
        ; r6 = array[r4-1], r7 = array[r4-2]
        mov r4, r5
        dec r5
        shl r5               ; byte offset of element r4-1
        mov #array, r8
        add r5, r8
        mov @r8, r6
        sub #2, r8
        mov @r8, r7
        add r6, r7           ; next value
        mov r4, r5
        shl r5
        mov #array, r8
        add r5, r8
        mov r7, @r8
        inc r4
        mov r4, &index       ; publish progress (single word: atomic)
        jmp next
done:   mark #2              ; watchpoint: workload complete
        halt
"""

# -- long register-resident summation (the checkpointing showcase) ---------
SUM_SOURCE_TEMPLATE = """
        .org 0xA000
total:  .word 0
start:  mov #0, r4
        mov #0, r5
loop:   add #1, r4
        add r4, r5
        out r4, #0x10        ; checkpoint request port
        cmp #{n}, r4
        jnz loop
        mov r5, &total
        mark #2
        halt
"""

# -- a GPIO heartbeat loop (the "main loop" oscilloscope channel) ----------
HEARTBEAT_SOURCE = """
        .org 0xA000
        .equ GPIO_PORT, 0x01
beats:  .word 0
start:  mov #0, r6
loop:   mov #1, r7
        out r7, #GPIO_PORT
        mov #0, r7
        out r7, #GPIO_PORT
        inc r6
        mov r6, &beats
        mark #1
        jmp loop
"""


def assemble_fibonacci() -> Program:
    """The FRAM-resident Fibonacci generator (seeds F0=0, F1=1)."""
    return assemble(FIB_SOURCE)


def seed_fibonacci(device, program: Program) -> None:
    """Write the two seed values into the array (part of flashing)."""
    array = program.symbols["array"]
    device.memory.write_u16(array, 0)
    device.memory.write_u16(array + 2, 1)
    device.memory.write_u16(program.symbols["index"], 2)


def read_fibonacci(device, program: Program, count: int) -> list[int]:
    """Host-side readout of the produced sequence."""
    array = program.symbols["array"]
    return [device.memory.read_u16(array + 2 * i) for i in range(count)]


def assemble_summation(n: int = 30000) -> Program:
    """Register-resident sum of 1..n (needs checkpoints to finish)."""
    if not 0 < n <= 0xFFFF:
        raise ValueError(f"n out of range: {n}")
    return assemble(SUM_SOURCE_TEMPLATE.format(n=n))


def assemble_heartbeat() -> Program:
    """An endless GPIO-toggling loop (port 0x01 drives a pin)."""
    return assemble(HEARTBEAT_SOURCE)
