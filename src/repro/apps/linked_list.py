"""The linked-list test program of §5.3.1 (Figures 3, 6, 7).

The main loop maintains a doubly-linked list in non-volatile memory.
Each iteration appends a node (carrying a pointer to a buffer in
*volatile* memory) when the list is empty, or removes the node and
memsets the buffer it points to otherwise.  A GPIO pin toggles at the
start and end of each iteration — the "Main Loop" channel in the
paper's oscilloscope traces.

Under continuous power the list stays correct forever.  Under
intermittent power, a reboot inside ``append``'s vulnerable window
strands the tail pointer; the next ``remove`` then dereferences a NULL
``next`` pointer and writes through a wild pointer — after which the
device crash-loops on every subsequent boot ("the only way to recover
is to re-flash the device").

With ``use_assert=True`` (and EDB linked in), the Figure 6 invariant —
*the tail pointer points to the last element* — is asserted before
every list manipulation, catching the inconsistency at its source.
"""

from __future__ import annotations

from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.nonvolatile import NVLinkedList, SafeNVLinkedList


class LinkedListApp:
    """The paper's custom linked-list test program.

    Parameters
    ----------
    use_assert:
        Insert the Figure 6 ``assert(tail is last)`` invariant checks
        (only meaningful when libEDB is linked into the executor).
    use_safe_list:
        Swap in the intermittence-safe list variant with reboot repair
        (the fixed baseline; the bug never manifests).
    max_iterations:
        Raise :class:`ProgramComplete` after this many completed
        iterations (``None`` = run forever, as on a real deployment).
    update_cycles:
        Base cost of the ``update(e)`` phase; the effective cost varies
        per iteration (data-dependent work), which makes the brown-out
        point sweep across the loop body over successive cycles.
    """

    name = "linked-list-test"

    BUFFER_BYTES = 16

    def __init__(
        self,
        use_assert: bool = False,
        use_safe_list: bool = False,
        max_iterations: int | None = None,
        update_cycles: int = 300,
    ) -> None:
        self.use_assert = use_assert
        self.use_safe_list = use_safe_list
        self.max_iterations = max_iterations
        self.update_cycles = update_cycles
        self.iterations_completed = 0

    # -- FRAM image (set once, like flashing the device) ---------------------
    def flash(self, api: DeviceAPI) -> None:
        """Initialise the non-volatile list and counters."""
        nv_list = self._list(api)
        nv_list.init()
        api.device.memory.write_u16(api.nv_var("ll.counter"), 0)
        self.iterations_completed = 0

    def _list(self, api: DeviceAPI) -> NVLinkedList:
        cls = SafeNVLinkedList if self.use_safe_list else NVLinkedList
        return cls(api, "ll", capacity=4)

    def _check_invariant(self, api: DeviceAPI, nv_list: NVLinkedList) -> None:
        if self.use_assert:
            api.edb_assert(
                nv_list.tail_is_last(), "list tail does not point to last element"
            )

    # -- one powered execution attempt ------------------------------------------
    def main(self, api: DeviceAPI) -> None:
        """The Figure 6 main loop (entered fresh after every reboot)."""
        nv_list = self._list(api)
        if self.use_safe_list:
            nv_list.repair()  # type: ignore[attr-defined]
        counter_addr = api.nv_var("ll.counter")
        buffer_addr = api.sram_var("ll.buffer", self.BUFFER_BYTES)
        while True:
            api.gpio_toggle("main_loop")
            counter = api.load_u16(counter_addr)
            # Emptiness as the C code would test it: both list pointers
            # NULL.  A corrupted list disagrees between the two — and
            # any disagreement sends this iteration down the remove
            # path into undefined behaviour (exactly the Figure 3
            # failure chain).
            empty = (
                nv_list.header.get("head") == 0
                and nv_list.header.get("tail") == 0
            )
            api.branch()
            if empty:
                # Append a fresh node pointing at the volatile buffer.
                node = nv_list.node(0)
                node.set("value", counter)
                node.set("buf", buffer_addr)
                self._check_invariant(api, nv_list)
                nv_list.append(nv_list.node_address(0))
            else:
                # Remove the node and clear the buffer it points to.
                head = nv_list.header.get("head")
                self._check_invariant(api, nv_list)
                node = nv_list.node_at(head)
                buf_ptr = node.get("buf")
                nv_list.remove(head)
                api.memset(buf_ptr, 0xAB, self.BUFFER_BYTES)
            # update(e): data-dependent work, varies per iteration.
            api.compute(self.update_cycles + (counter % 7) * 40)
            api.store_u16(counter_addr, (counter + 1) & 0xFFFF)
            api.gpio_toggle("main_loop")
            self.iterations_completed += 1
            api.branch()
            if (
                self.max_iterations is not None
                and self.iterations_completed >= self.max_iterations
            ):
                raise ProgramComplete(self.iterations_completed)
