"""Sensor peripherals: the accelerometer behind the AR case study.

The accelerometer sits on the target's I2C bus (like the ADXL362 on the
WISP 5) and serves 16-bit X/Y/Z samples out of its data registers.  A
:class:`MotionProfile` drives what those registers read at any
simulated time — stationary (gravity plus noise), walking (a periodic
gait), or a schedule alternating between the two, which is what gives
the activity-recognition app a ground truth to be scored against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import Simulator

# Register map (ADXL362-flavoured): six data registers, one status.
REG_XDATA_L = 0x00
REG_STATUS = 0x0B
I2C_ADDRESS = 0x1D

GRAVITY_COUNTS = 1000  # 1 g in sensor counts


@dataclass(frozen=True)
class MotionSegment:
    """One stretch of ground-truth motion."""

    moving: bool
    duration_s: float


class MotionProfile:
    """Ground-truth motion as a function of simulated time.

    Parameters
    ----------
    segments:
        The schedule; cycles if ``repeat`` is true.
    walk_amplitude:
        Peak acceleration of the gait oscillation, in counts.
    walk_frequency_hz:
        Step frequency of the gait.
    noise_counts:
        Gaussian sensor noise sigma, in counts.
    """

    def __init__(
        self,
        segments: list[MotionSegment] | None = None,
        walk_amplitude: int = 400,
        walk_frequency_hz: float = 2.0,
        noise_counts: float = 12.0,
        repeat: bool = True,
    ) -> None:
        self.segments = segments or [
            MotionSegment(moving=False, duration_s=0.5),
            MotionSegment(moving=True, duration_s=0.5),
        ]
        if not self.segments:
            raise ValueError("motion profile needs at least one segment")
        self.walk_amplitude = walk_amplitude
        self.walk_frequency_hz = walk_frequency_hz
        self.noise_counts = noise_counts
        self.repeat = repeat
        self._period = sum(s.duration_s for s in self.segments)

    @staticmethod
    def stationary() -> "MotionProfile":
        """Always-still profile."""
        return MotionProfile([MotionSegment(moving=False, duration_s=1.0)])

    @staticmethod
    def walking() -> "MotionProfile":
        """Always-moving profile."""
        return MotionProfile([MotionSegment(moving=True, duration_s=1.0)])

    def is_moving(self, t: float) -> bool:
        """Ground truth at time ``t``."""
        if self._period <= 0.0:
            return self.segments[0].moving
        phase = t % self._period if self.repeat else min(t, self._period - 1e-12)
        for segment in self.segments:
            if phase < segment.duration_s:
                return segment.moving
            phase -= segment.duration_s
        return self.segments[-1].moving

    def sample(self, t: float, noise: Callable[[], float]) -> tuple[int, int, int]:
        """An (x, y, z) sample in counts at time ``t``."""
        x, y, z = 0.0, 0.0, float(GRAVITY_COUNTS)
        if self.is_moving(t):
            swing = self.walk_amplitude * math.sin(
                2.0 * math.pi * self.walk_frequency_hz * t
            )
            bounce = 0.6 * self.walk_amplitude * math.sin(
                4.0 * math.pi * self.walk_frequency_hz * t + 0.7
            )
            x += swing
            z += bounce
        return (
            int(x + noise()),
            int(y + noise()),
            int(z + noise()),
        )


class Accelerometer:
    """An I2C accelerometer serving samples from a motion profile.

    Implements the :class:`repro.io.i2c.I2CDevice` protocol.  A read of
    the first data register latches a fresh sample; subsequent register
    reads within the same transaction return bytes of the latched
    sample — matching how burst reads of real parts behave.
    """

    def __init__(self, sim: Simulator, profile: MotionProfile) -> None:
        self.sim = sim
        self.profile = profile
        self._latched: tuple[int, int, int] = (0, 0, GRAVITY_COUNTS)
        self.samples_served = 0

    def _noise(self) -> float:
        return self.sim.rng.gauss("accel-noise", 0.0, self.profile.noise_counts)

    def read_register(self, register: int) -> int:
        """Serve one register byte."""
        if register == REG_XDATA_L:
            self._latched = self.profile.sample(self.sim.now, self._noise)
            self.samples_served += 1
        if REG_XDATA_L <= register < REG_XDATA_L + 6:
            axis, half = divmod(register - REG_XDATA_L, 2)
            value = self._latched[axis] & 0xFFFF
            return (value >> 8) if half else (value & 0xFF)
        if register == REG_STATUS:
            return 0x01  # data ready
        return 0x00

    def write_register(self, register: int, value: int) -> None:
        """Configuration writes are accepted and ignored."""

    @staticmethod
    def decode_sample(data: bytes) -> tuple[int, int, int]:
        """Unpack a 6-byte burst read into signed (x, y, z) counts."""
        if len(data) != 6:
            raise ValueError(f"expected 6 bytes, got {len(data)}")
        out = []
        for axis in range(3):
            raw = data[2 * axis] | (data[2 * axis + 1] << 8)
            out.append(raw - 0x10000 if raw & 0x8000 else raw)
        return tuple(out)  # type: ignore[return-value]
