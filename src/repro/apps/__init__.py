"""The evaluation's application workloads (§5.1, §5.3).

Four programs run on the simulated WISP, mirroring the paper's set:

- :class:`~repro.apps.linked_list.LinkedListApp` — the custom test
  program that manipulates a non-volatile doubly-linked list and
  corrupts it under intermittent power (§5.3.1, Figures 3/6/7);
- :class:`~repro.apps.fibonacci.FibonacciApp` — the persistent
  Fibonacci list generator whose debug-build consistency check starves
  the main loop without energy guards (§5.3.2, Figures 8/9);
- :class:`~repro.apps.activity.ActivityRecognitionApp` — the
  machine-learning-based activity recognition application traced and
  profiled in §5.3.3 (Figure 10/11, Table 4);
- :class:`~repro.apps.rfid_firmware.RfidFirmwareApp` — the WISP RFID
  firmware monitored in §5.3.4 (Figure 12).
"""

from repro.apps.activity import ActivityRecognitionApp
from repro.apps.fibonacci import FibonacciApp
from repro.apps.linked_list import LinkedListApp
from repro.apps.rfid_firmware import RfidFirmwareApp
from repro.apps.sensors import Accelerometer, MotionProfile

__all__ = [
    "Accelerometer",
    "ActivityRecognitionApp",
    "FibonacciApp",
    "LinkedListApp",
    "MotionProfile",
    "RfidFirmwareApp",
]
