"""The activity-recognition application of §5.3.3 (Figure 10/11, Table 4).

A machine-learning application adapted from prior work [Lucia &
Ransford, PLDI'15]: each main-loop iteration reads a window of
accelerometer samples over I2C, extracts features (mean and mean
absolute deviation of the magnitude), classifies the window as
"stationary" or "moving" with a nearest-centroid model, and updates
statistics in non-volatile memory.

Instrumentation points (Figure 10):

- ``WATCHPOINT(1)`` at the top of each iteration,
- ``WATCHPOINT(2)`` on the stationary-classified path,
- ``WATCHPOINT(3)`` on the moving-classified path,
- an optional per-iteration debug print of the intermediate
  classification result, via UART (``output="uart"``) or EDB's
  energy-interference-free printf (``output="edb"``).

Table 4 compares the three output modes; Figure 11 is the per-iteration
energy CDF from the watchpoint energy snapshots.
"""

from __future__ import annotations

from repro.apps.sensors import Accelerometer, I2C_ADDRESS, REG_XDATA_L
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.runtime.nonvolatile import NVCounter

OUTPUT_MODES = ("none", "uart", "edb")

# Nearest-centroid model (counts): centroids of the magnitude-deviation
# feature for the two classes, trained offline in the original work.
# The deviation feature is |magnitude - 1 g|: at the millisecond window
# lengths an intermittent device can afford, gravity is the only stable
# reference (a gait period is ~100x longer than the window).
CENTROID_STATIONARY = (1000, 10)  # (mean magnitude, mean abs dev from 1 g)
CENTROID_MOVING = (1080, 150)

WINDOW_SAMPLES = 3
FEATURE_CYCLES = 4600  # sqrt/magnitude arithmetic per window
CLASSIFY_CYCLES = 3600  # distance computation + argmin
HOUSEKEEPING_CYCLES = 2000  # loop control, windowing buffers


class ActivityRecognitionApp:
    """The AR workload with selectable debug-output instrumentation.

    Parameters
    ----------
    output:
        ``"none"`` (release), ``"uart"`` (conventional serial print),
        or ``"edb"`` (energy-interference-free printf; needs libEDB).
    use_watchpoints:
        Insert the Figure 10 watchpoints (needs libEDB to do anything).
    max_iterations:
        Stop (``ProgramComplete``) after this many completed
        iterations; ``None`` runs forever.
    """

    name = "activity-recognition"

    def __init__(
        self,
        output: str = "none",
        use_watchpoints: bool = True,
        max_iterations: int | None = None,
    ) -> None:
        if output not in OUTPUT_MODES:
            raise ValueError(f"output must be one of {OUTPUT_MODES} (got {output!r})")
        self.output = output
        self.use_watchpoints = use_watchpoints
        self.max_iterations = max_iterations
        self.iterations_attempted = 0
        self.iterations_completed = 0

    def flash(self, api: DeviceAPI) -> None:
        """Zero the NV statistics."""
        for name in ("ar.total", "ar.stationary", "ar.moving"):
            api.device.memory.write_u16(api.nv_var(f"counter.{name}"), 0)
        self.iterations_attempted = 0
        self.iterations_completed = 0

    # -- the sense -> featurise -> classify pipeline -------------------------------
    def _read_window(self, api: DeviceAPI) -> list[tuple[int, int, int]]:
        window = []
        for _ in range(WINDOW_SAMPLES):
            raw = api.i2c_read(I2C_ADDRESS, REG_XDATA_L, 6)
            window.append(Accelerometer.decode_sample(raw))
        return window

    @staticmethod
    def featurise(window: list[tuple[int, int, int]]) -> tuple[int, int]:
        """(mean magnitude, mean absolute deviation from 1 g)."""
        from repro.apps.sensors import GRAVITY_COUNTS

        magnitudes = [
            int((x * x + y * y + z * z) ** 0.5) for x, y, z in window
        ]
        mean = sum(magnitudes) // len(magnitudes)
        deviation = sum(
            abs(m - GRAVITY_COUNTS) for m in magnitudes
        ) // len(magnitudes)
        return mean, deviation

    @staticmethod
    def classify(features: tuple[int, int]) -> bool:
        """Nearest centroid; returns True for "moving"."""

        def dist2(centroid: tuple[int, int]) -> int:
            dm = features[0] - centroid[0]
            dd = (features[1] - centroid[1]) * 4  # deviation dominates
            return dm * dm + dd * dd

        return dist2(CENTROID_MOVING) < dist2(CENTROID_STATIONARY)

    # -- one powered execution attempt ---------------------------------------------
    def main(self, api: DeviceAPI) -> None:
        """Figure 10's main loop."""
        total = NVCounter(api, "ar.total")
        stationary = NVCounter(api, "ar.stationary")
        moving = NVCounter(api, "ar.moving")
        while True:
            if self.use_watchpoints:
                api.edb_watchpoint(1)
            self.iterations_attempted += 1
            window = self._read_window(api)
            api.compute(FEATURE_CYCLES)
            features = self.featurise(window)
            api.compute(CLASSIFY_CYCLES)
            is_moving = self.classify(features)
            count = total.increment()
            api.branch()
            if is_moving:
                moving.increment()
                if self.use_watchpoints:
                    api.edb_watchpoint(3)
            else:
                stationary.increment()
                if self.use_watchpoints:
                    api.edb_watchpoint(2)
            if self.output != "none":
                text = f"i={count} m={1 if is_moving else 0}"
                if self.output == "uart":
                    api.uart_print(text + "\n")
                else:
                    api.edb_printf(text)
            api.compute(HOUSEKEEPING_CYCLES)
            self.iterations_completed += 1
            api.branch()
            if (
                self.max_iterations is not None
                and self.iterations_completed >= self.max_iterations
            ):
                raise ProgramComplete(self.iterations_completed)

    # -- host-side ground-truth scoring ------------------------------------------------
    @staticmethod
    def read_stats(api: DeviceAPI) -> dict[str, int]:
        """The NV statistics as the host would read them post-run."""
        memory = api.device.memory
        return {
            name: memory.read_u16(api.nv_var(f"counter.ar.{name}"))
            for name in ("total", "stationary", "moving")
        }
