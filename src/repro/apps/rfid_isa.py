"""ISA-level RFID command-dispatch firmware: the fuzzing target.

A scaled-down cousin of :class:`~repro.apps.rfid_firmware.RfidFirmwareApp`
that runs on the instruction-level core instead of the high-level API:
a command loop reads one stimulus byte per iteration from an input port
(the demodulated reader frame stream) and dispatches on its top two
bits into four handlers — checksum mixing, a paired-counter update,
a small state machine, and a busy "backscatter" burn.  All persistent
state lives in FRAM words, so restart-from-entry recovery is the
program's only checkpointing — exactly the naive idiom the paper's
intermittence bugs live in.

Why this shape: the campaign fuzzer searches over *both* fault
schedules and stimulus bytes.  With the default all-zeros stimulus only
the checksum handler ever runs; discovering the paired-counter handler
(bytes ``0x40..0x7F``) — and then landing two reboots inside its
vulnerable window — requires coverage-guided input mutation, which is
what the acceptance test demonstrates.  The naive build increments the
counters in separate read-modify-write sequences with a burn window in
between (each window hit leaves ``a`` permanently one ahead); the
protected build derives both counters idempotently from a commit word
written *after* both stores, so re-execution can never drift ``a``
more than one ahead of ``b``.

Execution goes through :meth:`Cpu.step_block`, so translated-block
coverage (and its single-step fallback) drives the fuzzer's signatures.
"""

from __future__ import annotations

from repro.mcu.assembler import Program, assemble
from repro.mcu.coverage import CoverageRecorder
from repro.mcu.cpu import CpuError, Halted
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.mcu.isa import DecodeError
from repro.mcu.memory import MemoryFault

#: Port the firmware reads stimulus (demodulated frame) bytes from.
STIM_PORT = 0x20

#: Busy-loop passes inside the paired-counter vulnerability window.
PAIR_WINDOW = 16

_COMMON = """
; RFID dispatch core — persistent state is FRAM-resident .words.
        .org 0xA000
cnt_a:  .word 0          ; paired counters: invariant 0 <= a-b <= 1
cnt_b:  .word 0
crc:    .word 0          ; checksum/state-machine accumulator
prog:   .word 0          ; completed command count (the loop variable)
pair:   .word 0          ; protected build's commit word
start:  mov &prog, r4
        cmp #{target}, r4
        jc  done         ; r4 >= target: all commands processed
        in  #{port}, r5  ; next stimulus byte (host-side cursor)
        mov r5, r6
        and #0xC0, r6    ; dispatch on the top two bits
        cmp #0x40, r6
        jnc h_csum       ; 0x00..0x3F
        cmp #0x80, r6
        jnc h_pair       ; 0x40..0x7F
        cmp #0xC0, r6
        jnc h_state      ; 0x80..0xBF
h_burn: mov r5, r8       ; 0xC0..0xFF: backscatter burn, length from byte
        and #0x1F, r8
        inc r8
burn1:  dec r8
        jnz burn1
        jmp next
h_csum: mov &crc, r9     ; checksum mix
        add r5, r9
        swpb r9
        xor r5, r9
        mov r9, &crc
        jmp next
h_state:
        mov r5, r6       ; three-way state machine on the low bits
        and #0x07, r6
        jz  st_a
        cmp #4, r6
        jnc st_b
st_c:   mov &crc, r9
        xor r5, r9
        swpb r9
        mov r9, &crc
        jmp next
st_a:   mov &crc, r9
        inc r9
        mov r9, &crc
        jmp next
st_b:   mov &crc, r9
        add r5, r9
        shl r9
        mov r9, &crc
        jmp next
{pair_handler}
next:   mov &prog, r4
        inc r4
        mov r4, &prog
        jmp start
done:   halt
"""

#: The bug: ``a`` and ``b`` advance in separate read-modify-write
#: sequences with a burn window between them, and each loads its *own*
#: stale value — a reboot inside the window loses ``b``'s update for
#: good.  One hit is a legal transient; two hits break the invariant.
_PAIR_NAIVE = """
h_pair: mov &cnt_a, r7
        inc r7
        mov r7, &cnt_a   ; a = a + 1
        mov #{window}, r8
pw1:    dec r8           ; --- the vulnerable window ---
        jnz pw1
        mov &cnt_b, r7
        inc r7
        mov r7, &cnt_b   ; b = b + 1 (lost if a reboot hit the window)
        jmp next
"""

#: The fix: both counters are derived from the committed ``pair`` word
#: and the commit lands *after* both stores, so partial re-execution
#: rewrites the same values (idempotent) and drift never exceeds one.
_PAIR_PROTECTED = """
h_pair: mov &pair, r7
        inc r7
        mov r7, &cnt_a   ; a = pair + 1
        mov #{window}, r8
pw1:    dec r8
        jnz pw1
        mov r7, &cnt_b   ; b = pair + 1 (idempotent on re-execution)
        mov r7, &pair    ; commit point
        jmp next
"""


def build_rfid_program(protect: bool, target: int) -> Program:
    """Assemble the dispatch core for ``target`` command iterations."""
    if target < 1:
        raise ValueError(f"target must be >= 1 (got {target})")
    handler = _PAIR_PROTECTED if protect else _PAIR_NAIVE
    source = _COMMON.format(
        target=target,
        port=f"0x{STIM_PORT:02X}",
        pair_handler=handler.format(window=PAIR_WINDOW),
    )
    return assemble(source)


class RfidIsaFirmware:
    """The assembled dispatch core plus its host-side stimulus feed.

    The stimulus is a byte string fed one byte per ``IN`` through
    :data:`STIM_PORT`; the cursor wraps, so the feed never runs dry,
    and it does *not* rewind on reboot (the reader keeps transmitting
    whether or not the tag browned out — which is also what makes a
    re-executed iteration see the next frame, not the same one).

    ``stim_pos`` is a plain scalar attribute on purpose: the campaign's
    snapshot/fork machinery captures scalar program attributes, so
    forked legs resume the feed from the exact byte the prefix stopped
    at.
    """

    name = "rfid-isa-firmware"

    def __init__(self, protect: bool, iterations: int, stimulus: bytes) -> None:
        if not stimulus:
            raise ValueError("stimulus must be at least one byte")
        self.protect = bool(protect)
        self.iterations = int(iterations)
        self.stimulus = bytes(stimulus)
        self.stim_pos = 0
        self._program = build_rfid_program(self.protect, self.iterations)

    @property
    def symbols(self) -> dict:
        return self._program.symbols

    def _next_stimulus_byte(self) -> int:
        byte = self.stimulus[self.stim_pos % len(self.stimulus)]
        self.stim_pos += 1
        return byte

    def flash(self, api: DeviceAPI) -> None:
        """Load the image, attach coverage, and wire the stimulus port."""
        device = api.device
        cpu = device.cpu
        if cpu.coverage is None:
            cpu.coverage = CoverageRecorder()
        cpu.coverage.clear()
        device.load_program(self._program)
        cpu.ports_in[STIM_PORT] = self._next_stimulus_byte
        self.stim_pos = 0

    def main(self, api: DeviceAPI) -> None:
        """One powered boot: block-dispatch until HALT or brown-out."""
        step_block = api.device.cpu.step_block
        try:
            while True:
                step_block()
        except Halted:
            raise ProgramComplete(
                api.device.memory.read_u16(self.symbols["prog"])
            ) from None
        except (CpuError, DecodeError) as fault:
            # Fold ISA-level faults into the memory-fault taxonomy the
            # intermittent run loop (and the oracle) already model.
            raise MemoryFault(f"isa fault: {fault}") from fault
