"""Lane-batched campaign execution: step N similar legs as one batch.

The third rung of the campaign speed ladder (after snapshot/fork prefix
sharing and the superblock/fast-forward dispatch tiers): campaign legs
that differ only in *when* their fault lands re-execute nearly identical
trajectories, so the lane engine packs a whole fork-eligible group into
NumPy struct-of-arrays lanes, drives one shared *leader* trajectory
through the existing three-tier dispatch on behalf of every lane, and
*peels* a lane into the scalar path at the exact boot boundary where its
injection schedule first diverges from the shared trajectory
(:mod:`repro.batch.engine`).  :mod:`repro.batch.lanes` holds the
struct-of-arrays snapshot packing and the vectorized closed-form energy
evaluator the lane axis shares.

The contract is the one every prior tier honoured: campaign reports are
byte-identical with batching on (``--batch``, the default), off
(``--no-batch``), and killed (``REPRO_NO_BATCH=1``), pinned by the
lane-vs-scalar differential suite in ``tests/test_batch.py`` and by the
campaign golden.  Batching is an execution-only switch — it never enters
the config, the journal, or the report.
"""

from __future__ import annotations

import os

_NUMPY_OK: bool | None = None


def numpy_available() -> bool:
    """True when NumPy imports; memoized (the answer cannot change)."""
    global _NUMPY_OK
    if _NUMPY_OK is None:
        try:
            import numpy  # noqa: F401
        except Exception:
            _NUMPY_OK = False
        else:
            _NUMPY_OK = True
    return _NUMPY_OK


def batching_disabled() -> bool:
    """True when the ``REPRO_NO_BATCH`` kill switch is set.

    Read per call (not cached) so tests and operators can flip the
    switch at runtime, mirroring ``REPRO_NO_BLOCKCACHE`` /
    ``REPRO_NO_SUPERBLOCK`` on the dispatch tiers.
    """
    return os.environ.get("REPRO_NO_BATCH", "") not in ("", "0")


def batching_enabled() -> bool:
    """The gate the engine checks: NumPy present and not killed."""
    return numpy_available() and not batching_disabled()


__all__ = ["batching_disabled", "batching_enabled", "numpy_available"]
