"""Struct-of-arrays packing of device snapshots across a lane axis.

A :class:`LaneBuffer` holds N campaign legs' device states side by side
as NumPy arrays — CPU registers as an ``(N, 16)`` integer matrix, each
memory region as an ``(N, size)`` byte matrix, the capacitor voltage and
simulation clock as ``(N,)`` float vectors, and every RNG stream's
Mersenne cursor as an ``(N, 625)`` word matrix — with the host-side
remainder of each :class:`~repro.snapshot.DeviceSnapshot` (event queues,
peripheral tallies, source attributes) carried per lane by reference.

Two constructors cover the lane engine's uses: :meth:`from_snapshots`
packs distinct per-lane snapshots, and :meth:`broadcast` spreads one
boundary snapshot across the whole lane axis as zero-copy views — the
"seed all lanes in one restore" path a fork prefix wants.  ``unpack``
rebuilds a lane's :class:`~repro.snapshot.DeviceSnapshot`, carrying the
*source* snapshot's integrity checksum, so the very next
:func:`repro.snapshot.restore` verifies the NumPy round trip bit for bit
before the device is touched.

:meth:`advance_energy` is the lane axis of the closed-form energy tier:
one analytic RC(+leakage) step applied to every lane's capacitor voltage
at once, with one ``math.exp`` per spend serving the whole batch (see
:func:`repro.power.capacitor.closed_form_step_lanes`).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.power.capacitor import closed_form_step_lanes
from repro.snapshot import PAGE_SIZE, DeviceSnapshot

#: Snapshot slots vectorized into arrays; every other slot is carried
#: per lane by reference from the source snapshot.
_PACKED_SLOTS = frozenset(
    {"cpu_registers", "memory_pages", "cap_voltage", "sim_now", "rng_states"}
)


def _region_row(pages: tuple[bytes, ...]) -> np.ndarray:
    return np.frombuffer(b"".join(pages), dtype=np.uint8)


def _row_pages(row: np.ndarray) -> tuple[bytes, ...]:
    data = row.tobytes()
    return tuple(
        data[offset : offset + PAGE_SIZE]
        for offset in range(0, len(data), PAGE_SIZE)
    )


class LaneBuffer:
    """N device snapshots packed struct-of-arrays along a lane axis."""

    def __init__(
        self,
        sources: list[DeviceSnapshot],
        registers: np.ndarray,
        regions: dict[str, np.ndarray],
        vcap: np.ndarray,
        clock: np.ndarray,
        rng_words: dict[str, np.ndarray],
        rng_meta: list[dict],
    ) -> None:
        self._sources = sources
        self.registers = registers  # (N, R) int64
        self.regions = regions  # name -> (N, size) uint8
        self.vcap = vcap  # (N,) float64
        self.clock = clock  # (N,) float64
        self._rng_words = rng_words  # name -> (N, 625) uint32
        self._rng_meta = rng_meta  # per lane: name -> (version, gauss)

    def __len__(self) -> int:
        return len(self._sources)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_snapshots(
        cls, snapshots: Iterable[DeviceSnapshot]
    ) -> "LaneBuffer":
        """Pack distinct per-lane snapshots (same device topology)."""
        sources = list(snapshots)
        if not sources:
            raise ValueError("cannot pack zero lanes")
        names = set(sources[0].memory_pages)
        streams = set(sources[0].rng_states)
        for snap in sources[1:]:
            if set(snap.memory_pages) != names or set(snap.rng_states) != streams:
                raise ValueError(
                    "lanes must share a device topology (regions and "
                    "RNG streams)"
                )
        registers = np.array(
            [snap.cpu_registers for snap in sources], dtype=np.int64
        )
        regions = {
            name: np.stack(
                [_region_row(snap.memory_pages[name]) for snap in sources]
            )
            for name in sorted(names)
        }
        vcap = np.array([snap.cap_voltage for snap in sources], dtype=np.float64)
        clock = np.array([snap.sim_now for snap in sources], dtype=np.float64)
        rng_words = {
            name: np.array(
                [snap.rng_states[name][1] for snap in sources], dtype=np.uint32
            )
            for name in sorted(streams)
        }
        rng_meta = [
            {
                name: (state[0], state[2])
                for name, state in snap.rng_states.items()
            }
            for snap in sources
        ]
        return cls(sources, registers, regions, vcap, clock, rng_words, rng_meta)

    @classmethod
    def broadcast(cls, snap: DeviceSnapshot, lanes: int) -> "LaneBuffer":
        """Spread one snapshot across ``lanes`` lanes as zero-copy views."""
        if lanes < 1:
            raise ValueError(f"need at least one lane (got {lanes})")
        registers = np.broadcast_to(
            np.array(snap.cpu_registers, dtype=np.int64),
            (lanes, len(snap.cpu_registers)),
        )
        regions = {}
        for name in sorted(snap.memory_pages):
            row = _region_row(snap.memory_pages[name])
            regions[name] = np.broadcast_to(row, (lanes, row.size))
        vcap = np.broadcast_to(
            np.float64(snap.cap_voltage), (lanes,)
        )
        clock = np.broadcast_to(np.float64(snap.sim_now), (lanes,))
        rng_words = {}
        for name in sorted(snap.rng_states):
            words = np.array(snap.rng_states[name][1], dtype=np.uint32)
            rng_words[name] = np.broadcast_to(words, (lanes, words.size))
        meta = {
            name: (state[0], state[2])
            for name, state in snap.rng_states.items()
        }
        return cls(
            [snap] * lanes, registers, regions, vcap, clock, rng_words,
            [meta] * lanes,
        )

    # -- unpacking ---------------------------------------------------------
    def unpack(self, lane: int) -> DeviceSnapshot:
        """Rebuild lane ``lane``'s :class:`DeviceSnapshot` from the arrays.

        The packed slots are reconstructed from the lane's rows; every
        other slot — including ``integrity`` — is copied from the lane's
        source snapshot, so restoring the result re-verifies the whole
        pack/unpack round trip against the source checksum.
        """
        source = self._sources[lane]
        snap = DeviceSnapshot()
        for slot in DeviceSnapshot.__slots__:
            if slot not in _PACKED_SLOTS:
                setattr(snap, slot, getattr(source, slot))
        snap.cpu_registers = tuple(int(r) for r in self.registers[lane])
        snap.memory_pages = {
            name: _row_pages(rows[lane]) for name, rows in self.regions.items()
        }
        snap.cap_voltage = float(self.vcap[lane])
        snap.sim_now = float(self.clock[lane])
        snap.rng_states = {
            name: (
                self._rng_meta[lane][name][0],
                tuple(int(w) for w in self._rng_words[name][lane]),
                self._rng_meta[lane][name][1],
            )
            for name in self._rng_words
        }
        return snap

    # -- the vectorized energy step ---------------------------------------
    def advance_energy(
        self,
        dt: float,
        voc: float,
        rs: float,
        net_current: float,
        capacitance: float,
        max_voltage: float,
        leakage_resistance: float | None = None,
    ) -> np.ndarray:
        """One closed-form RC(+leakage) step for every lane's voltage.

        The vector twin of
        :meth:`repro.power.capacitor.StorageCapacitor.closed_form_advance`:
        the step exponentials are computed once with ``math.exp`` (the
        scalar tier's rounding) and the whole lane axis is advanced in a
        single :func:`closed_form_step_lanes` evaluation — one
        exponential per spend for the batch instead of one per leg.
        Returns the new ``(N,)`` voltage vector, which also replaces
        :attr:`vcap`.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative (got {dt})")
        exp_charge = math.exp(-dt / (rs * capacitance))
        leak_factor = (
            math.exp(-dt / (leakage_resistance * capacitance))
            if leakage_resistance is not None
            else None
        )
        self.vcap = closed_form_step_lanes(
            self.vcap,
            dt,
            voc,
            voc - net_current * rs,
            exp_charge,
            net_current,
            capacitance,
            max_voltage,
            leak_factor,
        )
        return self.vcap
