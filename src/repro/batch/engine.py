"""The lane engine: one leader trajectory serves a whole batch of legs.

A fork-eligible campaign group (see ``forking._group_key``) is a set of
legs whose trajectories are deterministic functions of their injection
schedules alone: same app, same environment, zero fading, no corruption.
Until a leg's schedule actually fires, its trajectory is *identical* to
the fault-free one — so instead of stepping N interpreter loops, the
engine packs the group into lanes and drives one shared **leader**
device fault-free through the existing three-tier dispatch.  One decoded
block, one superblock trace, one closed-form energy evaluation per spend
serves every lane still in the batch.

At every boot boundary (an organic brown-out parks the leader via a
``PowerSystem.on_power_change`` hook) the engine compares the boundary's
work count against all lanes' schedules in one vectorized NumPy mask.
Lanes whose schedule fired inside the boot just finished are **peeled**:
they re-enter the scalar path from the snapshot taken when that boot
began, with their real injector installed and its progress counters
synthesized from the recorder state — bit-identical to a from-reset run
arriving at the same boundary.  Lanes whose schedules never fire are
**clones**: their observation *is* the leader's, by construction.

Peeling is always safe (the peeled leg replays exactly); only the clone
claim needs proof, and it is airtight: a ``ScheduledBrownouts`` lane
fires on boot ``b`` iff its entry ``S[b]`` is reached, i.e. iff
``S[b] <= ops(b)``; a ``CommitBoundaryTrigger`` lane fires iff its first
count is reached by the cumulative FRAM write tally.  The engine peels
on exactly those conditions (evaluated per boundary over the lane axis),
so a lane left in the batch provably never fired.

Everything here honours the campaign's byte-identical report contract:
any leader failure, foreign stop request, wall-clock budget trip, or
violation of the zero-RNG honesty invariant makes the engine return
``None`` and the caller falls back to the scalar fork/from-reset paths.
"""

from __future__ import annotations

import numpy as np

from repro.batch import batching_enabled
from repro.campaign.faults import (
    CommitBoundaryTrigger,
    FaultPlan,
    RebootRecorder,
    ScheduledBrownouts,
)
from repro.campaign.forking import (
    _program_state,
    _restore_program_state,
    _schedule_of,
    continuous_observation,
)
from repro.campaign.oracle import Observation, compare
from repro.campaign.watchdog import RunWatchdog
from repro.power.harvester import RFHarvester
from repro.power.supply import PowerState
from repro.runtime.executor import IntermittentExecutor, RunStatus
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.snapshot import DirtyTracker, capture, restore
from repro.testing import make_fast_target, time_limit

_BOUNDARY = "lane-boundary"

#: Schedule padding: larger than any op count or write tally a run can
#: accumulate, so a padded column never satisfies a fire condition.
_NEVER = 1 << 62


class _LaneSchedules:
    """The group's injection schedules as NumPy arrays plus fire masks."""

    def __init__(self, pending: list[tuple[int, int, FaultPlan]], mode: str):
        self.mode = mode
        self.alive = np.ones(len(pending), dtype=bool)
        if mode == "op_index":
            schedules = [_schedule_of(plan) for _, _, plan in pending]
            self.lengths = np.array([len(s) for s in schedules], dtype=np.int64)
            self.columns = int(self.lengths.max()) if len(schedules) else 0
            self.ops = np.full(
                (len(pending), self.columns), _NEVER, dtype=np.int64
            )
            for i, schedule in enumerate(schedules):
                self.ops[i, : len(schedule)] = schedule
        else:
            self.first_commit = np.array(
                [
                    plan.commit_counts[0] if plan.commit_counts else _NEVER
                    for _, _, plan in pending
                ],
                dtype=np.int64,
            )

    def fired(self, boot: int, boot_ops: int, writes_seen: int) -> np.ndarray:
        """Lane indices whose schedule fired inside the boot just run.

        ``boot``/``boot_ops`` locate the boundary on the op-index axis
        (the boot's index and its completed work units); ``writes_seen``
        is the cumulative FRAM write tally for the commit axis.  A
        scheduled brown-out at entry ``S[boot]`` fires iff the boot's op
        counter reached it (``S[boot] <= boot_ops``); a commit trigger
        fires iff the write tally reached its first count.
        """
        if self.mode == "op_index":
            if boot >= self.columns:
                return np.empty(0, dtype=np.int64)
            mask = self.alive & (self.ops[:, boot] <= boot_ops)
        else:
            mask = self.alive & (self.first_commit <= writes_seen)
        lanes = np.nonzero(mask)[0]
        self.alive[mask] = False
        return lanes

    def future_fire_possible(self, next_boot: int) -> bool:
        """Whether any live lane can still fire at boot ``next_boot`` on."""
        if self.mode == "op_index":
            return bool(np.any(self.lengths[self.alive] > next_boot))
        return bool(np.any(self.alive))


def execute_batch_group(
    config, adapter, members: list[tuple[int, int, FaultPlan]]
) -> dict[int, dict] | None:
    """Execute one fork-eligible group through the lane engine.

    Returns a record per member index, or ``None`` when the group should
    fall back to the scalar paths (batching killed, leader failure,
    wall-clock budget trip, honesty violation).  The records are
    byte-identical to what ``forking._execute_group`` produces — that is
    the whole contract, pinned by the differential suite in
    ``tests/test_batch.py`` and by the campaign golden.
    """
    from repro.campaign.runner import _harvest_tier_stats, note_lane_stats

    if len(members) < 2 or not batching_enabled():
        return None
    if hasattr(adapter, "prepare"):
        return None
    plan0 = members[0][2]
    mode = plan0.mode
    if mode not in ("op_index", "commit_boundary"):
        return None
    # Same ordering the scalar group path uses, so fallback parity is
    # trivially byte-stable; record order is re-established by index.
    pending = sorted(members, key=lambda m: _schedule_of(m[2]))
    lanes = _LaneSchedules(pending, mode)

    # -- leader construction: mirrors run_intermittent_leg hook-for-hook
    try:
        sim = Simulator(seed=derive_seed(pending[0][1], "intermittent"))
        sim.trace.enabled = False  # see runner.run_intermittent_leg
        target = make_fast_target(
            sim, distance_m=plan0.distance_m, fading_sigma=plan0.fading_sigma
        )
        if plan0.duty is not None and isinstance(
            target.power.source, RFHarvester
        ):
            target.power.source.duty_period = plan0.duty[0]
            target.power.source.duty_fraction = plan0.duty[1]
        program = adapter.build(config.protect, config.iterations)
        executor = IntermittentExecutor(sim, target, program)
        executor.flash()
    except KeyboardInterrupt:
        raise
    except BaseException:
        return None

    tracker = recorder = injector = watchdog = None
    pauser = None
    try:
        tracker = DirtyTracker(target.memory)
        recorder = RebootRecorder(target)
        # The real injector class with an empty schedule: inert during
        # the leader run, but its hooks claim the same list positions a
        # from-reset leg gives them (recorder, injector, watchdog), and
        # in commit mode its passive ``writes_seen`` tally doubles as
        # the leader's FRAM write counter.
        if mode == "commit_boundary":
            injector = CommitBoundaryTrigger(target, [])
        else:
            injector = ScheduledBrownouts(target, [])

        def pauser(state: PowerState) -> None:
            if state is PowerState.OFF:
                sim.request_stop(_BOUNDARY)

        target.power.on_power_change.append(pauser)
        watchdog = RunWatchdog(target, config.max_cycles, config.max_wall_s)
        deadline = sim.now + config.duration
        base_reboots = target.reboot_count

        def capture_node(boots: int) -> tuple:
            return (
                capture(target, tracker),
                injector.export_state(),
                recorder.export_state(),
                _program_state(program),
                boots,
            )

        def boundary() -> tuple[int, int, int]:
            completed, boot_ops, _started = recorder.export_state()
            writes = injector.writes_seen if mode == "commit_boundary" else 0
            return len(completed), boot_ops, writes

        # ``node`` is always the snapshot taken as the *current* boot
        # began (node 0 = the post-flash state, before boot 0); a lane
        # that fires inside the current boot peels there.  ``None``
        # means no live lane can ever fire again, so no capture needed.
        node: tuple | None = capture_node(0)
        peel: dict[int, tuple] = {}
        batch_spans = 0
        boots = 0
        faults: list[str] = []
        status = RunStatus.TIMEOUT
        detail = None

        def check_boundary() -> None:
            if node is None:
                return  # provably no live schedule extends this far
            boot, boot_ops, writes = boundary()
            for lane in lanes.fired(boot, boot_ops, writes):
                peel[int(lane)] = node

        # -- the leader run: fault-free, parked at every brown-out
        try:
            with time_limit(config.max_wall_s):
                while True:
                    result = executor.run(until=deadline, stop_on_fault=True)
                    boots += result.boots
                    faults.extend(result.faults)
                    if result.status is not RunStatus.INTERRUPTED:
                        status = result.status
                        detail = result.detail
                        break
                    if sim.stop_reason != _BOUNDARY:
                        return None  # a foreign stop request owns the run
                    sim.clear_stop()
                    batch_spans += 1
                    check_boundary()
                    if not bool(np.any(lanes.alive)):
                        break  # every lane peeled; the leader is moot
                    boot, _, _ = boundary()
                    if lanes.future_fire_possible(boot + 1):
                        node = capture_node(boots)
                    else:
                        node = None
        except KeyboardInterrupt:
            raise
        except BaseException:
            return None
        finally:
            # A brown-out landing exactly at the deadline leaves the
            # pause request pending past the terminal segment.
            sim.clear_stop()

        clones = bool(np.any(lanes.alive))
        if clones:
            detail_str = None if detail is None else str(detail)
            if status is RunStatus.NONTERMINATING and "wall-clock" in (
                detail_str or ""
            ):
                # Host-timing noise must not speak for N records.
                return None
            # The terminal boot ended without a pause: fire-check it too
            # (idempotent for boundaries already processed — during a
            # terminal charge phase the recorder still holds the
            # previous boot's column, whose fired lanes are gone).
            check_boundary()
            clones = bool(np.any(lanes.alive))
        if clones:
            leader_observation = Observation(
                status=status.value,
                faults=len(faults),
                boots=boots,
                reboots=target.reboot_count - base_reboots,
                observables=adapter.observe(program, executor.api),
                detail=None if detail is None else str(detail),
            )
            leader_schedule = recorder.schedule()
        # The pause hook must not outlive the leader: forced brown-outs
        # during replays transition the power state too.
        target.power.on_power_change.remove(pauser)
        pauser = None
        # Replays restore-and-zero the device tier counters, so harvest
        # the leader's tallies before the first restore.
        _harvest_tier_stats(target)

        # -- seed the peeled lanes: one broadcast per shared node
        by_node: dict[int, list[int]] = {}
        for lane, lane_node in peel.items():
            by_node.setdefault(id(lane_node), []).append(lane)
        seeds: dict[int, object] = {}
        for lane_group in by_node.values():
            lane_node = peel[lane_group[0]]
            buffer = lane_node[0].broadcast(len(lane_group))
            for j, lane in enumerate(lane_group):
                seeds[lane] = buffer.unpack(j)

        def replay(lane: int, plan: FaultPlan) -> tuple[Observation, list, int]:
            snap, inj_state, rec_state, prog_state, node_boots = peel[lane]
            # restore() re-verifies the snapshot CRC, so every lane seed
            # proves the NumPy pack/unpack round trip bit-for-bit.
            restore(target, seeds[lane], tracker)
            recorder.restore_state(rec_state)
            _restore_program_state(program, prog_state)
            if mode == "commit_boundary":
                injector.counts = sorted(int(c) for c in plan.commit_counts)
                # The inert leader trigger counted every FRAM write
                # without consuming counts: its exported state is
                # exactly the real trigger's at this boundary.
                injector.restore_state(inj_state)
            else:
                injector.schedule = [int(n) for n in plan.ops_schedule]
                # Synthesize from the recorder: a from-reset injector at
                # this boundary has consumed len(completed) reboots and
                # counted the in-flight boot's work units.
                completed, boot_ops, started = rec_state
                injector.restore_state(
                    (len(completed), boot_ops, 0) if started else (-1, 0, 0)
                )
            watchdog.rearm_wall()
            sim.clear_stop()
            lane_boots = node_boots
            lane_faults: list[str] = []
            lane_status = RunStatus.TIMEOUT
            lane_detail = None
            try:
                while True:
                    result = executor.run(until=deadline, stop_on_fault=True)
                    lane_boots += result.boots
                    lane_faults.extend(result.faults)
                    if result.status is not RunStatus.INTERRUPTED:
                        lane_status = result.status
                        lane_detail = result.detail
                        break
                    raise RuntimeError(
                        f"foreign stop request during lane replay: "
                        f"{sim.stop_reason!r}"
                    )
            finally:
                sim.clear_stop()
            _harvest_tier_stats(target)
            observation = Observation(
                status=lane_status.value,
                faults=len(lane_faults),
                boots=lane_boots,
                reboots=target.reboot_count - base_reboots,
                observables=adapter.observe(program, executor.api),
                detail=None if lane_detail is None else str(lane_detail),
            )
            return observation, recorder.schedule(), injector.injections

        # -- assemble records in the scalar group path's exact shape
        records: dict[int, dict] = {}
        for position, (index, run_seed, plan) in enumerate(pending):
            try:
                with time_limit(config.max_wall_s):
                    if position in peel:
                        intermittent, schedule, injected = replay(
                            position, plan
                        )
                    else:
                        intermittent = leader_observation
                        schedule = list(leader_schedule)
                        injected = 0
                    continuous = continuous_observation(
                        config, adapter, derive_seed(run_seed, "continuous")
                    )
            except KeyboardInterrupt:
                raise
            except BaseException:
                return None
            verdict = compare(intermittent, continuous, adapter.invariant_keys)
            records[index] = {
                "index": index,
                "seed": run_seed,
                "plan": plan.to_dict(),
                "injected_reboots": injected,
                "observed_schedule": schedule,
                "intermittent": intermittent.to_dict(),
                "continuous": continuous.to_dict(),
                "verdict": verdict.to_dict(),
            }
        if not sim.rng.untouched:
            # The honesty invariant failed: some draw made the shared
            # trajectory depend on the borrowed seed.
            return None
        note_lane_stats(
            packed=len(pending), peeled=len(peel), spans=batch_spans
        )
        return records
    except KeyboardInterrupt:
        raise
    except BaseException:
        return None
    finally:
        if pauser is not None and pauser in target.power.on_power_change:
            target.power.on_power_change.remove(pauser)
        if tracker is not None:
            tracker.remove()
        if recorder is not None:
            recorder.remove()
        if injector is not None:
            injector.remove()
        if watchdog is not None:
            watchdog.remove()
