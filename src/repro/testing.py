"""Test and experimentation support: fault injection and fast targets.

Organic intermittence (a harvester racing a load) is the realistic way
to produce power failures, but it is a blunt instrument for unit tests
— the failure point depends on every cost constant upstream.  This
module provides surgical alternatives:

- :class:`BrownoutInjector` — force a brown-out after an exact number
  of device work units, so a test can place the reboot *inside* a
  specific vulnerable window (e.g. mid-``append``) deterministically;
- :func:`fast_wisp_constants` / :func:`make_fast_target` — a scaled-
  down target (10x smaller capacitor) that charge/discharge-cycles
  several times faster, for tests that need many organic reboots
  without burning wall-clock time.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from dataclasses import replace
from typing import Iterator

from repro.mcu.device import TargetDevice
from repro.power.capacitor import StorageCapacitor
from repro.power.harvester import ConstantCurrentSource
from repro.power.regulator import LinearRegulator
from repro.power.supply import PowerSystem
from repro.power.wisp import WispPowerConstants, make_wisp_power_system
from repro.sim import units
from repro.sim.kernel import Simulator


def can_use_alarm() -> bool:
    """True when a SIGALRM-based wall-clock guard can be armed here.

    Requires a POSIX platform and the main thread (signal handlers can
    only be installed from the main thread of the main interpreter).
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def time_limit(
    seconds: float, make_error=None
) -> Iterator[None]:
    """Hard wall-clock limit on a block of code, via ``SIGALRM``.

    Unlike a cooperative check, the alarm interrupts *any* Python
    bytecode — including a host-side ``while True: pass`` livelock that
    never reaches a polling point.  On expiry the block is unwound with
    :class:`~repro.sim.kernel.BudgetExceeded` (or ``make_error()`` if
    given).

    Nesting-safe: the previous handler **and** any previously armed
    itimer are restored on exit, with the outer timer re-armed for its
    remaining time — so a per-test suite guard and a per-run campaign
    watchdog compose instead of clobbering each other.  On platforms or
    threads where alarms are unavailable the block runs unguarded (the
    cooperative watchdog layers still apply).
    """
    from repro.sim.kernel import BudgetExceeded

    if seconds <= 0 or not can_use_alarm():
        yield
        return

    def _on_alarm(signum, frame):
        if make_error is not None:
            raise make_error()
        raise BudgetExceeded(
            f"wall-clock limit of {seconds:g} s exhausted", budget="wall"
        )

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    old_delay, old_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        spent = seconds - signal.setitimer(signal.ITIMER_REAL, 0.0)[0]
        signal.signal(signal.SIGALRM, old_handler)
        if old_delay:
            # Re-arm the enclosing guard for whatever it has left (it
            # may have expired while ours ran; fire it almost at once).
            signal.setitimer(
                signal.ITIMER_REAL,
                max(1e-3, old_delay - spent),
                old_interval,
            )


class BrownoutInjector:
    """Forces a brown-out after a chosen number of work units.

    Installs itself as a post-work hook on the device; on the N-th
    completed ``execute_cycles`` call it yanks the capacitor below the
    brown-out threshold, so the *next* operation raises
    :class:`~repro.mcu.device.PowerFailure`.  One-shot by default —
    call :meth:`arm` again for the next injection.
    """

    def __init__(self, device: TargetDevice) -> None:
        self.device = device
        self._remaining: int | None = None
        self.injections = 0
        device.post_work_hooks.append(self._hook)

    def arm(self, after_ops: int) -> None:
        """Schedule a brown-out ``after_ops`` completed work units from now."""
        if after_ops < 1:
            raise ValueError(f"after_ops must be >= 1 (got {after_ops})")
        self._remaining = after_ops

    def disarm(self) -> None:
        """Cancel a pending injection."""
        self._remaining = None

    @property
    def armed(self) -> bool:
        """True while an injection is pending."""
        return self._remaining is not None

    def _hook(self) -> None:
        if self._remaining is None:
            return
        self._remaining -= 1
        if self._remaining > 0:
            return
        self._remaining = None
        power: PowerSystem = self.device.power
        if power.force_brownout():
            self.injections += 1

    def remove(self) -> None:
        """Uninstall the hook from the device."""
        if self._hook in self.device.post_work_hooks:
            self.device.post_work_hooks.remove(self._hook)


def fast_wisp_constants() -> WispPowerConstants:
    """WISP constants with a 10x smaller capacitor.

    Same thresholds and currents, so per-op physics are unchanged, but
    each charge/discharge cycle holds 10x less work — tests see many
    organic reboots per simulated second.
    """
    return replace(WispPowerConstants(), capacitance=4.7 * units.UF)


def make_fast_target(
    sim: Simulator,
    distance_m: float = 1.6,
    fading_sigma: float = 1.5,
    constants: WispPowerConstants | None = None,
) -> TargetDevice:
    """A ready-made fast-cycling target for tests.

    Fading jitter is on by default so brown-out points sweep the
    program instead of locking to one phase.
    """
    c = constants or fast_wisp_constants()
    power = make_wisp_power_system(
        sim, constants=c, distance_m=distance_m, fading_sigma=fading_sigma
    )
    return TargetDevice(sim, power, constants=c)


def make_bench_target(
    sim: Simulator,
    constants: WispPowerConstants | None = None,
    supply_current: float = 5.0 * units.MA,
) -> TargetDevice:
    """A bench-supplied target that never browns out organically.

    The strong constant-current source out-supplies the active draw, so
    the *only* power failures are the ones an injector forces — the
    substrate for replaying an exact reboot schedule (the campaign
    shrinker's emulated-intermittence mode, in the spirit of §4.2's
    charge/discharge emulation).  After a forced brown-out the capacitor
    recharges to turn-on in microseconds, keeping replays fast.
    """
    c = constants or fast_wisp_constants()
    power = PowerSystem(
        sim=sim,
        source=ConstantCurrentSource(current_a=supply_current),
        capacitor=StorageCapacitor(
            capacitance=c.capacitance,
            voltage=c.turn_on_voltage,
            max_voltage=3.3,
        ),
        regulator=LinearRegulator(),
        turn_on_voltage=c.turn_on_voltage,
        brownout_voltage=c.brownout_voltage,
    )
    return TargetDevice(sim, power, constants=c)
