"""The intermittent execution loop.

:class:`IntermittentExecutor` runs a program the way an energy-
harvesting device runs it: charge the capacitor to the turn-on
threshold, reboot (clearing volatile state), execute ``main()`` until
the supply browns out, and repeat — tens to hundreds of times per
second.  A continuous-power mode is provided as the control condition
(what a JTAG-style debugger would impose on the target).

The executor also understands the ways an intermittent run can end:

- the workload finishes (:class:`~repro.mcu.hlapi.ProgramComplete`),
- the simulated-time budget expires,
- an EDB keep-alive assertion fails and halts the target
  (:class:`~repro.core.libedb.AssertionHalt`),
- the program corrupts memory and wedges (a
  :class:`~repro.mcu.memory.MemoryFault` on every subsequent boot —
  the paper's "only way to recover is to re-flash" state).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.mcu.device import ExecutionLimit, PowerFailure, TargetDevice
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.mcu.memory import MemoryFault
from repro.power.harvester import TetheredSupply
from repro.power.supply import ChargingTimeout
from repro.sim.kernel import BudgetExceeded, Simulator


class RunStatus(enum.Enum):
    """How an intermittent run ended."""

    COMPLETED = "completed"
    TIMEOUT = "timeout"  # simulated-time budget expired (apps loop forever)
    ASSERT_FAILED = "assert_failed"  # EDB keep-alive assert halted the target
    CRASHED = "crashed"  # unrecoverable memory corruption
    STARVED = "starved"  # harvester could not reach turn-on
    INTERRUPTED = "interrupted"  # a cooperative stop request paused the run
    NONTERMINATING = "nonterminating"  # a watchdog budget expired (livelock?)


@dataclass
class RunResult:
    """Outcome and statistics of one intermittent (or continuous) run."""

    status: RunStatus
    sim_time: float
    reboots: int
    boots: int
    faults: list[str] = field(default_factory=list)
    first_fault_time: float | None = None
    detail: Any = None

    def __repr__(self) -> str:
        return (
            f"RunResult({self.status.value}, t={self.sim_time * 1e3:.1f}ms, "
            f"boots={self.boots}, reboots={self.reboots}, "
            f"faults={len(self.faults)})"
        )


class IntermittentExecutor:
    """Drives a high-level program across charge/discharge cycles.

    Parameters
    ----------
    sim / device:
        The simulation kernel and the target.
    program:
        Any object with ``main(api)`` (see
        :class:`~repro.mcu.hlapi.IntermittentProgram`); an optional
        ``flash(api)`` initialises FRAM once before the first boot.
    edb:
        Target-side libEDB to link into the application, or ``None``
        for a release build.
    """

    def __init__(
        self,
        sim: Simulator,
        device: TargetDevice,
        program: Any,
        edb: Any = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.program = program
        self.api = DeviceAPI(device, edb=edb)
        self._flashed = False

    def flash(self) -> None:
        """Initialise the program's FRAM image (like flashing over JTAG).

        A programmer powers the device while flashing, so the image
        initialisation runs on a temporary tether; afterwards the
        capacitor is returned to its pre-flash level and the device is
        back on harvested power.
        """
        if hasattr(self.program, "flash"):
            power = self.device.power
            v_before = power.vcap
            power.tether(TetheredSupply(voltage=3.0, resistance=1.0))
            self.sim.advance(1e-3)
            power.step(1e-3)
            try:
                self.program.flash(self.api)
            finally:
                power.untether()
                power.capacitor.voltage = v_before
                power.reset_comparator()
        self._flashed = True

    # -- the intermittent loop -------------------------------------------------
    def run(
        self,
        duration: float | None = None,
        max_boots: int | None = None,
        stop_on_fault: bool = False,
        until: float | None = None,
    ) -> RunResult:
        """Run intermittently for ``duration`` seconds of simulated time.

        Parameters
        ----------
        duration:
            Simulated-time budget, measured from the current clock.
        max_boots:
            Optional cap on powered execution attempts.
        stop_on_fault:
            Return as soon as the first memory fault occurs instead of
            letting the device keep crash-looping (the paper's symptom
            phase); the fault is recorded either way.
        until:
            Absolute simulated-time deadline, mutually exclusive with
            ``duration``.  Resuming a paused run needs this: re-deriving
            the deadline as ``now + (deadline - now)`` is not bit-exact
            in float arithmetic, and the snapshot/fork machinery's
            byte-identical contract hinges on landing on the *same*
            deadline every segment.
        """
        if (duration is None) == (until is None):
            raise ValueError("pass exactly one of duration= or until=")
        if not self._flashed:
            self.flash()
        # Hot-path handles: a campaign boots the device hundreds of
        # times per run, so the per-boot attribute chains are hoisted
        # once (the same idiom as DeviceAPI's bound-method handles).
        sim = self.sim
        device = self.device
        power = device.power
        main = self.program.main
        deadline = until if until is not None else sim.now + duration
        device.stop_after = deadline
        start_reboots = device.reboot_count
        boots = 0
        faults: list[str] = []
        first_fault: float | None = None
        status = RunStatus.TIMEOUT
        detail = None
        try:
            while sim.now < deadline:
                if sim.stop_requested:
                    # Resumable pause: the clock and device state are
                    # left untouched, so calling run() again continues
                    # from exactly this point (after clear_stop()).
                    status = RunStatus.INTERRUPTED
                    detail = sim.stop_reason
                    break
                if max_boots is not None and boots >= max_boots:
                    break
                if not power.is_on:
                    try:
                        # Never charge (much) past the run deadline,
                        # and call a target starved if it cannot reach turn-on within a
                        # couple of seconds (organic charge times are tens of
                        # milliseconds).
                        power.charge_until_on(
                            timeout=min(
                                2.0, max(0.01, deadline - sim.now) + 0.1
                            )
                        )
                    except ChargingTimeout as exc:
                        if sim.now >= deadline:
                            break
                        status = RunStatus.STARVED
                        detail = str(exc)
                        break
                    if sim.now >= deadline:
                        break
                    if not power.is_on:
                        continue  # charging paused by a stop request
                device.reboot()
                boots += 1
                try:
                    main(self.api)
                    status = RunStatus.COMPLETED
                    break
                except ProgramComplete as exc:
                    status = RunStatus.COMPLETED
                    detail = exc.args[0] if exc.args else None
                    break
                except PowerFailure:
                    continue
                except MemoryFault as fault:
                    faults.append(str(fault))
                    if first_fault is None:
                        first_fault = sim.now
                    sim.trace.record("target.fault", str(fault))
                    if stop_on_fault:
                        status = RunStatus.CRASHED
                        break
                    # Undefined behaviour: the wedged program burns the
                    # rest of the charge cycle doing nothing useful.
                    try:
                        self.api.drain_until_brownout()
                    except PowerFailure:
                        continue
                except AssertionHaltSignal as halt:
                    status = RunStatus.ASSERT_FAILED
                    detail = halt
                    break
            else:
                status = RunStatus.TIMEOUT
            if faults and status is RunStatus.TIMEOUT:
                status = RunStatus.CRASHED
        except ExecutionLimit:
            status = RunStatus.CRASHED if faults else RunStatus.TIMEOUT
        except BudgetExceeded as exc:
            # A watchdog (cycle or wall-clock budget) unwound the run:
            # the workload did not finish within its budget, which is
            # conservatively reported as possible non-termination.
            status = RunStatus.NONTERMINATING
            detail = str(exc)
        finally:
            self.device.stop_after = None
        return RunResult(
            status=status,
            sim_time=self.sim.now,
            reboots=self.device.reboot_count - start_reboots,
            boots=boots,
            faults=faults,
            first_fault_time=first_fault,
            detail=detail,
        )

    # -- the control condition ---------------------------------------------------
    def run_continuous(
        self, duration: float, supply_voltage: float = 3.0
    ) -> RunResult:
        """Run on continuous (tethered) power — what JTAG would impose.

        This is the paper's control: with continuous power the
        intermittence bug *never* manifests, which is exactly why
        conventional debuggers cannot reproduce it.
        """
        if not self._flashed:
            self.flash()
        deadline = self.sim.now + duration
        self.device.stop_after = deadline
        supply = TetheredSupply(voltage=supply_voltage)
        self.device.power.tether(supply)
        faults: list[str] = []
        status = RunStatus.TIMEOUT
        detail = None
        boots = 0
        try:
            # Bring the rail up instantly (bench supplies are stiff).
            self.device.power.capacitor.voltage = supply_voltage
            self.device.power.step(0.0)
            self.device.reboot()
            boots = 1
            try:
                self.program.main(self.api)
                status = RunStatus.COMPLETED
            except ProgramComplete as exc:
                status = RunStatus.COMPLETED
                detail = exc.args[0] if exc.args else None
            except MemoryFault as fault:
                faults.append(str(fault))
                status = RunStatus.CRASHED
            except AssertionHaltSignal as halt:
                status = RunStatus.ASSERT_FAILED
                detail = halt
        except ExecutionLimit:
            status = RunStatus.TIMEOUT
        except BudgetExceeded as exc:
            status = RunStatus.NONTERMINATING
            detail = str(exc)
        finally:
            self.device.stop_after = None
            self.device.power.untether()
        return RunResult(
            status=status,
            sim_time=self.sim.now,
            reboots=0,
            boots=boots,
            faults=faults,
            first_fault_time=None,
            detail=detail,
        )


class AssertionHaltSignal(Exception):
    """Raised by libEDB when a failed keep-alive assert halts the target.

    Defined here (rather than in :mod:`repro.core.libedb`) so the
    runtime layer has no import dependency on the debugger package; the
    debugger raises this very class.
    """

    def __init__(self, message: str, vcap_at_failure: float) -> None:
        super().__init__(message)
        self.vcap_at_failure = vcap_at_failure
