"""A DINO-style task-based execution model for intermittent programs.

The paper's related work (§6.2) describes DINO [Lucia & Ransford,
PLDI'15]: programs are decomposed into *tasks*; at each task boundary
the runtime versions the non-volatile data the next task may touch, so
a power failure inside a task rolls back to the boundary instead of
leaving memory half-updated.  EDB is "largely orthogonal" to such
models but must remain useful under them — so this module implements
the model, both as a substrate for tests/benches (task-atomicity kills
the Figure 3 bug) and to demonstrate EDB debugging a task-based app.

Semantics implemented:

- a program is an ordered list of named tasks; a non-volatile *task
  pointer* selects the next task to run;
- inside a task, reads and writes to task-shared variables go through
  the runtime: writes are staged in a shadow copy in FRAM;
- at the task boundary the runtime performs a two-phase commit —
  publish the shadow set, flip a commit record, copy shadows into the
  master copies, advance the task pointer, clear the record;
- on every boot the runtime first *recovers*: if a commit record is
  pending, the shadow copy is (re)applied — redo logging — so a reboot
  anywhere leaves each task either fully applied or not at all.

Everything lives in target memory through the costed
:class:`~repro.mcu.hlapi.DeviceAPI`, so task transitions consume energy
like the C runtime they stand in for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mcu.hlapi import DeviceAPI

# Commit-record states.
_IDLE = 0x0000
_PENDING = 0xC0DE


@dataclass(frozen=True)
class Task:
    """One task: a name and its body.

    The body receives ``(api, rt)`` and must confine all persistent
    effects to :meth:`TaskRuntime.get`/:meth:`TaskRuntime.set` on
    declared variables.  Bodies may be re-executed after a reboot, so
    anything outside the runtime (GPIO pulses, radio messages) can
    happen more than once — exactly the task-atomicity contract of the
    original system.
    """

    name: str
    body: Callable[[DeviceAPI, "TaskRuntime"], None]


class TaskRuntime:
    """Versioned task-shared variables plus the task pointer.

    Parameters
    ----------
    api:
        The device API (memory + costs).
    tasks:
        The program's ordered task list.
    variables:
        Names of the task-shared 16-bit variables.
    name:
        Namespace prefix for the FRAM statics.
    """

    def __init__(
        self,
        api: DeviceAPI,
        tasks: list[Task],
        variables: list[str],
        name: str = "dino",
    ) -> None:
        if not tasks:
            raise ValueError("a task program needs at least one task")
        if len({t.name for t in tasks}) != len(tasks):
            raise ValueError("task names must be unique")
        if len(set(variables)) != len(variables):
            raise ValueError("variable names must be unique")
        self.api = api
        self.tasks = list(tasks)
        self.variables = list(variables)
        prefix = f"tasks.{name}"
        self._task_ptr = api.nv_var(f"{prefix}.task_ptr")
        self._shadow_task_ptr = api.nv_var(f"{prefix}.shadow_task_ptr")
        self._commit_flag = api.nv_var(f"{prefix}.commit_flag")
        self._master = {
            v: api.nv_var(f"{prefix}.master.{v}") for v in variables
        }
        self._shadow = {
            v: api.nv_var(f"{prefix}.shadow.{v}") for v in variables
        }
        self._staged: dict[str, int] = {}
        self._in_task = False
        self.commits = 0
        self.recoveries = 0

    # -- flashing -----------------------------------------------------------
    def flash_init(self, initial: dict[str, int] | None = None) -> None:
        """Initialise all runtime state (off-device, uncosted)."""
        memory = self.api.device.memory
        memory.write_u16(self._task_ptr, 0)
        memory.write_u16(self._shadow_task_ptr, 0)
        memory.write_u16(self._commit_flag, _IDLE)
        for variable in self.variables:
            value = (initial or {}).get(variable, 0)
            memory.write_u16(self._master[variable], value)
            memory.write_u16(self._shadow[variable], value)

    # -- variable access (inside a task) ---------------------------------------
    def get(self, variable: str) -> int:
        """Read a task-shared variable (staged value if written)."""
        self._require_in_task()
        if variable in self._staged:
            return self._staged[variable]
        return self.api.load_u16(self._master_addr(variable))

    def set(self, variable: str, value: int) -> None:
        """Stage a write; visible to later reads in this task only."""
        self._require_in_task()
        self._master_addr(variable)  # validate the name
        self._staged[variable] = value & 0xFFFF

    def _master_addr(self, variable: str) -> int:
        try:
            return self._master[variable]
        except KeyError:
            raise KeyError(
                f"task variable {variable!r} not declared; "
                f"have {self.variables}"
            ) from None

    def _require_in_task(self) -> None:
        if not self._in_task:
            raise RuntimeError("task-shared access outside a task body")

    # -- the boundary protocol ------------------------------------------------
    def recover(self) -> bool:
        """Boot-time recovery: re-apply a pending commit (redo log).

        Returns ``True`` if a pending commit was (re)applied.
        """
        flag = self.api.load_u16(self._commit_flag)
        self.api.branch()
        if flag != _PENDING:
            return False
        # Redo: the shadow set (variables + task pointer) is complete —
        # the flag is written after it — so copying is idempotent.
        for variable in self.variables:
            value = self.api.load_u16(self._shadow[variable])
            self.api.store_u16(self._master[variable], value)
        self.api.store_u16(
            self._task_ptr, self.api.load_u16(self._shadow_task_ptr)
        )
        self.api.store_u16(self._commit_flag, _IDLE)
        self.recoveries += 1
        return True

    def _commit(self, next_task: int) -> None:
        # Phase 1: complete the shadow set (unstaged variables keep
        # their master value; copy them so the redo log is total).
        for variable in self.variables:
            if variable in self._staged:
                value = self._staged[variable]
            else:
                value = self.api.load_u16(self._master[variable])
            self.api.store_u16(self._shadow[variable], value)
        # The task pointer advances *inside* the committed set: it is
        # shadowed like any variable, and the flag write is the single
        # commit point for the whole set.
        self.api.store_u16(self._shadow_task_ptr, next_task)
        self.api.store_u16(self._commit_flag, _PENDING)
        # Phase 2: publish (idempotent; recovery can repeat it).
        for variable in self.variables:
            value = self.api.load_u16(self._shadow[variable])
            self.api.store_u16(self._master[variable], value)
        self.api.store_u16(self._task_ptr, next_task)
        self.api.store_u16(self._commit_flag, _IDLE)
        self.commits += 1

    # -- execution ----------------------------------------------------------------
    @property
    def current_task_index(self) -> int:
        """The committed task pointer (which task runs next)."""
        return self.api.load_u16(self._task_ptr) % len(self.tasks)

    def read_committed(self, variable: str) -> int:
        """Host-side view of a variable's committed value (uncosted)."""
        return self.api.device.memory.read_u16(self._master[variable])

    def run_one_task(self) -> str:
        """Execute the current task to its boundary; returns its name.

        A power failure inside the body propagates out with *nothing*
        committed; re-running after the reboot re-executes the same
        task from its boundary state.
        """
        index = self.current_task_index
        task = self.tasks[index]
        self._staged = {}
        self._in_task = True
        try:
            task.body(self.api, self)
        finally:
            self._in_task = False
        self._commit((index + 1) % len(self.tasks))
        self._staged = {}
        return task.name


class TaskProgram:
    """An :class:`IntermittentProgram` wrapper around a task list.

    ``main`` recovers, then runs task boundaries forever (or until an
    optional ``stop`` predicate raises ``ProgramComplete``).
    """

    def __init__(
        self,
        tasks: list[Task],
        variables: list[str],
        initial: dict[str, int] | None = None,
        stop: Callable[[DeviceAPI, TaskRuntime], None] | None = None,
        name: str = "taskapp",
    ) -> None:
        self.name = name
        self.tasks = tasks
        self.variables = variables
        self.initial = initial
        self.stop = stop
        self.runtime: TaskRuntime | None = None
        self.boundaries_crossed = 0

    def _runtime(self, api: DeviceAPI) -> TaskRuntime:
        if self.runtime is None or self.runtime.api is not api:
            self.runtime = TaskRuntime(
                api, self.tasks, self.variables, name=self.name
            )
        return self.runtime

    def flash(self, api: DeviceAPI) -> None:
        """Initialise the task runtime's FRAM state."""
        self._runtime(api).flash_init(self.initial)
        self.boundaries_crossed = 0

    def main(self, api: DeviceAPI) -> None:
        """Recover, then execute tasks until power fails (or stop)."""
        runtime = self._runtime(api)
        runtime.recover()
        while True:
            runtime.run_one_task()
            self.boundaries_crossed += 1
            if self.stop is not None:
                self.stop(api, runtime)
