"""Intermittent execution of ISA programs.

The counterpart of :class:`~repro.runtime.executor.IntermittentExecutor`
for programs that run on the instruction-level core: charge to turn-on,
reboot (registers cleared, PC at the entry point), optionally restore
the newest committed checkpoint, and step instructions until HALT or
brown-out.

Checkpointing convention: programs request checkpoints by writing to
the well-known port ``CHECKPOINT_PORT`` (0x10); when the executor is
given a :class:`~repro.runtime.checkpoint.CheckpointManager`, it
honours every ``checkpoint_every``-th request (bounding the overhead),
and restores on every boot.
"""

from __future__ import annotations

from repro.mcu.assembler import Program
from repro.mcu.cpu import CpuError, Halted
from repro.mcu.device import ExecutionLimit, PowerFailure, TargetDevice
from repro.mcu.isa import DecodeError
from repro.mcu.memory import MemoryFault
from repro.power.supply import ChargingTimeout
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.executor import RunResult, RunStatus
from repro.sim.kernel import Simulator

CHECKPOINT_PORT = 0x10


class IsaIntermittentExecutor:
    """Runs an assembled program across charge/discharge cycles.

    Parameters
    ----------
    sim / device:
        The simulation kernel and the target.
    program:
        The assembled image to load.
    checkpoints:
        A :class:`CheckpointManager`, or ``None`` to run with pure
        restart-from-main semantics.
    checkpoint_every:
        Honour one checkpoint request out of this many (amortises the
        copy cost; 1 = every request).
    """

    def __init__(
        self,
        sim: Simulator,
        device: TargetDevice,
        program: Program,
        checkpoints: CheckpointManager | None = None,
        checkpoint_every: int = 64,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.sim = sim
        self.device = device
        self.program = program
        self.checkpoints = checkpoints
        self.checkpoint_every = checkpoint_every
        self._requests = 0
        device.load_program(program)
        if checkpoints is not None:
            checkpoints.erase()
        if CHECKPOINT_PORT not in device.cpu.ports_out:
            device.cpu.ports_out[CHECKPOINT_PORT] = self._on_checkpoint_request

    def _on_checkpoint_request(self, value: int) -> None:
        self._requests += 1
        if (
            self.checkpoints is not None
            and self._requests % self.checkpoint_every == 0
        ):
            self.checkpoints.checkpoint()

    def run(self, duration: float, max_boots: int | None = None) -> RunResult:
        """Run intermittently for ``duration`` seconds of simulated time."""
        deadline = self.sim.now + duration
        self.device.stop_after = deadline
        start_reboots = self.device.reboot_count
        boots = 0
        faults: list[str] = []
        first_fault: float | None = None
        status = RunStatus.TIMEOUT
        detail = None
        try:
            while self.sim.now < deadline:
                if max_boots is not None and boots >= max_boots:
                    break
                if not self.device.power.is_on:
                    try:
                        self.device.power.charge_until_on(
                            timeout=min(
                                2.0, max(0.01, deadline - self.sim.now) + 0.1
                            )
                        )
                    except ChargingTimeout as exc:
                        if self.sim.now >= deadline:
                            break
                        status = RunStatus.STARVED
                        detail = str(exc)
                        break
                    if self.sim.now >= deadline:
                        break
                self.device.reboot()
                boots += 1
                if self.checkpoints is not None:
                    self.checkpoints.restore()
                try:
                    # Block-granular dispatch: translated straight-line
                    # runs execute as single closures, deoptimizing to
                    # Cpu.step near brown-out / pending events, so the
                    # trajectory stays bit-identical to single-stepping.
                    step_block = self.device.cpu.step_block
                    while True:
                        step_block()
                except Halted:
                    status = RunStatus.COMPLETED
                    break
                except PowerFailure:
                    continue
                except (MemoryFault, CpuError, DecodeError) as fault:
                    faults.append(str(fault))
                    if first_fault is None:
                        first_fault = self.sim.now
                    status = RunStatus.CRASHED
                    break
        except ExecutionLimit:
            pass
        finally:
            self.device.stop_after = None
        return RunResult(
            status=status,
            sim_time=self.sim.now,
            reboots=self.device.reboot_count - start_reboots,
            boots=boots,
            faults=faults,
            first_fault_time=first_fault,
            detail=detail,
        )
