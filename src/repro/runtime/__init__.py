"""Runtime support for intermittent software.

- :mod:`repro.runtime.nonvolatile` — C-struct-like views over FRAM,
  including the doubly-linked list whose ``append``/``remove`` are the
  verbatim (buggy) sequences of the paper's Figure 3, plus an
  intermittence-safe variant for comparison.
- :mod:`repro.runtime.checkpoint` — Mementos-style volatile-context
  checkpointing for the ISA core (register file + stack into FRAM with
  double buffering).
- :mod:`repro.runtime.executor` — the intermittent execution loop:
  charge to turn-on, reboot, run until brown-out, repeat.
- :mod:`repro.runtime.tasks` — a DINO-style task-based execution model
  with task-atomic, versioned non-volatile data (the class of emerging
  models §6.2 positions EDB alongside).
"""

from repro.runtime.executor import IntermittentExecutor, RunResult, RunStatus
from repro.runtime.nonvolatile import (
    NVCounter,
    NVLinkedList,
    SafeNVLinkedList,
    StructLayout,
    StructView,
)
from repro.runtime.tasks import Task, TaskProgram, TaskRuntime

__all__ = [
    "IntermittentExecutor",
    "NVCounter",
    "NVLinkedList",
    "RunResult",
    "RunStatus",
    "SafeNVLinkedList",
    "StructLayout",
    "StructView",
    "Task",
    "TaskProgram",
    "TaskRuntime",
]
