"""Non-volatile data structures over target FRAM.

The centrepiece is :class:`NVLinkedList`, a doubly-linked list kept in
FRAM whose ``append`` and ``remove`` reproduce the paper's Figure 3
*verbatim*, including the write ordering that makes ``append``
vulnerable: a power failure after ``tail->next = e`` but before
``tail = e`` leaves the tail pointer stale, which a later ``remove``
turns into a NULL ``next`` dereference and a wild-pointer ``memset``.

:class:`SafeNVLinkedList` is the intermittence-safe variant (tail
updated atomically via a single commit pointer write), used as the
fixed baseline in tests and ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.hlapi import DeviceAPI
from repro.mcu.memory import NULL


@dataclass(frozen=True)
class StructLayout:
    """A C-struct layout: named u16 fields at fixed offsets."""

    name: str
    fields: tuple[str, ...]

    def __post_init__(self) -> None:
        # Field offsets are looked up on every struct access — a linear
        # fields.index() there is visible in campaign profiles.  The
        # table is not a dataclass field, so eq/repr are unaffected.
        object.__setattr__(
            self,
            "_offsets",
            {name: 2 * i for i, name in enumerate(self.fields)},
        )

    @property
    def size(self) -> int:
        """Struct size in bytes (all fields are 16-bit words)."""
        return 2 * len(self.fields)

    def offset(self, field: str) -> int:
        """Byte offset of ``field`` within the struct."""
        try:
            return self._offsets[field]
        except KeyError:
            raise KeyError(
                f"struct {self.name!r} has no field {field!r}; "
                f"fields are {self.fields}"
            ) from None


class StructView:
    """Read/write a :class:`StructLayout` instance at a target address.

    All accesses go through the costed :class:`DeviceAPI`, so struct
    manipulation drains energy exactly like the C it stands in for.
    """

    def __init__(self, api: DeviceAPI, layout: StructLayout, address: int) -> None:
        self.api = api
        self.layout = layout
        self.address = address

    def get(self, field: str) -> int:
        """Load one field."""
        return self.api.load_u16(self.address + self.layout.offset(field))

    def set(self, field: str, value: int) -> None:
        """Store one field."""
        self.api.store_u16(self.address + self.layout.offset(field), value)

    def at(self, address: int) -> "StructView":
        """A view of the same layout at a different address.

        Following a pointer *is* this operation — including following a
        NULL or corrupted pointer, which faults on the first access.
        """
        return StructView(self.api, self.layout, address)


class NVCounter:
    """A non-volatile counter (statistics the AR app keeps in FRAM)."""

    def __init__(self, api: DeviceAPI, name: str) -> None:
        self.api = api
        self.address = api.nv_var(f"counter.{name}")

    def get(self) -> int:
        """Current value."""
        return self.api.load_u16(self.address)

    def set(self, value: int) -> None:
        """Overwrite the value."""
        self.api.store_u16(self.address, value)

    def increment(self, by: int = 1) -> int:
        """Add ``by`` (mod 2^16); returns the new value."""
        value = (self.get() + by) & 0xFFFF
        self.set(value)
        return value


# Node layout of the Figure 3 / Figure 6 list.  ``buf`` is the pointer
# to a buffer in *volatile* memory that the Figure 6 app memsets after
# removal; ``value`` carries the Fibonacci payload in the Figure 8 app.
NODE = StructLayout("elem", ("next", "prev", "value", "buf"))
LIST_HEADER = StructLayout("list", ("head", "tail", "length"))


class NVLinkedList:
    """The paper's doubly-linked list in non-volatile memory.

    ``append`` and ``remove`` follow Figure 3's code *line by line*.
    The intermittence bug lives in ``append``: the list's tail pointer
    is updated last, so a reboot between ``list->tail->next = e`` and
    ``list->tail = e`` leaves the structure inconsistent — the exact
    pre-condition violation §2.1 walks through.
    """

    def __init__(self, api: DeviceAPI, name: str, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("list capacity must be at least 1")
        self.api = api
        self.name = name
        self.capacity = capacity
        self.header_addr = api.nv_var(f"list.{name}.header", LIST_HEADER.size)
        self.pool_addr = api.nv_var(f"list.{name}.pool", NODE.size * capacity)
        self.header = StructView(api, LIST_HEADER, self.header_addr)
        self._node_proto = StructView(api, NODE, self.pool_addr)

    # -- node pool ---------------------------------------------------------
    def node_address(self, index: int) -> int:
        """Address of pool node ``index`` (statically allocated elems)."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"node index {index} out of 0..{self.capacity - 1}")
        return self.pool_addr + index * NODE.size

    def node(self, index: int) -> StructView:
        """View of pool node ``index``."""
        return self._node_proto.at(self.node_address(index))

    def node_at(self, address: int) -> StructView:
        """Follow a pointer to a node (no validation — faults if wild)."""
        return self._node_proto.at(address)

    # -- the paper's operations, verbatim ordering -----------------------------
    def init(self) -> None:
        """``init_list(list)``: empty list."""
        self.header.set("head", NULL)
        self.header.set("tail", NULL)
        self.header.set("length", 0)

    def append(self, node_addr: int) -> None:
        """Figure 3's ``append(list, e)`` — vulnerable write ordering::

            e->next = NULL
            e->prev = list->tail
            list->tail->next = e      (or list->head = e when empty)
            list->tail = e            <-- a reboot just before this
                                          line strands the tail pointer
        """
        e = self.node_at(node_addr)
        e.set("next", NULL)
        tail = self.header.get("tail")
        e.set("prev", tail)
        if tail != NULL:
            self.node_at(tail).set("next", node_addr)
        else:
            self.header.set("head", node_addr)
        # --- the window: a power failure here corrupts the list ---
        self.header.set("tail", node_addr)
        self.header.set("length", self.header.get("length") + 1)

    def remove(self, node_addr: int) -> None:
        """Figure 3's ``remove(list, e)`` — faults on a corrupted list::

            e->prev->next = e->next
            if (e == list->tail) tail = e->prev
            else e->next->prev = e->prev   <-- NULL 'next' goes wild here
        """
        e = self.node_at(node_addr)
        prev = e.get("prev")
        next_ = e.get("next")
        if prev != NULL:
            self.node_at(prev).set("next", next_)
        else:
            self.header.set("head", next_)
        self.api.branch()
        if node_addr == self.header.get("tail"):
            self.header.set("tail", prev)
        else:
            # Pre-condition: only the tail's next is NULL.  When the
            # tail pointer is stale this dereferences NULL and faults.
            self.node_at(next_).set("prev", prev)
        length = self.header.get("length")
        if length > 0:
            self.header.set("length", length - 1)

    # -- queries -----------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the list holds no elements."""
        return self.header.get("head") == NULL

    def length(self) -> int:
        """Stored element count (itself NV, so survives reboots)."""
        return self.header.get("length")

    def walk(self, limit: int | None = None) -> list[int]:
        """Node addresses from head to tail following ``next`` pointers.

        Walking costs energy like any traversal.  ``limit`` bounds the
        walk (cycle protection for corrupted lists).
        """
        out: list[int] = []
        cursor = self.header.get("head")
        cap = limit if limit is not None else self.capacity * 4
        while cursor != NULL and len(out) < cap:
            out.append(cursor)
            cursor = self.node_at(cursor).get("next")
        return out

    def tail_is_last(self) -> bool:
        """The Figure 6 assert's invariant: ``list->tail->next == NULL``
        and the tail is reachable as the final element of the chain."""
        tail = self.header.get("tail")
        if tail == NULL:
            return self.header.get("head") == NULL
        if self.node_at(tail).get("next") != NULL:
            return False
        chain = self.walk()
        return bool(chain) and chain[-1] == tail

    # -- host-side (uncosted) inspection ----------------------------------
    #
    # The campaign oracle audits the structure *after* a run without
    # perturbing the experiment, the way EDB reads memory through its
    # own wired connection rather than target cycles.  These helpers
    # read the FRAM image directly and never touch the costed API.

    def host_walk(self, limit: int | None = None) -> list[int]:
        """Uncosted head-to-tail walk over the raw FRAM image."""
        memory = self.api.device.memory
        next_off = NODE.offset("next")
        out: list[int] = []
        cursor = memory.read_u16(self.header_addr + LIST_HEADER.offset("head"))
        cap = limit if limit is not None else self.capacity * 4
        while cursor != NULL and len(out) < cap:
            out.append(cursor)
            if not self._host_node_mapped(cursor):
                break  # wild pointer: stop rather than fault
            cursor = memory.read_u16(cursor + next_off)
        return out

    def _host_node_mapped(self, address: int) -> bool:
        return (
            self.pool_addr
            <= address
            <= self.pool_addr + (self.capacity - 1) * NODE.size
            and (address - self.pool_addr) % NODE.size == 0
        )

    def host_audit(self) -> dict[str, bool | int]:
        """Uncosted structural audit: the oracle's canonical observables.

        Returns a dict of schedule-invariant facts about the list: a
        correct (continuously powered, or intermittence-safe) execution
        observed at an operation boundary always satisfies
        ``consistent``; any Figure 3-style partial update breaks it.
        """
        memory = self.api.device.memory
        head = memory.read_u16(self.header_addr + LIST_HEADER.offset("head"))
        tail = memory.read_u16(self.header_addr + LIST_HEADER.offset("tail"))
        length = memory.read_u16(self.header_addr + LIST_HEADER.offset("length"))
        if head == NULL or tail == NULL:
            consistent = head == NULL and tail == NULL and length == 0
            return {"consistent": consistent, "length": length, "chain": 0}
        chain = self.host_walk()
        prev_off = NODE.offset("prev")
        pointers_ok = all(self._host_node_mapped(a) for a in chain)
        back_ok = True
        expected_prev = NULL
        for address in chain:
            if not self._host_node_mapped(address):
                back_ok = False
                break
            if memory.read_u16(address + prev_off) != expected_prev:
                back_ok = False
                break
            expected_prev = address
        consistent = (
            pointers_ok
            and back_ok
            and bool(chain)
            and chain[-1] == tail
            and len(chain) == length
            and len(chain) == len(set(chain))
        )
        return {"consistent": consistent, "length": length, "chain": len(chain)}

    def check_consistency(self) -> bool:
        """The Figure 8 debug-build check: full O(n) structural audit.

        Verifies that every node's ``prev`` points at its predecessor,
        that the chain terminates at the tail, and that the stored
        length matches.  Cost is proportional to list length — which is
        exactly what makes it lethal without an energy guard.
        """
        head = self.header.get("head")
        tail = self.header.get("tail")
        if head == NULL or tail == NULL:
            return head == NULL and tail == NULL and self.length() == 0
        count = 0
        prev = NULL
        cursor = head
        while cursor != NULL and count <= self.capacity * 4:
            node = self.node_at(cursor)
            if node.get("prev") != prev:
                return False
            prev = cursor
            cursor = node.get("next")
            count += 1
        return prev == tail and count == self.length()


class SafeNVLinkedList(NVLinkedList):
    """An intermittence-safe list: same operations plus reboot repair.

    The mutation code is unchanged from Figure 3 — what makes this
    variant safe is :meth:`repair`, run once after every reboot (the
    standard recovery idiom for NV structures).  The forward ``next``
    chain is the source of truth: repair walks it from the head,
    rewrites every ``prev`` pointer, and recomputes the tail and the
    length, which heals every partial state ``append``/``remove`` can
    leave behind:

    - append cut before ``tail->next = e``: element unreachable — the
      walk simply does not see it;
    - append cut before ``tail = e``: stale tail — the walk finds the
      true last node and rewrites the tail;
    - remove cut before ``next->prev = prev``: stale back pointer —
      the walk rewrites it.
    """

    def repair(self) -> None:
        """Heal the structure after a reboot (idempotent)."""
        head = self.header.get("head")
        if head == NULL:
            self.header.set("tail", NULL)
            self.header.set("length", 0)
            return
        prev = NULL
        cursor = head
        count = 0
        while cursor != NULL and count <= self.capacity * 4:
            node = self.node_at(cursor)
            if node.get("prev") != prev:
                node.set("prev", prev)
            prev = cursor
            cursor = node.get("next")
            count += 1
        self.header.set("tail", prev)
        self.header.set("length", count)
