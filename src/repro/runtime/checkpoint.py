"""Mementos-style volatile-context checkpointing for the ISA core.

A checkpoint copies the volatile execution context — the register file
(including PC, SP, and SR) plus the live portion of the stack — into a
reserved FRAM area.  On reboot, the runtime restores the most recent
*committed* checkpoint instead of restarting from the entry point.

Checkpoints are double-buffered with a commit flag written last, so a
power failure *during* checkpointing never leaves a torn snapshot: the
previous committed checkpoint remains valid (this is the correctness
property prior work [Ransford et al. ASPLOS'11; Jayakumar et al. 2014]
establishes, and the property-based tests here verify).  Each slot also
carries a Fletcher-16 checksum of its used payload, so post-commit
corruption of the saved state (bit rot, wear, injected faults) is
*detected* at restore time and the runtime falls back to the older
committed snapshot instead of resuming from garbage.

Note the paper's central observation still holds with checkpointing in
place: execution resumes at the *checkpoint*, not at the failure point,
so non-volatile writes performed after the checkpoint are re-executed —
which is precisely how Figure 3's list corruption arises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.cpu import Cpu
from repro.mcu.device import TargetDevice
from repro.mcu.isa import NUM_REGISTERS
from repro.mcu.memory import SRAM_BASE, SRAM_SIZE

# FRAM layout of one checkpoint slot:
#   [0]  sequence number (0 = empty)
#   [2]  Fletcher-16 checksum of the used payload (commit integrity)
#   [4]  stack byte count
#   [6]  16 register words
#   [38] stack image (up to MAX_STACK bytes)
_SEQ_OFF = 0
_CKSUM_OFF = 2
_STACK_LEN_OFF = 4
_REGS_OFF = 6
_STACK_OFF = _REGS_OFF + 2 * NUM_REGISTERS
MAX_STACK = 256
SLOT_SIZE = _STACK_OFF + MAX_STACK

CHECKPOINT_CYCLES_BASE = 40  # bookkeeping overhead per checkpoint


def fletcher16(data: bytes) -> int:
    """Fletcher-16 over ``data`` (sums seeded at 1 so zeroes != valid).

    The seed matters: an erased slot is all zeroes, and a plain Fletcher
    of an all-zero payload is 0 — which would make a forged sequence
    number on an empty slot validate.  Seeding the running sums at 1
    gives every payload, including the empty one, a nonzero checksum.
    """
    sum1, sum2 = 1, 1
    for byte in data:
        sum1 = (sum1 + byte) % 255
        sum2 = (sum2 + sum1) % 255
    return (sum2 << 8) | sum1


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata of a committed checkpoint."""

    sequence: int
    pc: int
    sp: int
    stack_bytes: int


class CheckpointManager:
    """Double-buffered checkpoint store in FRAM.

    Parameters
    ----------
    device:
        The target whose CPU context is checkpointed.
    base_address:
        FRAM address of the two checkpoint slots (``2 * SLOT_SIZE``
        bytes are used).
    """

    def __init__(self, device: TargetDevice, base_address: int) -> None:
        self.device = device
        self.base_address = base_address
        self.checkpoints_taken = 0
        self.restores = 0
        self.corruptions_detected = 0

    # -- slot helpers -----------------------------------------------------
    def _slot_address(self, slot: int) -> int:
        return self.base_address + slot * SLOT_SIZE

    def _slot_sequence(self, slot: int) -> int:
        return self.device.memory.read_u16(self._slot_address(slot) + _SEQ_OFF)

    def _slot_payload(self, slot: int) -> bytes | None:
        """The used payload bytes of a slot, or ``None`` if implausible.

        The payload is contiguous: the stack byte count, the register
        file, and the live stack image.  A stack count outside the slot
        capacity means the count itself is corrupt.
        """
        base = self._slot_address(slot)
        stack_bytes = self.device.memory.read_u16(base + _STACK_LEN_OFF)
        if not 0 <= stack_bytes <= MAX_STACK:
            return None
        return self.device.memory.read_bytes(
            base + _STACK_LEN_OFF, 2 + 2 * NUM_REGISTERS + stack_bytes
        )

    def slot_is_valid(self, slot: int) -> bool:
        """Whether a slot holds a committed, checksum-clean checkpoint."""
        if self._slot_sequence(slot) == 0:
            return False
        payload = self._slot_payload(slot)
        if payload is None:
            return False
        stored = self.device.memory.read_u16(
            self._slot_address(slot) + _CKSUM_OFF
        )
        return fletcher16(payload) == stored

    def _committed_slot(self) -> int | None:
        """Index of the newest committed slot that passes validation.

        Corrupted-but-committed slots are skipped (and counted), so a
        bit-flip in the newest checkpoint degrades to the previous one
        instead of resuming from garbage.
        """
        candidates = []
        for slot in (0, 1):
            if self._slot_sequence(slot) == 0:
                continue
            if self.slot_is_valid(slot):
                candidates.append(slot)
            else:
                self.corruptions_detected += 1
        if not candidates:
            return None
        return max(candidates, key=self._slot_sequence)

    def erase(self) -> None:
        """Invalidate both slots (used when flashing a new program)."""
        for slot in (0, 1):
            self.device.memory.write_u16(self._slot_address(slot) + _SEQ_OFF, 0)

    def corrupt_bit(self, slot: int, byte_offset: int, bit: int) -> None:
        """Flip one bit inside a slot's FRAM image (fault injection).

        Host-side and uncosted — this models radiation/wear corruption
        of the saved state, not target activity.  The campaign engine
        and the property tests use it to verify that corrupted
        checkpoints are detected rather than silently restored.
        """
        if slot not in (0, 1):
            raise ValueError(f"slot must be 0 or 1 (got {slot})")
        if not 0 <= byte_offset < SLOT_SIZE:
            raise ValueError(
                f"byte offset {byte_offset} outside slot of {SLOT_SIZE} bytes"
            )
        if not 0 <= bit < 8:
            raise ValueError(f"bit must be 0..7 (got {bit})")
        address = self._slot_address(slot) + byte_offset
        value = self.device.memory.read_u8(address)
        self.device.memory.write_u8(address, value ^ (1 << bit))

    # -- checkpoint / restore -------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        """Snapshot the CPU's volatile context into the stale slot.

        Costs cycles proportional to the amount of state copied, and is
        interruptible: the sequence number is written *last*, so a
        power failure mid-copy leaves the slot uncommitted.
        """
        cpu = self.device.cpu
        committed = self._committed_slot()
        target_slot = 0 if committed in (None, 1) else 1
        sequence = (
            1 if committed is None else self._slot_sequence(committed) + 1
        )
        stack_top = SRAM_BASE + SRAM_SIZE
        stack_bytes = stack_top - cpu.sp
        if not 0 <= stack_bytes <= MAX_STACK:
            raise ValueError(
                f"stack image of {stack_bytes} bytes exceeds checkpoint "
                f"capacity ({MAX_STACK})"
            )
        base = self._slot_address(target_slot)
        memory = self.device.memory
        # Copy costs: ~2 cycles per word moved to FRAM (the checksum
        # word is one of them).
        words_moved = NUM_REGISTERS + stack_bytes // 2 + 3
        self.device.execute_cycles(CHECKPOINT_CYCLES_BASE + 2 * words_moved)
        stack_image = memory.read_bytes(cpu.sp, stack_bytes) if stack_bytes else b""
        memory.write_u16(base + _STACK_LEN_OFF, stack_bytes)
        for i, value in enumerate(cpu.registers):
            memory.write_u16(base + _REGS_OFF + 2 * i, value)
        if stack_bytes:
            memory.write_bytes(base + _STACK_OFF, stack_image)
        payload = (
            stack_bytes.to_bytes(2, "little")
            + b"".join((r & 0xFFFF).to_bytes(2, "little") for r in cpu.registers)
            + stack_image
        )
        memory.write_u16(base + _CKSUM_OFF, fletcher16(payload))
        # Commit point: the sequence-number write makes the slot live.
        memory.write_u16(base + _SEQ_OFF, sequence & 0xFFFF or 1)
        self.checkpoints_taken += 1
        return CheckpointInfo(
            sequence=sequence,
            pc=cpu.registers[0],
            sp=cpu.sp,
            stack_bytes=stack_bytes,
        )

    def restore(self) -> CheckpointInfo | None:
        """Restore the newest committed checkpoint into the CPU.

        Returns ``None`` (leaving the CPU at the entry point) when no
        committed checkpoint exists.
        """
        committed = self._committed_slot()
        if committed is None:
            return None
        base = self._slot_address(committed)
        memory = self.device.memory
        cpu: Cpu = self.device.cpu
        stack_bytes = memory.read_u16(base + _STACK_LEN_OFF)
        words_moved = NUM_REGISTERS + stack_bytes // 2 + 2
        self.device.execute_cycles(CHECKPOINT_CYCLES_BASE + 2 * words_moved)
        cpu.registers = [
            memory.read_u16(base + _REGS_OFF + 2 * i) for i in range(NUM_REGISTERS)
        ]
        if stack_bytes:
            memory.write_bytes(
                cpu.sp, memory.read_bytes(base + _STACK_OFF, stack_bytes)
            )
        cpu.halted = False
        self.restores += 1
        return CheckpointInfo(
            sequence=self._slot_sequence(committed),
            pc=cpu.registers[0],
            sp=cpu.sp,
            stack_bytes=stack_bytes,
        )
