"""The energy storage capacitor.

The capacitor is the single energy buffer of the target device: the
harvester fills it, the MCU drains it, and EDB's charge/discharge
circuit manipulates it during active-mode debugging.  State is the
terminal voltage; energy follows ``E = 1/2 C V^2``.
"""

from __future__ import annotations

import math

from repro.sim import units


def closed_form_step(
    v: float,
    dt: float,
    voc: float,
    v_inf: float,
    exp_charge: float,
    net: float,
    capacitance: float,
    max_voltage: float,
    leak_factor: float | None,
) -> float:
    """One analytic RC(+leakage) trajectory step from precomputed constants.

    This is the reference form of the arithmetic the device's fast
    spend path and closed-form fast-forward span inline
    (``TargetDevice.execute_cycles``): the Thevenin charge solution
    ``v_inf + (v - v_inf) * exp(-dt/tau)`` while the open-circuit
    voltage is above the rail, the constant-net discharge
    ``v - net*dt/C`` otherwise, branch-chain clamped to
    ``[0, max_voltage]``, then the leakage decay factor
    ``exp(-dt/leak_tau)`` under the same clamp.  Expression shapes and
    operand order are load-bearing: the equivalence tests pin the
    device's inlined copies against this function bit for bit, which is
    what lets a whole trace of spends fast-forward without drifting
    from the single-step trajectory.  ``exp_charge`` and
    ``leak_factor`` are the caller-memoized exponentials (``None``
    disables leakage).
    """
    if voc > v:
        new_v = v_inf + (v - v_inf) * exp_charge
    else:
        new_v = v - net * dt / capacitance
    if new_v < 0.0:
        out = 0.0
    elif new_v > max_voltage:
        out = max_voltage
    else:
        out = new_v
    if leak_factor is not None and out > 0.0:
        out = out * leak_factor
        if out < 0.0:
            out = 0.0
        elif out > max_voltage:
            out = max_voltage
    return out


def closed_form_step_lanes(
    v,
    dt: float,
    voc: float,
    v_inf: float,
    exp_charge: float,
    net: float,
    capacitance: float,
    max_voltage: float,
    leak_factor: float | None,
):
    """Vectorized twin of :func:`closed_form_step` across a lane axis.

    ``v`` is a NumPy array of per-lane terminal voltages; every other
    parameter is the same scalar constant the scalar form takes — in
    particular the exponentials arrive *precomputed* (one ``math.exp``
    serves the whole batch), because ``np.exp`` is not guaranteed to
    round identically to ``math.exp`` and the lane engine's contract is
    bit-identity with the scalar trajectory.  The body uses only
    IEEE-exact elementwise operations (add, multiply, divide, compare,
    select) arranged in the scalar form's exact expression shapes and
    operand order, so evaluating a lane through this function yields
    the same 64-bit float the scalar form computes for that lane's
    voltage.  The equivalence is pinned bit-for-bit by the lane-vs-
    scalar differential property suite in ``tests/test_batch.py``.
    """
    import numpy as np

    v = np.asarray(v, dtype=np.float64)
    charged = v_inf + (v - v_inf) * exp_charge
    drained = v - net * dt / capacitance
    new_v = np.where(voc > v, charged, drained)
    out = np.where(
        new_v < 0.0, 0.0, np.where(new_v > max_voltage, max_voltage, new_v)
    )
    if leak_factor is not None:
        leaked = out * leak_factor
        leaked = np.where(
            leaked < 0.0,
            0.0,
            np.where(leaked > max_voltage, max_voltage, leaked),
        )
        out = np.where(out > 0.0, leaked, out)
    return out


class StorageCapacitor:
    """An ideal capacitor with optional self-leakage.

    Parameters
    ----------
    capacitance:
        Capacitance in farads (the WISP 5 uses 47 uF).
    voltage:
        Initial terminal voltage in volts.
    max_voltage:
        Clamp voltage in volts; charging above this is shunted (models
        the overvoltage-protection clamp present on harvesting front
        ends).
    leakage_resistance:
        Self-discharge path in ohms (``None`` disables self-leakage).
    """

    def __init__(
        self,
        capacitance: float,
        voltage: float = 0.0,
        max_voltage: float = 5.5,
        leakage_resistance: float | None = None,
    ) -> None:
        if capacitance <= 0.0:
            raise ValueError(f"capacitance must be positive (got {capacitance})")
        if voltage < 0.0:
            raise ValueError(f"initial voltage must be non-negative (got {voltage})")
        self.capacitance = capacitance
        self.max_voltage = max_voltage
        self.leakage_resistance = leakage_resistance
        self._voltage = min(voltage, max_voltage)

    # -- state ----------------------------------------------------------
    @property
    def voltage(self) -> float:
        """Terminal voltage in volts."""
        return self._voltage

    @voltage.setter
    def voltage(self, value: float) -> None:
        self._voltage = min(max(value, 0.0), self.max_voltage)

    @property
    def energy(self) -> float:
        """Stored energy in joules (``1/2 C V^2``)."""
        return units.cap_energy(self.capacitance, self._voltage)

    @property
    def charge(self) -> float:
        """Stored charge in coulombs (``Q = C V``)."""
        return self.capacitance * self._voltage

    def energy_fraction(self, reference_voltage: float) -> float:
        """Stored energy as a fraction of the energy at ``reference_voltage``.

        The paper reports energy costs "as percentage of 47 uF storage
        capacity", meaning relative to the energy held at the maximum
        operating voltage (2.4 V for the WISP).
        """
        reference = units.cap_energy(self.capacitance, reference_voltage)
        return self.energy / reference if reference > 0.0 else 0.0

    # -- energy/charge transfer -----------------------------------------
    def add_energy(self, energy_j: float) -> None:
        """Deposit ``energy_j`` joules (clamped at ``max_voltage``)."""
        if energy_j < 0.0:
            raise ValueError("use drain_energy() to remove energy")
        self.voltage = units.cap_voltage(self.capacitance, self.energy + energy_j)

    def drain_energy(self, energy_j: float) -> float:
        """Remove up to ``energy_j`` joules; returns the amount removed."""
        if energy_j < 0.0:
            raise ValueError("use add_energy() to deposit energy")
        removed = min(energy_j, self.energy)
        self.voltage = units.cap_voltage(self.capacitance, self.energy - removed)
        return removed

    def apply_current(self, current_a: float, dt: float) -> None:
        """Integrate a constant current for ``dt`` seconds.

        Positive current charges, negative discharges.  ``dV = I dt / C``.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative (got {dt})")
        self.voltage = self._voltage + current_a * dt / self.capacitance

    def closed_form_advance(
        self, dt: float, voc: float, rs: float, net_current: float
    ) -> float:
        """Advance the terminal voltage one closed-form step; returns it.

        Computes the step constants (``tau = rs * C``, the leakage
        decay) and applies :func:`closed_form_step`.  Analytic
        screening predictors sketch whole charge/discharge trajectories
        with this, no simulator required; the device's fast paths run
        the same arithmetic from memoized constants.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative (got {dt})")
        cap = self.capacitance
        exp_charge = math.exp(-dt / (rs * cap))
        leak_r = self.leakage_resistance
        leak_factor = (
            math.exp(-dt / (leak_r * cap)) if leak_r is not None else None
        )
        self._voltage = closed_form_step(
            self._voltage,
            dt,
            voc,
            voc - net_current * rs,
            exp_charge,
            net_current,
            cap,
            self.max_voltage,
            leak_factor,
        )
        return self._voltage

    def step_leakage(self, dt: float) -> None:
        """Apply self-discharge through ``leakage_resistance`` for ``dt``."""
        if self.leakage_resistance is None or self._voltage <= 0.0:
            return
        tau = self.leakage_resistance * self.capacitance
        self.voltage = self._voltage * math.exp(-dt / tau)

    def __repr__(self) -> str:
        return (
            f"StorageCapacitor({self.capacitance / units.UF:.1f}uF, "
            f"{self._voltage:.3f}V, {self.energy / units.UJ:.2f}uJ)"
        )
