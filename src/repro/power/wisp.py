"""WISP 5 power constants and a factory for its power system.

All numbers come from Section 5.1 of the paper:

- 47 uF energy storage capacitor,
- 2.4 V turn-on threshold,
- 1.8 V brown-out threshold,
- ~0.5 mA active current at 4 MHz,
- powered by RF radiation from an Impinj Speedway Revolution reader
  transmitting at up to 30 dBm from 1 m away.

Section 2.2 provides the LED figure: lighting an LED raises the WISP's
draw from around 1 mA to over 5 mA (a 5x increase).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.capacitor import StorageCapacitor
from repro.power.harvester import RFHarvester
from repro.power.regulator import LinearRegulator
from repro.power.supply import PowerSystem
from repro.sim import units
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class WispPowerConstants:
    """Electrical constants of the WISP 5 target used in the evaluation."""

    capacitance: float = 47 * units.UF
    turn_on_voltage: float = 2.4
    brownout_voltage: float = 1.8
    max_voltage: float = 2.4  # harvesting front-end clamp (= max energy ref)
    active_current: float = 0.5 * units.MA
    # Non-MCU system draw while active (harvesting front end, boost
    # converter losses, always-on analog).  Section 2.2 puts the WISP's
    # total active draw "around 1 mA", i.e. MCU + ~0.5 mA of system.
    system_current: float = 0.5 * units.MA
    sleep_current: float = 2.0 * units.UA
    clock_hz: float = 4 * units.MHZ
    led_current: float = 4.5 * units.MA  # extra draw: ~1 mA -> >5 mA total
    reader_tx_power_dbm: float = 30.0
    reader_distance_m: float = 1.0

    @property
    def full_energy(self) -> float:
        """Energy stored at the maximum operating voltage, in joules.

        The paper reports debugging-task energy costs "as percentage of
        47 uF storage capacity", i.e. of this quantity (~135 uJ).
        """
        return units.cap_energy(self.capacitance, self.max_voltage)

    @property
    def cycle_time(self) -> float:
        """Duration of one MCU clock cycle, in seconds."""
        return 1.0 / self.clock_hz


def make_wisp_power_system(
    sim: Simulator,
    constants: WispPowerConstants | None = None,
    distance_m: float | None = None,
    initial_voltage: float | None = None,
    fading_sigma: float = 0.0,
) -> PowerSystem:
    """Build a WISP-5-like power system: RF harvester + 47 uF capacitor.

    Parameters
    ----------
    sim:
        Simulation kernel.
    constants:
        Override the default WISP constants.
    distance_m:
        Reader-to-tag distance (defaults to the paper's 1 m).
    initial_voltage:
        Starting capacitor voltage (defaults to brown-out, i.e. the
        device begins dark and must charge to turn-on).
    fading_sigma:
        RF fading jitter in dB (0 = deterministic harvesting).
    """
    c = constants or WispPowerConstants()
    harvester = RFHarvester(
        tx_power_dbm=c.reader_tx_power_dbm,
        distance_m=distance_m if distance_m is not None else c.reader_distance_m,
        fading_sigma=fading_sigma,
        rng=sim.rng if fading_sigma > 0.0 else None,
    )
    capacitor = StorageCapacitor(
        capacitance=c.capacitance,
        voltage=initial_voltage if initial_voltage is not None else c.brownout_voltage,
        max_voltage=3.3,
    )
    return PowerSystem(
        sim=sim,
        source=harvester,
        capacitor=capacitor,
        regulator=LinearRegulator(),
        turn_on_voltage=c.turn_on_voltage,
        brownout_voltage=c.brownout_voltage,
    )
