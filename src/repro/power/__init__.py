"""Energy subsystem of the simulated energy-harvesting target.

This package models the left half of the paper's Figure 2A: an ambient
energy source with high source resistance, a storage capacitor, and a
regulator feeding the load.  Charging follows the characteristic RC
"sawtooth" law; discharge is driven by whatever current the MCU and its
peripherals draw.  A comparator with hysteresis (turn-on threshold above
brown-out threshold) makes operation intermittent.

The WISP 5 constants used throughout the evaluation (47 uF, 2.4 V
turn-on, 1.8 V brown-out, ~0.5 mA active at 4 MHz) live in
:mod:`repro.power.wisp`.
"""

from repro.power.capacitor import StorageCapacitor
from repro.power.ekho import HarvestRecorder, record_environment
from repro.power.harvester import (
    ConstantCurrentSource,
    EnergySource,
    NullSource,
    RFHarvester,
    SolarHarvester,
    TetheredSupply,
    TraceDrivenSource,
)
from repro.power.regulator import LinearRegulator
from repro.power.supply import PowerState, PowerSystem
from repro.power.wisp import WispPowerConstants, make_wisp_power_system

__all__ = [
    "ConstantCurrentSource",
    "EnergySource",
    "HarvestRecorder",
    "LinearRegulator",
    "NullSource",
    "PowerState",
    "PowerSystem",
    "RFHarvester",
    "SolarHarvester",
    "StorageCapacitor",
    "TetheredSupply",
    "TraceDrivenSource",
    "WispPowerConstants",
    "make_wisp_power_system",
    "record_environment",
]
