"""Ekho-style recording and replay of harvesting conditions (§6.1).

Ekho [Hester, Scott, Sorber — SenSys'14] records the energy a harvester
delivers in a real deployment and replays the trace into a device on
the bench, making intermittent failures *repeatable*.  The paper
positions EDB as complementary: Ekho reproduces problematic behaviour,
EDB explains it.

This module provides the recording half over simulated harvesters —
sample any :class:`EnergySource`'s Thevenin operating point on a fixed
schedule — and round-trips into the replaying half that already exists
(:class:`~repro.power.harvester.TraceDrivenSource`).  Traces can be
saved to and loaded from a simple CSV so deployments can be archived
and shared.
"""

from __future__ import annotations

import csv
import io

from repro.power.harvester import EnergySource, TraceDrivenSource
from repro.sim import units
from repro.sim.kernel import Event, Simulator


class HarvestRecorder:
    """Samples a source's (Voc, Rs) operating point over time.

    Parameters
    ----------
    sim:
        Simulation kernel (provides the sampling schedule).
    source:
        The live source to record.
    sample_rate:
        Samples per second (100 Hz default — harvesting conditions
        change at environmental, not electrical, timescales).
    """

    def __init__(
        self,
        sim: Simulator,
        source: EnergySource,
        sample_rate: float = 100.0,
    ) -> None:
        if sample_rate <= 0.0:
            raise ValueError(f"sample rate must be positive (got {sample_rate})")
        self.sim = sim
        self.source = source
        self.sample_rate = sample_rate
        self.times: list[float] = []
        self.voc: list[float] = []
        self.rs: list[float] = []
        self._event: Event | None = None

    # -- recording ----------------------------------------------------------
    def start(self) -> None:
        """Begin recording (immediate first sample)."""
        if self._event is not None:
            return
        self._capture()
        self._event = self.sim.call_every(1.0 / self.sample_rate, self._capture)

    def stop(self) -> None:
        """Stop recording."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _capture(self) -> None:
        t = self.sim.now
        self.times.append(t)
        self.voc.append(self.source.open_circuit_voltage(t))
        self.rs.append(self.source.source_resistance(t))

    @property
    def sample_count(self) -> int:
        """Number of samples recorded so far."""
        return len(self.times)

    # -- replay ----------------------------------------------------------------
    def to_source(self, rebase_time: bool = True) -> TraceDrivenSource:
        """Build a replaying source from the recording.

        ``rebase_time`` shifts the trace to start at t=0 so it can be
        replayed in a fresh simulation.
        """
        if not self.times:
            raise ValueError("nothing recorded yet")
        t0 = self.times[0] if rebase_time else 0.0
        return TraceDrivenSource(
            [t - t0 for t in self.times], list(self.voc), list(self.rs)
        )

    # -- persistence ---------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise the recording: ``time_s,voc_v,rs_ohm`` rows."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["time_s", "voc_v", "rs_ohm"])
        for row in zip(self.times, self.voc, self.rs):
            writer.writerow([f"{v:.9g}" for v in row])
        return out.getvalue()

    @staticmethod
    def from_csv(text: str) -> TraceDrivenSource:
        """Load a replaying source from :meth:`to_csv` output."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["time_s", "voc_v", "rs_ohm"]:
            raise ValueError(f"not a harvest trace CSV (header {header!r})")
        times, voc, rs = [], [], []
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            voc.append(float(row[1]))
            rs.append(float(row[2]))
        t0 = times[0] if times else 0.0
        return TraceDrivenSource([t - t0 for t in times], voc, rs)


def record_environment(
    sim: Simulator,
    source: EnergySource,
    duration: float,
    sample_rate: float = 100.0,
) -> HarvestRecorder:
    """Convenience: record ``source`` for ``duration`` seconds from now.

    Advances the simulation clock (only do this in a dedicated
    recording simulation, or interleave with device activity yourself
    by calling :class:`HarvestRecorder` directly).
    """
    recorder = HarvestRecorder(sim, source, sample_rate=sample_rate)
    recorder.start()
    sim.advance(duration)
    recorder.stop()
    return recorder
