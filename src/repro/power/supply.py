"""The intermittent power system: harvester + capacitor + comparator.

:class:`PowerSystem` glues an :class:`~repro.power.harvester.EnergySource`
to a :class:`~repro.power.capacitor.StorageCapacitor` and a regulator,
and applies the hysteresis comparator that defines intermittent
operation: the load turns on when the capacitor reaches the *turn-on
threshold* and browns out when it falls below the *brown-out threshold*
(2.4 V and 1.8 V on the WISP 5).

The power system is also the point where EDB touches the target's
energy state:

- passive-mode leakage currents are injected via
  :meth:`PowerSystem.inject_current`;
- active-mode tethering swaps in a stiff supply via
  :meth:`PowerSystem.tether`;
- the charge/discharge circuit manipulates the capacitor directly
  (see :mod:`repro.analog.charge_circuit`).
"""

from __future__ import annotations

import enum
import math
from typing import Callable

from repro.power.capacitor import StorageCapacitor
from repro.power.harvester import EnergySource, charge_step
from repro.power.regulator import LinearRegulator
from repro.sim import units
from repro.sim.kernel import Simulator


class PowerState(enum.Enum):
    """Operating state of the intermittently powered load."""

    OFF = "off"  # below turn-on threshold, charging
    ON = "on"  # operating, discharging toward brown-out


class PowerSystem:
    """Intermittent supply with hysteresis thresholds.

    Parameters
    ----------
    sim:
        Simulation kernel (clock + trace).
    source:
        Ambient energy source (Thevenin model).
    capacitor:
        Energy storage element.
    regulator:
        On-board LDO feeding the MCU.
    turn_on_voltage / brownout_voltage:
        Comparator thresholds in volts; turn-on must exceed brown-out.
    trace_channel:
        Channel prefix for power events in the simulation trace.
    """

    def __init__(
        self,
        sim: Simulator,
        source: EnergySource,
        capacitor: StorageCapacitor,
        regulator: LinearRegulator | None = None,
        turn_on_voltage: float = 2.4,
        brownout_voltage: float = 1.8,
        trace_channel: str = "power",
    ) -> None:
        if turn_on_voltage <= brownout_voltage:
            raise ValueError(
                f"turn-on threshold ({turn_on_voltage} V) must exceed "
                f"brown-out threshold ({brownout_voltage} V)"
            )
        self.sim = sim
        self.source = source
        self.capacitor = capacitor
        self.regulator = regulator or LinearRegulator()
        self.turn_on_voltage = turn_on_voltage
        self.brownout_voltage = brownout_voltage
        self.trace_channel = trace_channel

        self._state = PowerState.OFF
        self._tether: EnergySource | None = None
        self._injected_current = 0.0
        self.reboots = 0
        self.turn_ons = 0
        self.on_power_change: list[Callable[[PowerState], None]] = []
        # Environment epoch: bumped whenever anything that a cached
        # steady-state view of the supply could depend on changes out
        # of band — tether/untether, injected current, comparator
        # transitions and resets.  The device's fast spend window (see
        # TargetDevice.execute_cycles) compares this counter instead of
        # subscribing to every hook.  Code that mutates source
        # parameters directly mid-run should call
        # :meth:`invalidate_env`.
        self._env_epoch = 0
        # Per-source probe cache for the batching fast paths: the
        # hold_until/thevenin lookups are per-*type* facts, but both
        # probes run on every batched step and the defaulted getattr
        # pair is measurable there.  Keyed by source identity so a
        # tether swap naturally misses.
        self._probe_cache: tuple | None = None
        self._refresh_state(initial=True)

    # -- observers --------------------------------------------------------
    @property
    def vcap(self) -> float:
        """Capacitor (storage) voltage in volts."""
        return self.capacitor.voltage

    @property
    def vreg(self) -> float:
        """Regulated rail voltage in volts (tracks Vcap in dropout)."""
        return self.regulator.output_voltage(self.capacitor.voltage)

    @property
    def state(self) -> PowerState:
        """Current comparator state."""
        return self._state

    @property
    def is_on(self) -> bool:
        """True while the load is powered.

        Either the comparator is in its ON state (between turn-on and
        brown-out), or EDB has tethered the target to a continuous
        supply — a tethered MCU is powered regardless of the stored
        energy level (that is the whole point of keep-alive).
        """
        return self._state is PowerState.ON or self.is_tethered

    @property
    def is_tethered(self) -> bool:
        """True while EDB has swapped in a continuous supply."""
        return self._tether is not None

    def headroom_energy(self) -> float:
        """Usable energy above the brown-out threshold, in joules."""
        floor = units.cap_energy(self.capacitor.capacitance, self.brownout_voltage)
        return max(0.0, self.capacitor.energy - floor)

    # -- EDB attachment points ---------------------------------------------
    def inject_current(self, current_a: float) -> None:
        """Set the net DC current injected by an attached debugger.

        Positive current charges the target (energy-interference *into*
        the device); negative discharges it.  The value persists until
        changed — it models a steady leakage operating point.
        """
        self._injected_current = current_a
        self._env_epoch += 1

    @property
    def injected_current(self) -> float:
        """Currently injected debugger-side DC current (amperes)."""
        return self._injected_current

    def tether(self, supply: EnergySource) -> None:
        """Power the target from ``supply`` instead of the harvester."""
        self._tether = supply
        self._env_epoch += 1

    def untether(self) -> None:
        """Return the target to harvested power."""
        self._tether = None
        self._env_epoch += 1

    def invalidate_env(self) -> None:
        """Declare that the electrical environment changed out of band.

        Call after mutating source parameters directly (distance,
        enablement, duty) outside a simulator event — cached
        steady-state views of the supply are dropped and rebuilt from
        the live values on the next step.
        """
        self._env_epoch += 1

    def force_brownout(self, margin_v: float = 0.02) -> bool:
        """Yank the capacitor just below the brown-out threshold.

        The surgical fault-injection primitive shared by the test
        injectors and the campaign engine: the *next* unit of device
        work observes the dead rail and raises ``PowerFailure``, exactly
        as an organic brown-out would.  Returns ``False`` (and does
        nothing) when the target is tethered — a stiff supply cannot be
        browned out, which mirrors the hardware.
        """
        if self.is_tethered:
            return False
        self.capacitor.voltage = min(
            self.capacitor.voltage, self.brownout_voltage - margin_v
        )
        self.step(0.0)
        return True

    # -- dynamics -----------------------------------------------------------
    def _active_source(self) -> EnergySource:
        return self._tether if self._tether is not None else self.source

    def _source_probes(self, source: EnergySource) -> tuple:
        """``(source, hold_until, thevenin)`` with memoized lookups."""
        cache = self._probe_cache
        if cache is not None and cache[0] is source:
            return cache
        cache = (
            source,
            getattr(source, "hold_until", None),
            getattr(source, "thevenin", None),
        )
        self._probe_cache = cache
        return cache

    def step(self, dt: float, load_current: float = 0.0) -> bool:
        """Advance the electrical state by ``dt`` with the given load.

        ``load_current`` is what the MCU and peripherals draw from the
        regulator; the regulator adds its quiescent current.  Returns
        ``True`` if the load is still powered after the step.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative (got {dt})")
        source = self._active_source()
        t = self.sim.now
        capacitor = self.capacitor
        input_current = self.regulator.input_current(
            capacitor.voltage, load_current
        )
        net_load = input_current - self._injected_current
        # One source evaluation per step: thevenin() returns the exact
        # (Voc, Rs) pair the two separate accessors would.
        thevenin = self._source_probes(source)[2]
        if thevenin is not None:
            voc, rs = thevenin(t)
        else:
            voc = source.open_circuit_voltage(t)
            rs = source.source_resistance(t)
        new_v = charge_step(
            v0=capacitor.voltage,
            voc=voc,
            rs=rs,
            capacitance=capacitor.capacitance,
            load_current=net_load,
            dt=dt,
        )
        capacitor.voltage = new_v
        if capacitor.leakage_resistance is not None:
            capacitor.step_leakage(dt)
        self._refresh_state()
        return self.is_on

    def idle_step(self, dt: float) -> None:
        """Advance the electrical state with the load powered off.

        Used for the charging portion of each charge/discharge cycle:
        only the harvester (or tether) and any injected debugger current
        act on the capacitor.
        """
        self.step(dt, load_current=0.0)

    def charge_until_on(
        self,
        step_dt: float = 100 * units.US,
        timeout: float = 10.0,
        batch: bool = True,
    ) -> float:
        """Simulate the off period until the turn-on threshold is reached.

        Advances the simulation clock (so scheduled events — e.g. EDB's
        ADC sampling — keep firing while the target is dark).  Returns
        the charging time spent.  Raises :class:`ChargingTimeout` if the
        source cannot reach the threshold within ``timeout`` seconds —
        which happens when debugging instrumentation (or a broken app)
        out-draws the harvester.

        The charge is normally fast-forwarded analytically: instead of
        paying the full per-step machinery every 100 us, the RC curve is
        replayed on the same time grid in pure local arithmetic and the
        clock jumps straight to the turn-on crossing, clamped to the
        next scheduled event and to any change in source conditions (a
        fading redraw, a duty edge) so nothing fires late.  The replay
        is *bit-exact* with respect to the stepped integration — that is
        the campaign engine's byte-identical-report contract.  ``batch``
        exists as a verification escape hatch: ``batch=False`` forces
        the historical one-``idle_step``-per-iteration path.
        """
        start = self.sim.now
        while not self.is_on:
            if self.sim.stop_requested:
                break  # cooperative stop: caller resumes charging later
            if self.sim.now - start > timeout:
                raise ChargingTimeout(
                    f"capacitor stuck at {self.vcap:.3f} V after "
                    f"{timeout:.2f} s of charging (turn-on is "
                    f"{self.turn_on_voltage:.2f} V)"
                )
            if not batch or not self._charge_fast_forward(
                step_dt, start, timeout
            ):
                self.sim.advance(step_dt)
                self.idle_step(step_dt)
        return self.sim.now - start

    def _charge_fast_forward(
        self, step_dt: float, start: float, timeout: float
    ) -> bool:
        """Fast-forward whole charging steps; True if any were taken.

        Replays the exact arithmetic of ``idle_step`` (regulator draw,
        :func:`charge_step`, clamping, leakage) on the exact time grid
        (``now`` advanced by repeated ``+ step_dt``), but only inside a
        window where nothing can observe or perturb the trajectory:
        strictly before the next scheduled event and strictly before the
        source's conditions may change (see ``hold_until``).  Anything
        outside the window — an imminent event, a fading redraw, a duty
        edge, a degenerate voltage — falls back to the caller's
        one-step-at-a-time path, which handles it exactly as before.
        """
        source = self._active_source()
        _, hold_until, thevenin = self._source_probes(source)
        if hold_until is None:
            return False  # unknown source model: never batch over it
        t0 = self.sim.now
        bound = hold_until(t0)
        next_event = self.sim.next_event_time()
        if next_event < bound:
            bound = next_event
        if not bound > t0:  # also rejects a NaN bound
            return False
        cap = self.capacitor
        v = cap.voltage
        if v <= 0.0:
            return False  # regulator cut-off edge: take the slow path
        # Inside the window the source is constant and call-free, so
        # sampling at t0 is the value every step would see.
        if thevenin is not None:
            voc, rs = thevenin(t0)
        else:
            voc = source.open_circuit_voltage(t0)
            rs = source.source_resistance(t0)
        net_load = self.regulator.input_current(v, 0.0) - self._injected_current
        capacitance = cap.capacitance
        vmax = cap.max_voltage
        turn_on = self.turn_on_voltage
        # Per-step constants, computed exactly as charge_step() and
        # step_leakage() compute them (same expressions, same rounding).
        tau = rs * capacitance
        exp_charge = math.exp(-step_dt / tau)
        v_inf = voc - net_load * rs
        lin_delta = net_load * step_dt / capacitance
        leak_r = cap.leakage_resistance
        leak_factor = (
            math.exp(-step_dt / (leak_r * capacitance))
            if leak_r is not None
            else 1.0
        )
        t = t0
        steps = 0
        while True:
            next_t = t + step_dt
            if next_t >= bound:
                break
            if t - start > timeout:
                break  # outer loop re-checks and raises ChargingTimeout
            if voc > v:
                new_v = v_inf + (v - v_inf) * exp_charge
            else:
                new_v = v - lin_delta  # rectifier blocks: linear discharge
            v = min(max(new_v, 0.0), vmax)
            if leak_r is not None and v > 0.0:
                v = min(max(v * leak_factor, 0.0), vmax)
            t = next_t
            steps += 1
            if v >= turn_on or v <= 0.0:
                break
        if steps == 0:
            return False
        # Defence in depth against boundary rounding in hold_until():
        # the source must still read back the sampled conditions at the
        # end of the window, else discard the batch and replay slowly.
        if thevenin is not None:
            if thevenin(t) != (voc, rs):
                return False
        elif (
            source.open_circuit_voltage(t) != voc
            or source.source_resistance(t) != rs
        ):
            return False
        self.sim.advance_to(t)  # exact grid time; fires nothing by construction
        cap.voltage = v
        self._refresh_state()
        return True

    def reset_comparator(self) -> None:
        """Re-evaluate the comparator from scratch (cold-start rules).

        Used after externally forcing the capacitor voltage (e.g. the
        executor restoring the pre-flash level): the load is considered
        OFF unless the voltage is at or above the turn-on threshold.
        """
        self._state = (
            PowerState.ON
            if self.capacitor.voltage >= self.turn_on_voltage
            else PowerState.OFF
        )
        self._env_epoch += 1

    def steady_window(self) -> tuple[float, float, float, float] | None:
        """A window in which per-step supply arithmetic is replayable.

        Returns ``(voc, rs, bound, floor)``, meaning: while the
        comparator stays ON, the clock is strictly before ``bound``, and
        the stepped voltage stays at or above ``floor``, every supply
        step is a pure function of ``(v, dt)`` with the returned
        Thevenin pair — no RNG draws, no comparator transitions, no
        trace records, no hooks.  ``floor`` is the brown-out threshold,
        or ``-inf`` for a tethered target (a stiff supply cannot brown
        out).  Returns ``None`` when no such window exists right now
        (comparator OFF, an unknown source model, or source conditions
        about to change).

        ``hold_until`` is queried *before* ``thevenin`` so that a
        pending fading redraw (hold_until returning "now") aborts the
        probe without consuming the RNG draw — it must land on the
        stepped path's schedule.  The bound is shrunk by a few ulps as
        defence against boundary rounding in the sources' duty-edge
        arithmetic (same hazard ``_charge_fast_forward`` re-verifies
        against); the shrink only ever causes earlier slow-stepping.
        """
        if self._state is not PowerState.ON:
            return None
        source = self._active_source()
        _, hold_until, thevenin = self._source_probes(source)
        if hold_until is None:
            return None  # unknown source model: never batch over it
        t0 = self.sim.now
        bound = hold_until(t0)
        if bound != math.inf:
            bound -= 8.0 * math.ulp(bound)
        if not bound > t0:  # also rejects a NaN bound
            return None
        if thevenin is not None:
            voc, rs = thevenin(t0)
        else:
            voc = source.open_circuit_voltage(t0)
            rs = source.source_resistance(t0)
        floor = -math.inf if self.is_tethered else self.brownout_voltage
        return voc, rs, bound, floor

    def _refresh_state(self, initial: bool = False) -> None:
        v = self.capacitor.voltage
        if self._state is PowerState.ON:
            # A tethered target cannot brown out: the stiff supply holds
            # the rail above the threshold by construction, but guard
            # against a mid-step dip while the tether charges the cap.
            if v < self.brownout_voltage and not self.is_tethered:
                self._state = PowerState.OFF
                self._env_epoch += 1
                self.reboots += 1
                self.sim.trace.record(f"{self.trace_channel}.brownout", v)
                for hook in self.on_power_change:
                    hook(self._state)
        else:
            if v >= self.turn_on_voltage:
                self._state = PowerState.ON
                self._env_epoch += 1
                self.turn_ons += 1
                if not initial:
                    self.sim.trace.record(f"{self.trace_channel}.turn_on", v)
                for hook in self.on_power_change:
                    hook(self._state)


class ChargingTimeout(RuntimeError):
    """The harvester could not bring the capacitor up to turn-on."""
