"""Harvesting-environment profiles.

A profile changes the harvesting conditions over simulated time —
moving the tag away from the reader, duty-cycling the reader, or
clouding over a solar cell.  Profiles drive the evaluation's "realistic
deployment" scenarios, where harvesting is neither constant nor
guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.power.harvester import RFHarvester, TraceDrivenSource
from repro.sim import units
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class DistanceStep:
    """One segment of a movement profile: hold ``distance_m`` for ``duration_s``."""

    distance_m: float
    duration_s: float


class MovementProfile:
    """Moves an :class:`RFHarvester` through a sequence of distances.

    The profile schedules one simulation event per step; after the last
    step the final distance holds indefinitely.
    """

    def __init__(
        self, sim: Simulator, harvester: RFHarvester, steps: Sequence[DistanceStep]
    ) -> None:
        if not steps:
            raise ValueError("movement profile needs at least one step")
        self.sim = sim
        self.harvester = harvester
        self.steps = list(steps)
        self._install()

    def _install(self) -> None:
        t = self.sim.now
        for step in self.steps:
            self.sim.call_at(t, self._make_setter(step.distance_m))
            t += step.duration_s

    def _make_setter(self, distance_m: float):
        def setter() -> None:
            self.harvester.distance_m = distance_m
            self.sim.trace.record("env.distance", distance_m)

        return setter


class ReaderDutyCycle:
    """Duty-cycles an RFID reader's carrier on and off.

    Models deployments where the reader inventories in bursts; while the
    carrier is off the tag harvests nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        harvester: RFHarvester,
        on_time: float = 500 * units.MS,
        off_time: float = 100 * units.MS,
    ) -> None:
        if on_time <= 0.0 or off_time < 0.0:
            raise ValueError("on_time must be positive, off_time non-negative")
        self.sim = sim
        self.harvester = harvester
        self.on_time = on_time
        self.off_time = off_time
        self._schedule_edge(turn_on=False, at=sim.now + on_time)

    def _schedule_edge(self, turn_on: bool, at: float) -> None:
        def edge() -> None:
            self.harvester.enabled = turn_on
            self.sim.trace.record("env.reader_carrier", turn_on)
            dwell = self.on_time if turn_on else self.off_time
            self._schedule_edge(turn_on=not turn_on, at=self.sim.now + dwell)

        self.sim.call_at(at, edge)


def sawtooth_rf_trace(
    duration_s: float,
    period_s: float = 200 * units.MS,
    voc_high: float = 3.3,
    voc_low: float = 0.0,
    rs: float = 5 * units.KOHM,
    duty: float = 0.7,
) -> TraceDrivenSource:
    """Synthesise a bursty RF availability trace (Ekho-style replay).

    The source alternates between a harvesting segment (``voc_high``)
    lasting ``duty * period`` and a dead segment (``voc_low``), which
    produces realistic charge-starve-charge behaviour for tests.
    """
    if not 0.0 < duty < 1.0:
        raise ValueError(f"duty must be in (0, 1) (got {duty})")
    times: list[float] = []
    voc: list[float] = []
    rs_values: list[float] = []
    t = 0.0
    while t < duration_s:
        times.append(t)
        voc.append(voc_high)
        rs_values.append(rs)
        times.append(t + duty * period_s)
        voc.append(voc_low)
        rs_values.append(rs)
        t += period_s
    return TraceDrivenSource(times, voc, rs_values)
