"""The target's on-board voltage regulator.

The paper's Figure 5 shows a regulator between the harvesting front end
and the MCU, with its output (``Vreg``) exposed to EDB both for energy
monitoring and as the level-shifter voltage reference.  Section 4.1.2
notes that ``Vreg`` *drops below its nominal value during a power
failure* — EDB must track that drop to keep its level shifters within
+/-0.3 V of the target rail.  The model below reproduces exactly that
behaviour: in dropout, the output follows the input minus the dropout
voltage.
"""

from __future__ import annotations

from repro.sim import units


class LinearRegulator:
    """A low-dropout (LDO) linear regulator.

    Parameters
    ----------
    nominal_output:
        Regulated output voltage in volts.
    dropout:
        Minimum input-output differential; below ``nominal_output +
        dropout`` at the input, the output tracks ``Vin - dropout``.
    quiescent_current:
        Ground-pin current drawn whenever the input is up, in amperes.
    """

    def __init__(
        self,
        nominal_output: float = 2.0,
        dropout: float = 0.10,
        quiescent_current: float = 1.0 * units.UA,
    ) -> None:
        if nominal_output <= 0.0:
            raise ValueError("nominal output must be positive")
        if dropout < 0.0:
            raise ValueError("dropout must be non-negative")
        self.nominal_output = nominal_output
        self.dropout = dropout
        self.quiescent_current = quiescent_current

    def output_voltage(self, input_voltage: float) -> float:
        """Regulated output for a given input (capacitor) voltage.

        In regulation the output is ``nominal_output``; in dropout it
        tracks ``input - dropout``; with no input it is zero.
        """
        if input_voltage <= self.dropout:
            return 0.0
        return min(self.nominal_output, input_voltage - self.dropout)

    def in_dropout(self, input_voltage: float) -> bool:
        """True when the input is too low to hold the nominal output."""
        return input_voltage < self.nominal_output + self.dropout

    def input_current(self, input_voltage: float, load_current: float) -> float:
        """Total current pulled from the input rail.

        An LDO passes the load current straight through and adds its
        quiescent draw while the input is up.
        """
        if input_voltage <= 0.0:
            return 0.0
        return load_current + self.quiescent_current
