"""Ambient energy sources.

Every source is reduced to a Thevenin equivalent — an open-circuit
voltage ``Voc`` behind a source resistance ``Rs`` — feeding the storage
capacitor through an ideal rectifying diode (no reverse flow).  The high
``Rs`` of ambient sources is exactly what produces the paper's
characteristic sawtooth charging (Figure 2B): charge current falls off
as the capacitor voltage approaches ``Voc``.

Sources implemented:

- :class:`RFHarvester` — RF energy from an RFID reader, with 1/d^2 path
  loss and optional multipath fading jitter.  This is the source used
  by the paper's WISP-based evaluation (Impinj reader at 30 dBm, 1 m).
- :class:`SolarHarvester` — a small PV cell, power proportional to
  irradiance.
- :class:`ConstantCurrentSource` — an idealised bench source, useful in
  tests.
- :class:`TraceDrivenSource` — replays a recorded ``(time, Voc, Rs)``
  trace, in the spirit of Ekho [Hester et al., SenSys'14].
- :class:`TetheredSupply` — a stiff continuous supply; what EDB switches
  in when it tethers the target (keep-alive asserts, energy guards).
- :class:`NullSource` — harvests nothing (for pure-discharge tests).
"""

from __future__ import annotations

import bisect
import math
from typing import Protocol, Sequence

from repro.sim import units
from repro.sim.rng import RngHub


class EnergySource(Protocol):
    """Thevenin view of an energy source at a given simulated time.

    Sources may additionally implement the *optional* extension::

        def hold_until(self, t: float) -> float: ...

    returning a time strictly after ``t`` up to (but excluding) which
    ``open_circuit_voltage``/``source_resistance`` are guaranteed to
    return the same values as at ``t`` — and to do so without mutating
    any internal state (no fading redraws, no RNG consumption).  The
    power system's charging fast path batches steps only inside such a
    window; sources without ``hold_until`` are never batched over.
    Returning ``t`` itself means "no guarantee right now".
    """

    def open_circuit_voltage(self, t: float) -> float:
        """Open-circuit voltage ``Voc`` in volts at time ``t``."""
        ...

    def source_resistance(self, t: float) -> float:
        """Source resistance ``Rs`` in ohms at time ``t``."""
        ...

    def thevenin(self, t: float) -> tuple[float, float]:
        """``(Voc, Rs)`` in one call.

        Must return exactly the same pair the two separate accessors
        would — it exists so the per-cycle supply step pays one source
        evaluation instead of two.  Sources without it are still valid;
        the power system falls back to the separate accessors.
        """
        ...


class NullSource:
    """A source that supplies no energy at all."""

    def open_circuit_voltage(self, t: float) -> float:
        return 0.0

    def source_resistance(self, t: float) -> float:
        return 1.0 * units.MOHM

    def thevenin(self, t: float) -> tuple[float, float]:
        return 0.0, 1.0 * units.MOHM

    def hold_until(self, t: float) -> float:
        """Conditions never change."""
        return math.inf


class ConstantCurrentSource:
    """Idealised source that pushes a fixed current below a compliance voltage.

    Modelled as ``Voc = compliance_v`` with ``Rs`` chosen so the
    short-circuit current equals ``current_a``.
    """

    def __init__(self, current_a: float, compliance_v: float = 3.3) -> None:
        if current_a <= 0.0:
            raise ValueError(f"current must be positive (got {current_a})")
        self.current_a = current_a
        self.compliance_v = compliance_v

    def open_circuit_voltage(self, t: float) -> float:
        return self.compliance_v

    def source_resistance(self, t: float) -> float:
        return self.compliance_v / self.current_a

    def thevenin(self, t: float) -> tuple[float, float]:
        return self.compliance_v, self.compliance_v / self.current_a

    def hold_until(self, t: float) -> float:
        """Conditions never change."""
        return math.inf


class RFHarvester:
    """RF energy harvesting front end (antenna + rectifier + boost).

    Parameters
    ----------
    tx_power_dbm:
        Reader transmit power (the paper uses up to 30 dBm).
    distance_m:
        Antenna-to-tag distance; harvestable power falls off as 1/d^2
        (the paper: "the amount of harvestable energy is inversely
        proportional to this distance").
    efficiency:
        End-to-end RF-to-DC conversion efficiency of the rectifier and
        boost converter (WISP-class front ends achieve a few percent at
        1 m).
    open_voltage:
        Boost-converter output clamp, i.e. the Thevenin ``Voc``.
    reference_gain:
        Lumped antenna-gain / wavelength constant, calibrated so that a
        30 dBm reader at 1 m yields ~2 mW of harvestable power — enough
        that a WISP drawing ~1 mA mostly stays up at 1 m (the paper's
        RFID firmware answers 86 % of queries there) while discharge
        cycles lengthen and charging dominates as distance grows.
    fading_sigma:
        Log-normal shadowing sigma (dB); 0 disables fading jitter.
    rng:
        Hub for the fading stream (required when ``fading_sigma > 0``).
    duty_period / duty_fraction:
        Optional on/off modulation of the RF field: the reader
        illuminates the tag for ``duty_fraction`` of every
        ``duty_period`` seconds and is dark the rest (inventory-round
        pauses, regulatory duty limits).  ``duty_period = 0`` (default)
        means continuous illumination.  The modulation is a pure
        function of simulated time, so perturbing it never costs
        determinism.
    """

    def __init__(
        self,
        tx_power_dbm: float = 30.0,
        distance_m: float = 1.0,
        efficiency: float = 0.03,
        open_voltage: float = 3.3,
        reference_gain: float = 0.065,
        fading_sigma: float = 0.0,
        rng: RngHub | None = None,
        duty_period: float = 0.0,
        duty_fraction: float = 1.0,
    ) -> None:
        if distance_m <= 0.0:
            raise ValueError(f"distance must be positive (got {distance_m})")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1] (got {efficiency})")
        if duty_period < 0.0:
            raise ValueError(f"duty period must be >= 0 (got {duty_period})")
        if not 0.0 < duty_fraction <= 1.0:
            raise ValueError(
                f"duty fraction must be in (0, 1] (got {duty_fraction})"
            )
        self.tx_power_dbm = tx_power_dbm
        self.distance_m = distance_m
        self.efficiency = efficiency
        self.open_voltage = open_voltage
        self.reference_gain = reference_gain
        self.fading_sigma = fading_sigma
        self.duty_period = duty_period
        self.duty_fraction = duty_fraction
        self._rng = rng
        self._fade_db = 0.0
        self._fade_until = -1.0
        self.enabled = True
        # Base (pre-fading) power cache, keyed on the parameters it is
        # computed from — campaigns retune distance between runs, so the
        # key is checked on every call rather than assumed immutable.
        self._base_power_key: tuple | None = None
        self._base_power = 0.0

    def field_on(self, t: float) -> bool:
        """Whether the reader's RF field illuminates the tag at ``t``."""
        if self.duty_period <= 0.0 or self.duty_fraction >= 1.0:
            return True
        phase = (t % self.duty_period) / self.duty_period
        return phase < self.duty_fraction

    def harvested_power(self, t: float) -> float:
        """DC power available to the storage element, in watts."""
        if not self.enabled or not self.field_on(t):
            return 0.0
        key = (
            self.tx_power_dbm,
            self.reference_gain,
            self.distance_m,
            self.efficiency,
        )
        if key != self._base_power_key:
            # Same expressions (and therefore the same rounding) as the
            # historical per-call computation.
            tx_watts = units.dbm_to_watts(self.tx_power_dbm)
            received = tx_watts * self.reference_gain / (self.distance_m**2)
            self._base_power = received * self.efficiency
            self._base_power_key = key
        power = self._base_power
        if self.fading_sigma > 0.0 and self._rng is not None:
            power *= 10.0 ** (self._fade_db_at(t) / 10.0)
        return power

    def _fade_db_at(self, t: float) -> float:
        # Hold each fading draw for a coherence interval of 10 ms.
        if t >= self._fade_until:
            self._fade_db = self._rng.gauss("rf-fading", 0.0, self.fading_sigma)
            self._fade_until = t + 10 * units.MS
        return self._fade_db

    def open_circuit_voltage(self, t: float) -> float:
        return self.open_voltage if self.harvested_power(t) > 0.0 else 0.0

    def source_resistance(self, t: float) -> float:
        power = self.harvested_power(t)
        if power <= 0.0:
            return 1.0 * units.MOHM
        # Maximum power transfer: P_available = Voc^2 / (4 Rs).
        return self.open_voltage**2 / (4.0 * power)

    def thevenin(self, t: float) -> tuple[float, float]:
        # One harvested_power() evaluation instead of two; the branch
        # structure and expressions mirror the separate accessors
        # exactly, so the returned pair is bit-identical.
        power = self.harvested_power(t)
        if power <= 0.0:
            return 0.0, 1.0 * units.MOHM
        return self.open_voltage, self.open_voltage**2 / (4.0 * power)

    def hold_until(self, t: float) -> float:
        """Conditions hold until the next duty edge or fading redraw.

        Strictly conservative: the returned time never exceeds the next
        instant at which ``harvested_power`` could change value or draw
        from the RNG.  If the fading coherence interval has already
        lapsed (the next call would redraw), returns ``t`` itself so the
        caller takes the slow path and the redraw lands exactly where
        the stepped integration would have placed it.
        """
        hold = math.inf
        if self.duty_period > 0.0 and self.duty_fraction < 1.0:
            # Mirrors field_on(): phase < duty_fraction means lit.
            base = t - (t % self.duty_period)
            on_edge = base + self.duty_period * self.duty_fraction
            hold = on_edge if t < on_edge else base + self.duty_period
        if self.fading_sigma > 0.0 and self._rng is not None:
            fade_hold = self._fade_until if self._fade_until > t else t
            if fade_hold < hold:
                hold = fade_hold
        return hold


class SolarHarvester:
    """A small photovoltaic cell under indoor/outdoor irradiance.

    ``power = area * irradiance * efficiency``; the Thevenin mapping is
    the same maximum-power-transfer construction as the RF harvester.
    """

    def __init__(
        self,
        irradiance_w_m2: float = 300.0,
        area_m2: float = 2e-4,
        efficiency: float = 0.15,
        open_voltage: float = 3.0,
    ) -> None:
        if irradiance_w_m2 < 0.0:
            raise ValueError("irradiance must be non-negative")
        self.irradiance_w_m2 = irradiance_w_m2
        self.area_m2 = area_m2
        self.efficiency = efficiency
        self.open_voltage = open_voltage

    def harvested_power(self, t: float) -> float:
        """DC power available from the cell, in watts."""
        return self.irradiance_w_m2 * self.area_m2 * self.efficiency

    def open_circuit_voltage(self, t: float) -> float:
        return self.open_voltage if self.harvested_power(t) > 0.0 else 0.0

    def source_resistance(self, t: float) -> float:
        power = self.harvested_power(t)
        if power <= 0.0:
            return 1.0 * units.MOHM
        return self.open_voltage**2 / (4.0 * power)

    def thevenin(self, t: float) -> tuple[float, float]:
        power = self.harvested_power(t)
        if power <= 0.0:
            return 0.0, 1.0 * units.MOHM
        return self.open_voltage, self.open_voltage**2 / (4.0 * power)

    def hold_until(self, t: float) -> float:
        """Irradiance is a parameter, not a function of time."""
        return math.inf


class TraceDrivenSource:
    """Replays a recorded harvesting-condition trace (Ekho-style).

    Parameters
    ----------
    times:
        Strictly increasing sample times (seconds).
    voc:
        Open-circuit voltage at each sample.
    rs:
        Source resistance at each sample (ohms).

    Between samples the most recent sample holds (zero-order hold);
    before the first sample the first sample holds.
    """

    def __init__(
        self, times: Sequence[float], voc: Sequence[float], rs: Sequence[float]
    ) -> None:
        if not times:
            raise ValueError("trace must contain at least one sample")
        if len(times) != len(voc) or len(times) != len(rs):
            raise ValueError("times, voc, rs must have equal length")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be strictly increasing")
        self.times = list(times)
        self.voc = list(voc)
        self.rs = list(rs)

    def _index(self, t: float) -> int:
        return max(0, bisect.bisect_right(self.times, t) - 1)

    def open_circuit_voltage(self, t: float) -> float:
        return self.voc[self._index(t)]

    def source_resistance(self, t: float) -> float:
        return self.rs[self._index(t)]

    def thevenin(self, t: float) -> tuple[float, float]:
        index = self._index(t)
        return self.voc[index], self.rs[index]

    def hold_until(self, t: float) -> float:
        """The zero-order hold holds until the next trace sample."""
        index = bisect.bisect_right(self.times, t)
        return self.times[index] if index < len(self.times) else math.inf


class TetheredSupply:
    """A stiff, continuous power supply (EDB's tether).

    Low source resistance means the capacitor charges to ``voltage``
    almost immediately and the load can draw arbitrarily much — this is
    what gives active-mode debugging its "arbitrary energy" property.
    """

    def __init__(self, voltage: float = 3.0, resistance: float = 10.0) -> None:
        self.voltage = voltage
        self.resistance = resistance

    def open_circuit_voltage(self, t: float) -> float:
        return self.voltage

    def source_resistance(self, t: float) -> float:
        return self.resistance

    def thevenin(self, t: float) -> tuple[float, float]:
        return self.voltage, self.resistance

    def hold_until(self, t: float) -> float:
        """A bench supply is stiff and constant."""
        return math.inf


def charge_step(
    v0: float,
    voc: float,
    rs: float,
    capacitance: float,
    load_current: float,
    dt: float,
) -> float:
    """Advance a source-fed, load-drained capacitor by ``dt`` seconds.

    Solves the linear ODE ``C dV/dt = (Voc - V)/Rs - I_load`` exactly
    over the step when the source conducts, and falls back to pure
    linear discharge when the rectifier blocks (``Voc <= V``).

    Returns the new capacitor voltage (not clamped; the caller clamps).
    """
    if dt <= 0.0:
        return v0
    if voc > v0:
        tau = rs * capacitance
        v_inf = voc - load_current * rs
        return v_inf + (v0 - v_inf) * math.exp(-dt / tau)
    # Rectifier blocks: the load linearly discharges the capacitor.
    return v0 - load_current * dt / capacitance
