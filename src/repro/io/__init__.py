"""Buses and radio links of the target device.

- :mod:`repro.io.lines` — plain digital signal lines with listeners
  (code markers, the debugger signal line, demodulated RF data).
- :mod:`repro.io.uart` — asynchronous serial with per-byte time and
  energy cost; the "expensive" debug-output path of Table 4.
- :mod:`repro.io.i2c` — the sensor bus (the accelerometer hangs here).
- :mod:`repro.io.rfid` — an EPC Gen2 subset: reader, channel, and the
  message vocabulary EDB decodes in Figure 12.
"""

from repro.io.i2c import I2CBus, I2CDevice, I2CError
from repro.io.lines import DigitalLine, LineMonitor
from repro.io.uart import Uart, UartFrameError

__all__ = [
    "DigitalLine",
    "I2CBus",
    "I2CDevice",
    "I2CError",
    "LineMonitor",
    "Uart",
    "UartFrameError",
]
