"""The I2C sensor bus.

The activity-recognition case study reads an accelerometer over I2C;
EDB taps the SCL/SDA pair externally (Figure 5) to log transactions.
The model is transaction-level: a register read/write costs the wire
time of its bytes at the bus clock rate, plus a small peripheral supply
current while the bus is active.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.sim import units
from repro.sim.kernel import Simulator


class I2CError(Exception):
    """Addressed device missing, or register access rejected (NACK)."""


class I2CDevice(Protocol):
    """Anything that can sit on the bus and expose registers."""

    def read_register(self, register: int) -> int:
        """Return the 8-bit value of ``register``."""
        ...

    def write_register(self, register: int, value: int) -> None:
        """Set the 8-bit value of ``register``."""
        ...


class I2CBus:
    """A single-master I2C bus with transaction listeners.

    Parameters
    ----------
    sim:
        Simulation kernel.
    spend:
        ``spend(seconds, extra_current)`` from the target device.
    clock_hz:
        Bus clock (400 kHz fast mode by default).
    active_current:
        Extra supply draw while a transaction is in flight.
    """

    BITS_PER_BYTE = 9  # 8 data + ack

    def __init__(
        self,
        sim: Simulator,
        spend: Callable[[float, float], None] | None = None,
        clock_hz: float = 400 * units.KHZ,
        active_current: float = 0.2 * units.MA,
        name: str = "i2c",
    ) -> None:
        self.sim = sim
        self.spend = spend or (lambda seconds, current: None)
        self.clock_hz = clock_hz
        self.active_current = active_current
        self.name = name
        self._devices: dict[int, I2CDevice] = {}
        self._listeners: list[Callable[[dict], None]] = []
        self.transactions = 0

    def attach(self, address: int, device: I2CDevice) -> None:
        """Put a device on the bus at a 7-bit address."""
        if not 0 <= address < 0x80:
            raise ValueError(f"I2C address out of range: 0x{address:02X}")
        if address in self._devices:
            raise ValueError(f"address 0x{address:02X} already occupied")
        self._devices[address] = device

    def subscribe(self, listener: Callable[[dict], None]) -> None:
        """Observe completed transactions (EDB's I2C tap)."""
        self._listeners.append(listener)

    def _wire_time(self, byte_count: int) -> float:
        return byte_count * self.BITS_PER_BYTE / self.clock_hz

    def _complete(self, record: dict) -> None:
        self.transactions += 1
        self.sim.trace.record(f"{self.name}.txn", record)
        for listener in self._listeners:
            listener(record)

    def _device(self, address: int) -> I2CDevice:
        device = self._devices.get(address)
        if device is None:
            raise I2CError(f"no device acknowledges address 0x{address:02X}")
        return device

    def read(self, address: int, register: int, count: int = 1) -> bytes:
        """Register read: address+reg write phase, then ``count`` data bytes."""
        device = self._device(address)
        # addr+reg, repeated-start addr, then data bytes.
        self.spend(self._wire_time(3 + count), self.active_current)
        data = bytes(
            device.read_register(register + i) & 0xFF for i in range(count)
        )
        self._complete(
            {
                "kind": "read",
                "address": address,
                "register": register,
                "data": data,
            }
        )
        return data

    def write(self, address: int, register: int, data: bytes) -> None:
        """Register write: address, register, then data bytes."""
        device = self._device(address)
        self.spend(self._wire_time(2 + len(data)), self.active_current)
        for i, value in enumerate(data):
            device.write_register(register + i, value)
        self._complete(
            {
                "kind": "write",
                "address": address,
                "register": register,
                "data": bytes(data),
            }
        )
