"""Asynchronous serial (UART) with realistic time and energy cost.

Section 2.2 and Table 4 make the UART the canonical *expensive* debug
output path: powering and clocking the peripheral to stream a log "is
expensive in time and energy".  The model charges the target for every
byte — 10 bit times at the configured baud rate, with an extra supply
current while the transmitter runs — so a ``printf`` over UART visibly
changes where in the program energy runs out.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import units
from repro.sim.kernel import Simulator


class UartFrameError(Exception):
    """A malformed frame was received (used by protocol layers)."""


class Uart:
    """A UART transmitter/receiver attached to the target.

    Parameters
    ----------
    sim:
        Simulation kernel.
    spend:
        ``spend(seconds, extra_current)`` — supplied by the target
        device; burns active time with an additional supply draw, and
        raises ``PowerFailure`` if the device browns out mid-transfer.
    baud:
        Line rate in bits/second (the WISP tooling uses 115200).
    tx_current:
        Additional supply current while transmitting, in amperes.
    name:
        Trace channel suffix.
    """

    BITS_PER_BYTE = 10  # start + 8 data + stop

    def __init__(
        self,
        sim: Simulator,
        spend: Callable[[float, float], None] | None = None,
        baud: int = 115200,
        tx_current: float = 1.5 * units.MA,
        name: str = "uart",
    ) -> None:
        if baud <= 0:
            raise ValueError(f"baud must be positive (got {baud})")
        self.sim = sim
        self.spend = spend or (lambda seconds, current: None)
        self.baud = baud
        self.tx_current = tx_current
        self.name = name
        self._tx_listeners: list[Callable[[bytes], None]] = []
        self._rx_queue = bytearray()
        self.bytes_transmitted = 0
        self.bytes_received = 0

    def byte_time(self) -> float:
        """Wire time of one byte, in seconds."""
        return self.BITS_PER_BYTE / self.baud

    def transfer_time(self, count: int) -> float:
        """Wire time of ``count`` bytes, in seconds."""
        return count * self.byte_time()

    def transfer_energy(self, count: int, rail_voltage: float = 2.0) -> float:
        """Energy cost estimate of ``count`` bytes at a given rail, joules."""
        return self.tx_current * rail_voltage * self.transfer_time(count)

    # -- transmit -------------------------------------------------------------
    def transmit(self, data: bytes) -> None:
        """Send ``data``, charging the target for time and energy.

        The energy is drawn incrementally per byte so a power failure
        mid-message truncates it — exactly the half-written logs the
        paper warns about.
        """
        for i in range(len(data)):
            self.spend(self.byte_time(), self.tx_current)
            self.bytes_transmitted += 1
            chunk = data[i : i + 1]
            self.sim.trace.record(f"{self.name}.tx", chunk)
            for listener in self._tx_listeners:
                listener(chunk)

    def subscribe_tx(self, listener: Callable[[bytes], None]) -> None:
        """Observe transmitted bytes (EDB's external UART tap)."""
        self._tx_listeners.append(listener)

    # -- receive ----------------------------------------------------------------
    def feed_rx(self, data: bytes) -> None:
        """Deliver bytes into the receive queue (driven by the far end)."""
        self._rx_queue.extend(data)
        self.sim.trace.record(f"{self.name}.rx", bytes(data))

    def receive(self, count: int) -> bytes:
        """Read up to ``count`` queued bytes, charging receive time.

        Receiving costs time (the UART must be clocked) but no extra
        supply current beyond the active draw.
        """
        take = min(count, len(self._rx_queue))
        if take:
            self.spend(self.transfer_time(take), 0.0)
        data = bytes(self._rx_queue[:take])
        del self._rx_queue[:take]
        self.bytes_received += len(data)
        return data

    @property
    def rx_pending(self) -> int:
        """Bytes waiting in the receive queue."""
        return len(self._rx_queue)

    def reset(self) -> None:
        """Power-on reset: drop any queued receive data."""
        self._rx_queue.clear()
