"""The RFID reader (the Impinj Speedway of the experimental setup).

The reader does two things: it radiates the carrier that powers the
tag (that part lives in :class:`repro.power.harvester.RFHarvester`),
and it runs a continuous inventory loop over the channel — QUERY to
open a round, QUERYREPs to advance slots, counting the replies it
hears.  The response-rate statistics it accumulates are the left axis
of Figure 12's characterisation (replies per query, replies per
second).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.rfid.channel import RfidChannel
from repro.io.rfid.protocol import CommandKind, ReaderCommand, TagReply
from repro.sim import units
from repro.sim.kernel import Event, Simulator


@dataclass
class InventoryStats:
    """Aggregate inventory statistics."""

    queries_sent: int = 0
    replies_heard: int = 0

    @property
    def response_rate(self) -> float:
        """Fraction of queries that drew an audible reply."""
        if self.queries_sent == 0:
            return 0.0
        return self.replies_heard / self.queries_sent


class RFIDReader:
    """Continuous-inventory reader over one channel.

    Parameters
    ----------
    sim / channel:
        Simulation kernel and the air interface.
    tx_power_dbm:
        Transmit power (30 dBm in the evaluation) — informational here;
        the powering side is configured on the harvester.
    query_period:
        Interval between inventory commands.  ~66 ms yields the paper's
        ~15 queries/s working point (13 replies/s at 86 %).
    queryreps_per_query:
        QUERYREPs issued between full QUERYs (Gen2 slotting).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: RfidChannel,
        tx_power_dbm: float = 30.0,
        query_period: float = 66 * units.MS,
        queryreps_per_query: int = 3,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.tx_power_dbm = tx_power_dbm
        self.query_period = query_period
        self.queryreps_per_query = queryreps_per_query
        self.stats = InventoryStats()
        self._slot = 0
        self._event: Event | None = None
        self._awaiting_reply = False
        channel.reply_listeners.append(self._on_reply)

    # -- inventory loop -----------------------------------------------------
    def start(self) -> None:
        """Begin continuous inventorying."""
        if self._event is None:
            self._event = self.sim.call_every(
                self.query_period, self._inventory_step, start=self.sim.now
            )

    def stop(self) -> None:
        """Stop inventorying."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _inventory_step(self) -> None:
        if self._slot % (self.queryreps_per_query + 1) == 0:
            command = ReaderCommand(CommandKind.QUERY, q=0)
        else:
            command = ReaderCommand(CommandKind.QUERYREP)
        self._slot += 1
        self.stats.queries_sent += 1
        self._awaiting_reply = True
        self.channel.deliver_command(command)

    def _on_reply(self, reply: TagReply, received: bool) -> None:
        if received and self._awaiting_reply:
            self.stats.replies_heard += 1
            self._awaiting_reply = False

    # -- characterisation ----------------------------------------------------------
    def replies_per_second(self, elapsed: float) -> float:
        """Average audible reply rate over ``elapsed`` seconds."""
        if elapsed <= 0.0:
            return 0.0
        return self.stats.replies_heard / elapsed
