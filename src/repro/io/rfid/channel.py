"""The RF channel between the reader and one tag.

Responsibilities:

- deliver reader commands to the tag as *bits on the demodulated RX
  line* (the tag must spend cycles decoding them; corrupted deliveries
  decode to garbage);
- carry the tag's backscatter replies back to the reader, with a
  distance-dependent loss probability;
- expose both directions to an external observer (EDB's RF RX/TX taps),
  which sees the *bit patterns* and can decode them independently of
  whether the tag or reader succeeded — §5.3.4's "decoder is necessary
  to separate messages that were corrupted in flight from valid
  messages that the target application failed to parse".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.io.lines import DigitalLine
from repro.io.rfid.protocol import ReaderCommand, TagReply
from repro.sim.kernel import Simulator


@dataclass
class DeliveredCommand:
    """A command as it arrived at the tag's demodulator."""

    time: float
    bits: list[int]
    corrupted: bool
    original: ReaderCommand


class RfidChannel:
    """Reader↔tag air interface with corruption and loss.

    Parameters
    ----------
    sim:
        Simulation kernel.
    distance_m:
        Reader-to-tag distance; both corruption and reply-loss
        probabilities scale with its square (normalised to 1 m).
    downlink_corruption_at_1m:
        Probability a delivered command's bits are corrupted at 1 m.
    uplink_loss_at_1m:
        Probability the reader misses a tag reply at 1 m.
    """

    def __init__(
        self,
        sim: Simulator,
        distance_m: float = 1.0,
        downlink_corruption_at_1m: float = 0.06,
        uplink_loss_at_1m: float = 0.05,
    ) -> None:
        self.sim = sim
        self.distance_m = distance_m
        self.downlink_corruption_at_1m = downlink_corruption_at_1m
        self.uplink_loss_at_1m = uplink_loss_at_1m
        self.rx_line = DigitalLine(sim, "rf_rx")  # demodulated reader data
        self.tx_line = DigitalLine(sim, "rf_tx")  # tag backscatter data
        self.tag_rx_queue: list[DeliveredCommand] = []
        self.reply_listeners: list[Callable[[TagReply, bool], None]] = []
        self.command_taps: list[Callable[[DeliveredCommand], None]] = []
        self.reply_taps: list[Callable[[TagReply], None]] = []
        self.commands_sent = 0
        self.replies_sent = 0
        self.replies_received = 0

    def _scaled(self, base: float) -> float:
        return min(0.95, base * self.distance_m**2)

    # -- downlink (reader -> tag) -----------------------------------------
    def deliver_command(self, command: ReaderCommand) -> DeliveredCommand:
        """Put one reader command on the air.

        The bit pattern lands in the tag's demodulator queue (possibly
        corrupted) and wiggles the RX line so external taps see it.
        """
        bits = command.encode_bits()
        corrupted = self.sim.rng.chance(
            "rfid.downlink", self._scaled(self.downlink_corruption_at_1m)
        )
        if corrupted:
            flip = self.sim.rng.stream("rfid.corruption").randrange(len(bits))
            bits = list(bits)
            bits[flip] ^= 1
        delivered = DeliveredCommand(
            time=self.sim.now, bits=bits, corrupted=corrupted, original=command
        )
        self.tag_rx_queue.append(delivered)
        self.commands_sent += 1
        # Edge activity on the demod line (one representative pulse per
        # message keeps trace volume manageable).
        self.rx_line.pulse()
        self.sim.trace.record("rfid.downlink", command.kind.value, corrupted=corrupted)
        for tap in self.command_taps:
            tap(delivered)
        return delivered

    def pop_tag_command(self) -> DeliveredCommand | None:
        """Tag-side: take the oldest pending command off the demodulator."""
        if not self.tag_rx_queue:
            return None
        return self.tag_rx_queue.pop(0)

    @property
    def tag_rx_pending(self) -> int:
        """Commands waiting in the tag's demodulator."""
        return len(self.tag_rx_queue)

    def clear_tag_queue(self) -> None:
        """Power failure on the tag: pending demodulated bits are lost."""
        self.tag_rx_queue.clear()

    # -- uplink (tag -> reader) ----------------------------------------------
    def send_reply(self, reply: TagReply) -> bool:
        """Tag-side: backscatter a reply.

        Returns ``True`` if the reader received it.  External taps see
        the reply either way (EDB sits next to the tag, the reader does
        not).
        """
        self.replies_sent += 1
        self.tx_line.pulse()
        self.sim.trace.record("rfid.uplink", reply.kind.value)
        for tap in self.reply_taps:
            tap(reply)
        lost = self.sim.rng.chance(
            "rfid.uplink", self._scaled(self.uplink_loss_at_1m)
        )
        if not lost:
            self.replies_received += 1
            for listener in self.reply_listeners:
                listener(reply, True)
        return not lost
