"""An EPC Gen2-flavoured RFID link: reader, channel, and message types.

The WISP is an RFID tag: the same RF carrier that powers it carries the
reader's commands (QUERY / QUERYREP / ACK), and the tag answers by
backscatter (RN16 / EPC replies).  EDB taps the demodulated RX line and
the modulator TX line externally and decodes both directions — which is
how Figure 12 correlates message traffic with the energy level, and why
messages are visible "even if the target does not correctly decode them
due to power failures".
"""

from repro.io.rfid.channel import RfidChannel
from repro.io.rfid.protocol import CommandKind, ReaderCommand, ReplyKind, TagReply
from repro.io.rfid.reader import RFIDReader

__all__ = [
    "CommandKind",
    "RFIDReader",
    "ReaderCommand",
    "ReplyKind",
    "RfidChannel",
    "TagReply",
]
