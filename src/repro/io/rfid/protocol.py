"""EPC Gen2 message subset: the vocabulary of Figure 12.

The paper's trace shows ``CMD_QUERY`` and ``CMD_QUERYREP`` arriving from
the reader and ``RSP_GENERIC`` going back; we model the inventory-round
subset that produces that traffic — QUERY (begin a round), QUERYREP
(advance the slot counter), ACK (acknowledge an RN16), and the tag's
RN16/EPC replies — with a compact bit-level encoding so the decode step
on the tag has real work to do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CommandKind(enum.Enum):
    """Reader-to-tag commands."""

    QUERY = "CMD_QUERY"
    QUERYREP = "CMD_QUERYREP"
    ACK = "CMD_ACK"


class ReplyKind(enum.Enum):
    """Tag-to-reader replies."""

    RN16 = "RSP_RN16"
    EPC = "RSP_EPC"
    GENERIC = "RSP_GENERIC"


_COMMAND_PREFIX = {
    CommandKind.QUERY: 0b1000,
    CommandKind.QUERYREP: 0b00,
    CommandKind.ACK: 0b01,
}


@dataclass(frozen=True)
class ReaderCommand:
    """One decoded reader command."""

    kind: CommandKind
    q: int = 0  # QUERY's slot-count exponent
    rn16: int = 0  # ACK's echoed handle

    def encode_bits(self) -> list[int]:
        """Bit-level encoding (prefix + fields), MSB first."""
        if self.kind is CommandKind.QUERY:
            bits = _to_bits(_COMMAND_PREFIX[self.kind], 4)
            bits += _to_bits(self.q & 0xF, 4)
            return bits
        if self.kind is CommandKind.QUERYREP:
            return _to_bits(_COMMAND_PREFIX[self.kind], 2)
        bits = _to_bits(_COMMAND_PREFIX[self.kind], 2)
        bits += _to_bits(self.rn16 & 0xFFFF, 16)
        return bits

    @staticmethod
    def decode_bits(bits: list[int]) -> "ReaderCommand":
        """Decode a bit string back into a command.

        Raises :class:`RfidDecodeError` for truncated or corrupted
        encodings — the tag-side failure mode when a command arrives
        while the supply is sagging.
        """
        if len(bits) >= 4 and _from_bits(bits[:4]) == _COMMAND_PREFIX[CommandKind.QUERY]:
            if len(bits) < 8:
                raise RfidDecodeError("truncated QUERY")
            return ReaderCommand(CommandKind.QUERY, q=_from_bits(bits[4:8]))
        if len(bits) >= 2 and _from_bits(bits[:2]) == _COMMAND_PREFIX[CommandKind.QUERYREP]:
            if len(bits) != 2:
                raise RfidDecodeError("malformed QUERYREP")
            return ReaderCommand(CommandKind.QUERYREP)
        if len(bits) >= 2 and _from_bits(bits[:2]) == _COMMAND_PREFIX[CommandKind.ACK]:
            if len(bits) != 18:
                raise RfidDecodeError("truncated ACK")
            return ReaderCommand(CommandKind.ACK, rn16=_from_bits(bits[2:]))
        raise RfidDecodeError(f"unrecognised command bits {bits!r}")


@dataclass(frozen=True)
class TagReply:
    """One tag reply (backscatter)."""

    kind: ReplyKind
    payload: tuple[int, ...] = field(default_factory=tuple)

    def bit_length(self) -> int:
        """On-air length: 16 bits per payload word plus a 6-bit preamble."""
        return 6 + 16 * max(1, len(self.payload))


class RfidDecodeError(Exception):
    """The bit pattern does not decode into a valid message."""


def _to_bits(value: int, width: int) -> list[int]:
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def _from_bits(bits: list[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | (bit & 1)
    return value
