"""Digital signal lines between the target and the outside world.

A :class:`DigitalLine` carries a logic level plus edge notifications.
EDB taps lines *externally* — a listener subscribed to a line sees every
transition without the target spending any energy beyond driving the
line, which is the electrical story behind the paper's passive-mode
monitoring.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.kernel import Simulator


class DigitalLine:
    """One digital signal line with edge listeners.

    The line records transitions into the simulation trace under
    ``line.<name>`` so instruments can reconstruct waveforms.
    """

    def __init__(self, sim: Simulator, name: str, state: bool = False) -> None:
        self.sim = sim
        self.name = name
        self._state = state
        self._listeners: list[Callable[[bool], None]] = []
        self.transitions = 0

    @property
    def state(self) -> bool:
        """Current logic level."""
        return self._state

    def drive(self, state: bool) -> None:
        """Set the logic level, notifying listeners on a change."""
        if state == self._state:
            return
        self._state = state
        self.transitions += 1
        self.sim.trace.record(f"line.{self.name}", state)
        for listener in self._listeners:
            listener(state)

    def pulse(self) -> None:
        """Drive high then low (a one-shot marker pulse)."""
        self.drive(True)
        self.drive(False)

    def subscribe(self, listener: Callable[[bool], None]) -> None:
        """Call ``listener(state)`` on every edge."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[bool], None]) -> None:
        """Remove an edge listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)


class LineMonitor:
    """Collects timestamped edges from a set of lines.

    This is the building block of EDB's I/O tracing: attach a monitor to
    the UART RX/TX, I2C, and RF data lines and it accumulates an edge
    log that the host console renders.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.edges: list[tuple[float, str, bool]] = []
        self._attached: dict[str, Callable[[bool], None]] = {}

    def attach(self, line: DigitalLine) -> None:
        """Start recording edges from ``line``."""
        if line.name in self._attached:
            return

        def listener(state: bool, name: str = line.name) -> None:
            self.edges.append((self.sim.now, name, state))

        self._attached[line.name] = listener
        line.subscribe(listener)

    def detach(self, line: DigitalLine) -> None:
        """Stop recording edges from ``line``."""
        listener = self._attached.pop(line.name, None)
        if listener is not None:
            line.unsubscribe(listener)

    def edges_for(self, name: str) -> list[tuple[float, bool]]:
        """Timestamped edges of one line: ``[(time, state), ...]``."""
        return [(t, s) for t, n, s in self.edges if n == name]

    def clear(self) -> None:
        """Forget all recorded edges."""
        self.edges.clear()
