"""Value-change-dump (VCD) export for simulation traces.

Real EDB users look at oscilloscope screens; users of this simulation
get the equivalent by dumping captured channels to the VCD format that
GTKWave and every other waveform viewer understands.

Two exporters:

- :func:`scope_to_vcd` — dump an :class:`Oscilloscope`'s channels
  (analog channels become ``real`` variables, digital ones ``wire``);
- :func:`trace_to_vcd` — dump selected :class:`TraceRecorder` channels
  (numeric and boolean values only; other payloads are skipped).
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.sim.trace import TraceRecorder

_TIMESCALE = "1us"
_TIME_UNIT = 1e-6  # seconds per VCD tick


def _identifier_codes() -> Iterable[str]:
    # VCD identifiers: short printable-ASCII strings.
    alphabet = "".join(chr(c) for c in range(33, 127))
    for a in alphabet:
        yield a
    for a in alphabet:
        for b in alphabet:
            yield a + b


def _sanitise(name: str) -> str:
    return name.replace(" ", "_").replace(".", "_")


class _VcdWriter:
    def __init__(self, module: str) -> None:
        self.module = module
        self._codes = _identifier_codes()
        self.variables: list[tuple[str, str, str]] = []  # (kind, code, name)
        self.changes: list[tuple[int, str]] = []  # (tick, change text)

    def add_variable(self, name: str, kind: str) -> str:
        code = next(self._codes)
        self.variables.append((kind, code, _sanitise(name)))
        return code

    def record_real(self, t: float, code: str, value: float) -> None:
        self.changes.append((int(round(t / _TIME_UNIT)), f"r{value:.6g} {code}"))

    def record_bit(self, t: float, code: str, value: bool) -> None:
        self.changes.append((int(round(t / _TIME_UNIT)), f"{int(value)}{code}"))

    def render(self) -> str:
        out = io.StringIO()
        out.write("$date simulated $end\n")
        out.write("$version repro EDB simulation $end\n")
        out.write(f"$timescale {_TIMESCALE} $end\n")
        out.write(f"$scope module {_sanitise(self.module)} $end\n")
        for kind, code, name in self.variables:
            if kind == "real":
                out.write(f"$var real 64 {code} {name} $end\n")
            else:
                out.write(f"$var wire 1 {code} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        current_tick: int | None = None
        for tick, change in sorted(self.changes, key=lambda c: c[0]):
            if tick != current_tick:
                out.write(f"#{tick}\n")
                current_tick = tick
            out.write(change + "\n")
        return out.getvalue()


def scope_to_vcd(scope, module: str = "edb") -> str:
    """Render an :class:`~repro.instruments.oscilloscope.Oscilloscope`
    capture as VCD text.

    Channels whose samples are all 0.0/1.0 are emitted as 1-bit wires,
    everything else as real-valued variables.
    """
    writer = _VcdWriter(module)
    for channel in scope.channels():
        times, values = scope.samples(channel)
        if not values:
            continue
        digital = all(v in (0.0, 1.0) for v in values)
        code = writer.add_variable(channel, "wire" if digital else "real")
        previous = None
        for t, v in zip(times, values):
            if v == previous:
                continue
            previous = v
            if digital:
                writer.record_bit(t, code, bool(v))
            else:
                writer.record_real(t, code, v)
    return writer.render()


def trace_to_vcd(
    trace: TraceRecorder, channels: list[str], module: str = "edb"
) -> str:
    """Render selected :class:`TraceRecorder` channels as VCD text.

    Boolean-valued channels become wires; int/float channels become
    real variables; events with other payload types are skipped.
    """
    writer = _VcdWriter(module)
    for channel in channels:
        events = trace.events(channel)
        numeric = [
            e for e in events if isinstance(e.value, (bool, int, float))
        ]
        if not numeric:
            continue
        digital = all(isinstance(e.value, bool) for e in numeric)
        code = writer.add_variable(channel, "wire" if digital else "real")
        for event in numeric:
            if digital:
                writer.record_bit(event.time, code, bool(event.value))
            else:
                writer.record_real(event.time, code, float(event.value))
    return writer.render()


def write_vcd(text: str, path) -> None:
    """Write rendered VCD text to ``path``."""
    with open(path, "w") as handle:
        handle.write(text)
