"""Physical unit constants and small converters.

All simulation state is kept in SI base units (seconds, volts, amperes,
farads, joules, hertz).  The constants below exist purely so that code
reads like the datasheet it was derived from::

    capacitance = 47 * units.UF
    turn_on     = 2.4 * units.V
    active_i    = 0.5 * units.MA
"""

from __future__ import annotations

# -- scale prefixes ----------------------------------------------------
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

# -- time --------------------------------------------------------------
S = 1.0
MS = MILLI
US = MICRO
NS = NANO

# -- electrical --------------------------------------------------------
V = 1.0
MV = MILLI
A = 1.0
MA = MILLI
UA = MICRO
NA = NANO
F = 1.0
UF = MICRO
NF = NANO
PF = PICO
OHM = 1.0
KOHM = KILO
MOHM = MEGA

# -- energy / power ----------------------------------------------------
J = 1.0
MJ = MILLI
UJ = MICRO
NJ = NANO
PJ = PICO
W = 1.0
MW = MILLI
UW = MICRO

# -- frequency ---------------------------------------------------------
HZ = 1.0
KHZ = KILO
MHZ = MEGA


def cap_energy(capacitance_f: float, voltage_v: float) -> float:
    """Energy stored in a capacitor: ``E = 1/2 * C * V**2`` (joules)."""
    return 0.5 * capacitance_f * voltage_v * voltage_v


def cap_voltage(capacitance_f: float, energy_j: float) -> float:
    """Voltage on a capacitor holding ``energy_j``: ``V = sqrt(2E/C)``."""
    if energy_j <= 0.0:
        return 0.0
    return (2.0 * energy_j / capacitance_f) ** 0.5


def dbm_to_watts(dbm: float) -> float:
    """Convert an RF power level in dBm to watts (30 dBm == 1 W)."""
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm; raises ``ValueError`` for non-positive power."""
    if watts <= 0.0:
        raise ValueError("power must be positive to express in dBm")
    import math

    return 10.0 * math.log10(watts / 1e-3)
