"""The simulation clock and event queue.

The target device is the primary driver of simulated time: it advances
the clock one instruction (or one high-level operation) at a time.  All
other activity — EDB's ADC sampling, the RFID reader's inventory rounds,
harvesting-environment changes — is expressed as scheduled events that
fire as the clock sweeps past their deadline.

The kernel is intentionally simple: a monotonic float time in seconds, a
binary-heap event queue, and a handful of hooks.  There is no implicit
concurrency; everything happens in deterministic order (time, then
insertion sequence).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.rng import RngHub
from repro.sim.trace import TraceRecorder


class BudgetExceeded(Exception):
    """A watchdog budget (simulated cycles or wall clock) expired.

    Raised by supervision hooks — a device post-work hook counting
    simulated cycles, or a wall-clock alarm — to unwind a run that
    would otherwise never terminate.  Defined here (not in the campaign
    package) so the runtime executor can catch it without a layering
    violation; the campaign's conservative ``NONTERMINATING`` verdict
    is built on top of this exception.
    """

    def __init__(self, message: str, budget: str = "unspecified") -> None:
        super().__init__(message)
        self.budget = budget


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    period: float | None = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    host: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event (and its periodic reschedules) from firing."""
        self.cancelled = True


class Simulator:
    """Global simulation context: clock, event queue, traces, RNG.

    Parameters
    ----------
    seed:
        Master seed for all random streams (see :class:`RngHub`).

    Notes
    -----
    Time only moves forward.  ``advance(dt)`` is the single way to move
    it, and it fires every scheduled event whose deadline falls within
    the swept interval, in deadline order.  Events scheduled *during*
    the sweep are honoured if they still fall inside the interval.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        # A plain int (not itertools.count): the sequence position is part
        # of the deterministic event ordering, so snapshots must be able
        # to capture and restore it exactly.
        self._seq = 0
        # Monotonic count of events actually fired (cancelled pops are
        # not counted).  Consumers that cache state derived from "no
        # event has run since I looked" — the device's fast-spend
        # window — compare this counter instead of subscribing to every
        # callback.  Deliberately not captured by snapshots: it only
        # ever invalidates caches, and a restore invalidates them
        # explicitly anyway.
        self._fired = 0
        self.trace = TraceRecorder(clock=lambda: self._now)
        self.rng = RngHub(seed)
        self._stop_reason: str | None = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds, firing due events.

        The common case — the device burning one instruction's worth of
        time with nothing scheduled inside the swept interval — takes a
        fast path: one heap peek, one addition, no loop entry.  This is
        the hottest function in the simulator (called once per retired
        instruction), so the fast path is deliberately branch-minimal.
        """
        # A single range check rejects negatives, NaN (every comparison
        # with NaN is false), and infinity without adding branches to
        # the fast path.
        if not 0.0 <= dt < math.inf:
            raise ValueError(
                f"cannot move time backwards or by a non-finite step (dt={dt})"
            )
        deadline = self._now + dt
        queue = self._queue
        if not queue or queue[0].time > deadline:
            self._now = deadline
            return
        self._sweep_to(deadline)

    def advance_to(self, t: float) -> None:
        """Advance the clock to exactly absolute time ``t``.

        Unlike ``advance(t - now)``, the final clock value is ``t`` to
        the last bit (no ``now + (t - now)`` rounding), which is what
        the power system's batched charging relies on to reproduce the
        stepped time grid exactly.
        """
        if not self._now <= t < math.inf:
            raise ValueError(
                f"cannot move time backwards or to a non-finite instant "
                f"({t!r} vs now={self._now})"
            )
        queue = self._queue
        if not queue or queue[0].time > t:
            self._now = t
            return
        self._sweep_to(t)

    def _sweep_to(self, deadline: float) -> None:
        while self._queue and self._queue[0].time <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # Fire the event at its own deadline, not at the sweep end.
            self._now = max(self._now, event.time)
            self._fired += 1
            event.callback()
            if event.period is not None and not event.cancelled:
                event.time = event.time + event.period
                heapq.heappush(self._queue, event)
        self._now = deadline

    def run_until(self, t: float) -> None:
        """Advance the clock to absolute time ``t`` (no-op if in the past).

        NaN and infinity are rejected explicitly: NaN compares false
        against everything, so without the guard it would silently
        no-op instead of surfacing the caller's arithmetic bug.
        """
        if math.isnan(t) or t == math.inf:
            raise ValueError(f"run_until() needs a finite time (got {t!r})")
        if t > self._now:
            self.advance(t - self._now)

    def next_event_time(self) -> float:
        """Deadline of the earliest live event, or ``math.inf`` when idle.

        Cancelled events sitting at the top of the heap are discarded on
        the way (they would be skipped by ``advance`` anyway).
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time if queue else math.inf

    # -- cooperative stop requests ---------------------------------------
    #
    # Long-running drivers (the intermittent executor's reboot loop, the
    # power system's charging loop) poll ``stop_requested`` at their safe
    # points — boot boundaries, charging steps — and return early when an
    # event callback or external hook raises the flag.  The clock itself
    # is untouched: after a stop the driver can simply be called again to
    # resume from exactly where it left off, which is what makes the
    # campaign engine's run-until-divergence capture resumable.

    def request_stop(self, reason: str = "requested") -> None:
        """Ask cooperative run loops to return at their next safe point."""
        self._stop_reason = reason

    def clear_stop(self) -> None:
        """Acknowledge and clear a pending stop request."""
        self._stop_reason = None

    @property
    def stop_requested(self) -> bool:
        """True while a stop request is pending."""
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        """The pending stop request's reason, or ``None``."""
        return self._stop_reason

    # -- scheduling -------------------------------------------------------
    def call_at(
        self, t: float, callback: Callable[[], None], *, host: bool = False
    ) -> Event:
        """Schedule ``callback`` to fire once at absolute time ``t``.

        ``host=True`` marks the event as *host-side* — bookkeeping that
        belongs to the machine running the simulation (wall-clock
        watchdog polls, progress reporting) rather than to the simulated
        world.  Host events never enter snapshots: they are not captured
        by :meth:`export_events` and survive a restore untouched.
        """
        if not self._now <= t < math.inf:
            raise ValueError(
                f"cannot schedule in the past or at a non-finite instant "
                f"({t!r} vs now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time=t, seq=seq, callback=callback, host=host)
        heapq.heappush(self._queue, event)
        return event

    def call_after(
        self, delay: float, callback: Callable[[], None], *, host: bool = False
    ) -> Event:
        """Schedule ``callback`` to fire once ``delay`` seconds from now."""
        return self.call_at(self._now + delay, callback, host=host)

    def call_every(
        self,
        period: float,
        callback: Callable[[], None],
        start: float | None = None,
        *,
        host: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire every ``period`` seconds.

        The first firing is at ``start`` (absolute) if given, otherwise
        one full period from now.  ``start`` must not lie in the past —
        the same guard :meth:`call_at` enforces.  Returns the
        :class:`Event`; call its ``cancel()`` to stop the recurrence.
        ``host=True`` marks the recurrence as host-side state that
        snapshots must ignore (see :meth:`call_at`).
        """
        if not 0.0 < period < math.inf:  # also rejects NaN
            raise ValueError(f"period must be positive and finite (got {period})")
        if start is not None and not self._now <= start < math.inf:
            raise ValueError(
                f"cannot schedule in the past or at a non-finite instant "
                f"({start!r} vs now={self._now})"
            )
        first = start if start is not None else self._now + period
        seq = self._seq
        self._seq = seq + 1
        event = Event(
            time=first, seq=seq, callback=callback, period=period, host=host
        )
        heapq.heappush(self._queue, event)
        return event

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    # -- snapshot support -------------------------------------------------
    #
    # Callbacks are captured *by reference*: snapshots live in-process
    # and fork within the same worker, so the closures stay valid.  Host
    # events (wall-clock watchdog polls and the like) are excluded on
    # capture and preserved across restore — they describe the machine
    # running the simulation, not the simulated world.

    def export_events(self) -> list[tuple]:
        """The live simulated event queue as restorable tuples.

        Cancelled events are dropped (they would be skipped anyway) and
        host-side events are excluded — see :meth:`call_at`.
        """
        return [
            (e.time, e.seq, e.callback, e.period)
            for e in sorted(self._queue)
            if not (e.cancelled or e.host)
        ]

    def restore_events(self, exported: list[tuple]) -> None:
        """Replace the simulated event queue with an exported one.

        Live host-side events currently queued are kept: a restore
        rewinds the simulated world, not the host's bookkeeping.
        Callers must restore the clock (``_now``) and sequence counter
        before or after this call via :class:`repro.snapshot` — this
        method only rebuilds the heap.
        """
        queue = [
            Event(time=t, seq=seq, callback=cb, period=period)
            for (t, seq, cb, period) in exported
        ]
        queue.extend(e for e in self._queue if e.host and not e.cancelled)
        heapq.heapify(queue)
        self._queue = queue
