"""Deterministic per-subsystem random number streams.

Each subsystem (harvester jitter, RF channel corruption, sensor noise,
ADC quantisation noise, ...) asks the hub for a *named* stream.  The
stream's seed is derived from the master seed and the name, so:

- the same master seed reproduces every experiment exactly, and
- adding a new consumer of randomness does not perturb the draws seen
  by existing consumers (streams are independent, not interleaved).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root: int, *parts: object) -> int:
    """A child seed deterministically derived from ``root`` and ``parts``.

    The derivation is the same hash construction the hub uses for its
    streams, so children are statistically independent of each other and
    of every named stream.  This is the one sanctioned way to seed a
    subordinate simulation (a campaign run, a worker process): never use
    the global ``random`` module — an unseeded draw anywhere breaks
    replay-by-seed for the whole experiment.
    """
    label = ":".join(str(p) for p in parts)
    digest = hashlib.sha256(f"{root}/{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngHub:
    """Factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """One Gaussian draw from the named stream."""
        return self.stream(name).gauss(mu, sigma)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """One uniform draw from the named stream."""
        return self.stream(name).uniform(lo, hi)

    def chance(self, name: str, probability: float) -> bool:
        """Bernoulli draw: ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self.stream(name).random() < probability

    @property
    def untouched(self) -> bool:
        """True while no consumer has ever requested a stream.

        Streams are created lazily on first draw, so an untouched hub
        proves the simulation consumed zero randomness — which makes its
        trajectory independent of the master seed.  The snapshot/fork
        execution paths use this as their honesty check before reusing
        one seeded simulation on behalf of differently seeded runs.
        """
        return not self._streams

    def derive(self, *parts: object) -> int:
        """A child seed derived from this hub's seed and ``parts``."""
        return derive_seed(self.seed, *parts)

    def fork(self, *parts: object) -> "RngHub":
        """An independent hub seeded from this one (see :func:`derive_seed`)."""
        return RngHub(self.derive(*parts))
