"""Unified multi-channel trace recording.

Everything the paper's evaluation plots — capacitor voltage, GPIO
toggles, watchpoint hits, RFID messages, debugger mode changes — is a
timestamped event on a named channel.  :class:`TraceRecorder` collects
them; the benchmark harness turns channels into the rows and series of
the paper's tables and figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped sample or event on a channel."""

    time: float
    channel: str
    value: Any
    meta: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # keep long traces readable when debugging
        return f"TraceEvent(t={self.time:.6f}, {self.channel}={self.value!r})"


class TraceRecorder:
    """Append-only store of :class:`TraceEvent` objects, per channel.

    Channels are created on first use.  Listeners may subscribe to a
    channel to react to events as they are recorded (EDB's passive-mode
    streaming console is implemented this way).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._channels: dict[str, list[TraceEvent]] = defaultdict(list)
        self._listeners: dict[str, list[Callable[[TraceEvent], None]]] = defaultdict(
            list
        )
        self.enabled = True

    # -- recording --------------------------------------------------------
    def record(self, channel: str, value: Any, **meta: Any) -> TraceEvent | None:
        """Record ``value`` on ``channel`` at the current simulated time.

        Returns the event, or ``None`` when recording is disabled and
        the channel has no listeners — hot paths (GPIO heartbeat edges,
        power-state transitions) record unconditionally, so skipping
        the event construction entirely is what makes ``enabled =
        False`` an effective kill switch for trace overhead.
        """
        listeners = self._listeners.get(channel)
        if not self.enabled and not listeners:
            return None
        event = TraceEvent(time=self._clock(), channel=channel, value=value, meta=meta)
        if self.enabled:
            self._channels[channel].append(event)
        if listeners:
            for listener in listeners:
                listener(event)
        return event

    def subscribe(self, channel: str, listener: Callable[[TraceEvent], None]) -> None:
        """Invoke ``listener`` for every future event on ``channel``."""
        self._listeners[channel].append(listener)

    def unsubscribe(self, channel: str, listener: Callable[[TraceEvent], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners.get(channel, ()):
            self._listeners[channel].remove(listener)

    # -- queries ------------------------------------------------------------
    def channels(self) -> list[str]:
        """Names of all channels that have recorded at least one event."""
        return sorted(self._channels)

    def events(self, channel: str) -> list[TraceEvent]:
        """All events recorded on ``channel`` (empty list if none)."""
        return list(self._channels.get(channel, ()))

    def values(self, channel: str) -> list[Any]:
        """Just the values on ``channel``, in time order."""
        return [e.value for e in self._channels.get(channel, ())]

    def series(self, channel: str) -> tuple[list[float], list[Any]]:
        """``(times, values)`` parallel lists for plotting a channel."""
        events = self._channels.get(channel, ())
        return [e.time for e in events], [e.value for e in events]

    def window(self, channel: str, t0: float, t1: float) -> list[TraceEvent]:
        """Events on ``channel`` with ``t0 <= time < t1``."""
        return [e for e in self._channels.get(channel, ()) if t0 <= e.time < t1]

    def count(self, channel: str) -> int:
        """Number of events recorded on ``channel``."""
        return len(self._channels.get(channel, ()))

    def last(self, channel: str) -> TraceEvent | None:
        """Most recent event on ``channel``, or ``None``."""
        events = self._channels.get(channel)
        return events[-1] if events else None

    def merged(self, channels: Iterable[str] | None = None) -> Iterator[TraceEvent]:
        """All events across ``channels`` (default: all), in time order."""
        names = list(channels) if channels is not None else self.channels()
        streams = [self._channels.get(name, []) for name in names]
        merged = sorted(
            (event for stream in streams for event in stream),
            key=lambda e: e.time,
        )
        return iter(merged)

    def clear(self, channel: str | None = None) -> None:
        """Drop recorded events for one channel, or all channels."""
        if channel is None:
            self._channels.clear()
        else:
            self._channels.pop(channel, None)
