"""Discrete-time simulation kernel used by every other subsystem.

The kernel provides four things:

- :mod:`repro.sim.units` — physical-unit constants and converters so the
  rest of the codebase can say ``47 * units.UF`` instead of ``4.7e-05``.
- :class:`repro.sim.kernel.Simulator` — the global clock plus a small
  event queue for periodic activities (ADC sampling, reader inventory
  rounds, harvester environment changes).
- :class:`repro.sim.trace.TraceRecorder` — a unified, timestamped,
  multi-channel trace of everything the evaluation needs to plot
  (capacitor voltage, watchpoint hits, RFID messages, ...).
- :class:`repro.sim.rng.RngHub` — deterministic per-subsystem random
  streams so every experiment is reproducible bit-for-bit.
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RngHub, derive_seed
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "RngHub",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
    "derive_seed",
]
