"""Unit + property tests for the intermittent runtime.

Covers the NV data structures (including the exact Figure 3 corruption
windows, reproduced deterministically with the brown-out injector), the
checkpoint manager's double-buffering guarantee, and the executor's
charge-reboot-run loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntermittentExecutor, RunStatus, Simulator, TargetDevice
from repro.mcu.device import PowerFailure
from repro.mcu.hlapi import DeviceAPI, ProgramComplete
from repro.mcu.memory import FRAM_BASE, MemoryFault, NULL
from repro.power import make_wisp_power_system
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.nonvolatile import (
    NVCounter,
    NVLinkedList,
    SafeNVLinkedList,
    StructLayout,
    StructView,
)
from repro.testing import BrownoutInjector, make_fast_target


@pytest.fixture
def api(wisp):
    return DeviceAPI(wisp)


class TestStructLayout:
    def test_field_offsets(self):
        layout = StructLayout("s", ("a", "b", "c"))
        assert layout.offset("a") == 0
        assert layout.offset("c") == 4
        assert layout.size == 6

    def test_unknown_field(self):
        layout = StructLayout("s", ("a",))
        with pytest.raises(KeyError):
            layout.offset("z")

    def test_view_roundtrip(self, api):
        layout = StructLayout("s", ("a", "b"))
        view = StructView(api, layout, api.nv_var("s", layout.size))
        view.set("b", 77)
        assert view.get("b") == 77
        assert view.get("a") == 0

    def test_view_at_follows_pointer(self, api):
        layout = StructLayout("s", ("a",))
        base = api.nv_var("pool", 8)
        view = StructView(api, layout, base)
        other = view.at(base + 4)
        other.set("a", 9)
        assert api.load_u16(base + 4) == 9

    def test_view_at_null_faults_on_access(self, api):
        layout = StructLayout("s", ("a", "b"))
        wild = StructView(api, layout, NULL)
        with pytest.raises(MemoryFault):
            wild.get("b")


class TestNVCounter:
    def test_increment_and_wrap(self, api):
        counter = NVCounter(api, "c")
        counter.set(0xFFFF)
        assert counter.increment() == 0

    def test_persists_across_reboot(self, api, wisp):
        counter = NVCounter(api, "c")
        counter.set(41)
        counter.increment()
        wisp.reboot()
        assert NVCounter(api, "c").get() == 42


class TestNVLinkedList:
    def _list(self, api, cls=NVLinkedList):
        nv_list = cls(api, "t", capacity=4)
        nv_list.init()
        return nv_list

    def test_starts_empty_and_consistent(self, api):
        nv_list = self._list(api)
        assert nv_list.is_empty()
        assert nv_list.tail_is_last()
        assert nv_list.check_consistency()

    def test_append_links_forward_and_back(self, api):
        nv_list = self._list(api)
        nv_list.append(nv_list.node_address(0))
        nv_list.append(nv_list.node_address(1))
        assert nv_list.walk() == [nv_list.node_address(0), nv_list.node_address(1)]
        assert nv_list.node(1).get("prev") == nv_list.node_address(0)
        assert nv_list.check_consistency()

    def test_remove_middle(self, api):
        nv_list = self._list(api)
        for i in range(3):
            nv_list.append(nv_list.node_address(i))
        nv_list.remove(nv_list.node_address(1))
        assert nv_list.walk() == [nv_list.node_address(0), nv_list.node_address(2)]
        assert nv_list.check_consistency()

    def test_remove_tail_updates_tail(self, api):
        nv_list = self._list(api)
        nv_list.append(nv_list.node_address(0))
        nv_list.append(nv_list.node_address(1))
        nv_list.remove(nv_list.node_address(1))
        assert nv_list.header.get("tail") == nv_list.node_address(0)

    def test_remove_only_element_empties(self, api):
        nv_list = self._list(api)
        nv_list.append(nv_list.node_address(0))
        nv_list.remove(nv_list.node_address(0))
        assert nv_list.is_empty()
        assert nv_list.length() == 0

    def test_length_tracks(self, api):
        nv_list = self._list(api)
        for i in range(3):
            nv_list.append(nv_list.node_address(i))
        assert nv_list.length() == 3

    def test_node_index_bounds(self, api):
        nv_list = self._list(api)
        with pytest.raises(IndexError):
            nv_list.node_address(4)

    def test_stale_tail_detected_by_invariant(self, api):
        """Simulate the Figure 3 window by hand: head set, tail not."""
        nv_list = self._list(api)
        node = nv_list.node_address(0)
        nv_list.node(0).set("next", NULL)
        nv_list.node(0).set("prev", NULL)
        nv_list.header.set("head", node)  # ...reboot here: tail never set
        assert not nv_list.tail_is_last()
        assert not nv_list.check_consistency()

    def test_remove_with_stale_tail_faults(self, api):
        """The full Figure 3 chain: stale tail -> NULL next -> wild write."""
        nv_list = self._list(api)
        node = nv_list.node_address(0)
        nv_list.node(0).set("next", NULL)
        nv_list.node(0).set("prev", NULL)
        nv_list.header.set("head", node)  # tail remains NULL
        with pytest.raises(MemoryFault):
            nv_list.remove(node)

    @given(ops=st.lists(st.sampled_from(["append", "remove"]), max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_consistency_invariant_under_op_sequences(self, ops):
        """Without power failures the list is *always* consistent."""
        sim = Simulator(seed=1)
        power = make_wisp_power_system(sim, initial_voltage=2.4)
        from repro.power.harvester import TetheredSupply

        power.tether(TetheredSupply())
        api = DeviceAPI(TargetDevice(sim, power))
        nv_list = NVLinkedList(api, "p", capacity=16)
        nv_list.init()
        free = list(range(16))
        live: list[int] = []
        for op in ops:
            if op == "append" and free:
                index = free.pop()
                nv_list.append(nv_list.node_address(index))
                live.append(index)
            elif op == "remove" and live:
                index = live.pop(0)
                nv_list.remove(nv_list.node_address(index))
                free.append(index)
            assert nv_list.check_consistency()
            assert nv_list.length() == len(live)


class TestSafeListRepair:
    def test_repair_fixes_stale_tail(self, api):
        nv_list = SafeNVLinkedList(api, "s", capacity=4)
        nv_list.init()
        nv_list.append(nv_list.node_address(0))
        # Manually strand the tail as an interrupted append would.
        nv_list.node(0).set("next", NULL)
        node1 = nv_list.node_address(1)
        nv_list.node(1).set("next", NULL)
        nv_list.node(1).set("prev", nv_list.node_address(0))
        nv_list.node(0).set("next", node1)  # hooked in...
        # ...but tail/length never updated (reboot).
        nv_list.repair()
        assert nv_list.header.get("tail") == node1
        assert nv_list.length() == 2
        assert nv_list.check_consistency()

    def test_repair_rebuilds_prev_pointers(self, api):
        nv_list = SafeNVLinkedList(api, "s", capacity=4)
        nv_list.init()
        for i in range(3):
            nv_list.append(nv_list.node_address(i))
        nv_list.node(2).set("prev", 0xDEAD & 0xFFFE)  # corrupt a back pointer
        nv_list.repair()
        assert nv_list.check_consistency()

    def test_repair_on_empty_list(self, api):
        nv_list = SafeNVLinkedList(api, "s", capacity=4)
        nv_list.init()
        nv_list.repair()
        assert nv_list.is_empty()

    def test_repair_idempotent(self, api):
        nv_list = SafeNVLinkedList(api, "s", capacity=4)
        nv_list.init()
        nv_list.append(nv_list.node_address(0))
        nv_list.repair()
        snapshot = (
            nv_list.header.get("head"),
            nv_list.header.get("tail"),
            nv_list.length(),
        )
        nv_list.repair()
        assert snapshot == (
            nv_list.header.get("head"),
            nv_list.header.get("tail"),
            nv_list.length(),
        )


class TestCheckpointManager:
    BASE = FRAM_BASE + 0x4000

    @pytest.fixture(autouse=True)
    def _reset_cpu(self, wisp):
        # Give the CPU a sane SP (as a power-on reset would).
        wisp.cpu.reset(0xA000)

    def test_roundtrip_registers_and_stack(self, wisp):
        manager = CheckpointManager(wisp, self.BASE)
        manager.erase()
        wisp.cpu.registers[4] = 0x1234
        wisp.cpu.sp = wisp.cpu.sp - 4
        wisp.memory.write_u16(wisp.cpu.sp, 0xBEEF)
        manager.checkpoint()
        wisp.cpu.registers[4] = 0
        wisp.memory.clear_volatile()
        info = manager.restore()
        assert info is not None
        assert wisp.cpu.registers[4] == 0x1234
        assert wisp.memory.read_u16(wisp.cpu.sp) == 0xBEEF

    def test_restore_without_checkpoint_returns_none(self, wisp):
        manager = CheckpointManager(wisp, self.BASE)
        manager.erase()
        assert manager.restore() is None

    def test_newest_committed_wins(self, wisp):
        manager = CheckpointManager(wisp, self.BASE)
        manager.erase()
        wisp.cpu.registers[4] = 1
        manager.checkpoint()
        wisp.cpu.registers[4] = 2
        manager.checkpoint()
        wisp.cpu.registers[4] = 0
        manager.restore()
        assert wisp.cpu.registers[4] == 2

    def test_double_buffering_survives_interrupted_checkpoint(self, wisp):
        """A power failure *during* checkpointing keeps the old one."""
        manager = CheckpointManager(wisp, self.BASE)
        manager.erase()
        wisp.cpu.registers[4] = 1
        manager.checkpoint()
        # Second checkpoint dies in its energy spend, before any write.
        wisp.cpu.registers[4] = 2
        wisp.power.source.enabled = False
        wisp.power.capacitor.voltage = 1.79
        wisp.power.step(0.0)
        with pytest.raises(PowerFailure):
            manager.checkpoint()
        wisp.power.capacitor.voltage = 2.4
        wisp.power.reset_comparator()
        wisp.cpu.registers[4] = 0
        manager.restore()
        assert wisp.cpu.registers[4] == 1  # the old committed snapshot

    def test_oversized_stack_rejected(self, wisp):
        manager = CheckpointManager(wisp, self.BASE)
        wisp.cpu.sp = wisp.cpu.sp - 1024
        with pytest.raises(ValueError):
            manager.checkpoint()


class _CountingApp:
    """Increments an NV counter forever; completes at a target."""

    name = "counting"

    def __init__(self, target=None):
        self.target = target

    def flash(self, api):
        api.device.memory.write_u16(api.nv_var("counter.n"), 0)

    def main(self, api):
        counter = NVCounter(api, "n")
        while True:
            value = counter.increment()
            api.compute(400)
            if self.target is not None and value >= self.target:
                raise ProgramComplete(value)


class TestExecutor:
    def test_completes_small_workload(self, sim, fast_target):
        executor = IntermittentExecutor(sim, fast_target, _CountingApp(target=50))
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.COMPLETED
        assert result.detail == 50

    def test_timeout_on_endless_workload(self, sim, fast_target):
        executor = IntermittentExecutor(sim, fast_target, _CountingApp())
        result = executor.run(duration=0.2)
        assert result.status is RunStatus.TIMEOUT
        assert result.sim_time >= 0.2

    def test_progress_spans_reboots(self, sim, fast_target):
        executor = IntermittentExecutor(
            sim, fast_target, _CountingApp(target=20_000)
        )
        result = executor.run(duration=20.0)
        assert result.status is RunStatus.COMPLETED
        assert result.reboots > 1  # needed several charge cycles

    def test_continuous_run_never_reboots(self, sim, fast_target):
        executor = IntermittentExecutor(
            sim, fast_target, _CountingApp(target=20_000)
        )
        result = executor.run_continuous(duration=20.0)
        assert result.status is RunStatus.COMPLETED
        assert result.reboots == 0

    def test_starved_when_harvester_dead(self, sim, fast_target):
        fast_target.power.source.enabled = False
        executor = IntermittentExecutor(sim, fast_target, _CountingApp())
        result = executor.run(duration=5.0)
        assert result.status is RunStatus.STARVED

    def test_max_boots_cap(self, sim, fast_target):
        executor = IntermittentExecutor(sim, fast_target, _CountingApp())
        result = executor.run(duration=30.0, max_boots=3)
        assert result.boots == 3

    def test_flash_restores_pre_flash_energy_state(self, sim, fast_target):
        v_before = fast_target.power.vcap
        executor = IntermittentExecutor(sim, fast_target, _CountingApp())
        executor.flash()
        assert fast_target.power.vcap == pytest.approx(v_before)
        assert not fast_target.power.is_tethered


class TestBrownoutInjector:
    def test_injects_after_exact_op_count(self, sim, wisp):
        injector = BrownoutInjector(wisp)
        injector.arm(3)
        wisp.execute_cycles(10)
        wisp.execute_cycles(10)
        wisp.execute_cycles(10)  # injection lands after this one
        with pytest.raises(PowerFailure):
            wisp.execute_cycles(10)
        assert injector.injections == 1

    def test_disarm_cancels(self, sim, wisp):
        injector = BrownoutInjector(wisp)
        injector.arm(1)
        injector.disarm()
        for _ in range(5):
            wisp.execute_cycles(10)
        assert injector.injections == 0

    def test_cannot_injure_tethered_target(self, sim, wisp):
        from repro.power.harvester import TetheredSupply

        injector = BrownoutInjector(wisp)
        wisp.power.tether(TetheredSupply())
        injector.arm(1)
        wisp.execute_cycles(10)
        wisp.execute_cycles(10)
        assert injector.injections == 0

    def test_remove_uninstalls(self, sim, wisp):
        injector = BrownoutInjector(wisp)
        injector.remove()
        injector.arm(1)
        wisp.execute_cycles(10)
        wisp.execute_cycles(10)
        assert injector.injections == 0
