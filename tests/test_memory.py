"""Unit + property tests for the target memory model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mcu.memory import (
    FRAM_BASE,
    MemoryFault,
    MemoryMap,
    MemoryRegion,
    SRAM_BASE,
    make_msp430_memory_map,
)


class TestMemoryRegion:
    def test_byte_roundtrip(self):
        region = MemoryRegion("r", 0x100, 16, volatile=True)
        region.write_u8(0x105, 0xAB)
        assert region.read_u8(0x105) == 0xAB

    def test_word_roundtrip_little_endian(self):
        region = MemoryRegion("r", 0x100, 16, volatile=True)
        region.write_u16(0x102, 0x1234)
        assert region.read_u8(0x102) == 0x34
        assert region.read_u8(0x103) == 0x12

    def test_byte_value_truncated(self):
        region = MemoryRegion("r", 0, 4, volatile=True)
        region.write_u8(0, 0x1FF)
        assert region.read_u8(0) == 0xFF

    def test_out_of_bounds_faults(self):
        region = MemoryRegion("r", 0x100, 16, volatile=True)
        with pytest.raises(MemoryFault):
            region.read_u8(0x110)
        with pytest.raises(MemoryFault):
            region.read_u8(0xFF)

    def test_word_access_straddling_end_faults(self):
        region = MemoryRegion("r", 0x100, 16, volatile=True)
        with pytest.raises(MemoryFault):
            region.read_u16(0x10F + 1)

    def test_misaligned_word_faults(self):
        region = MemoryRegion("r", 0x100, 16, volatile=True)
        with pytest.raises(MemoryFault):
            region.read_u16(0x101)
        with pytest.raises(MemoryFault):
            region.write_u16(0x103, 1)

    def test_fault_carries_address(self):
        region = MemoryRegion("r", 0x100, 16, volatile=True)
        with pytest.raises(MemoryFault) as excinfo:
            region.read_u8(0x200)
        assert excinfo.value.address == 0x200

    def test_bulk_roundtrip(self):
        region = MemoryRegion("r", 0, 64, volatile=False)
        region.write_bytes(8, b"hello world")
        assert region.read_bytes(8, 11) == b"hello world"

    def test_clear_zeros_contents(self):
        region = MemoryRegion("r", 0, 8, volatile=True)
        region.write_u16(0, 0xFFFF)
        region.clear()
        assert region.read_u16(0) == 0

    def test_access_counters(self):
        region = MemoryRegion("r", 0, 8, volatile=True)
        region.write_u16(0, 1)
        region.read_u16(0)
        region.read_u8(1)
        assert region.writes == 1
        assert region.reads == 2

    @given(
        addr=st.integers(0, 30),
        value=st.integers(0, 0xFFFF),
    )
    def test_word_roundtrip_property(self, addr, value):
        region = MemoryRegion("r", 0, 32, volatile=True)
        addr -= addr % 2
        region.write_u16(addr, value)
        assert region.read_u16(addr) == value


class TestMemoryMap:
    def test_msp430_map_has_sram_and_fram(self):
        memory = make_msp430_memory_map()
        assert memory.region("sram").volatile
        assert not memory.region("fram").volatile

    def test_unknown_region_name(self):
        memory = make_msp430_memory_map()
        with pytest.raises(KeyError):
            memory.region("flash")

    def test_routes_by_address(self):
        memory = make_msp430_memory_map()
        memory.write_u16(SRAM_BASE, 0x1111)
        memory.write_u16(FRAM_BASE, 0x2222)
        assert memory.read_u16(SRAM_BASE) == 0x1111
        assert memory.read_u16(FRAM_BASE) == 0x2222

    def test_null_pointer_dereference_faults(self):
        """Address 0 is unmapped: the Figure 3 wild write lands here."""
        memory = make_msp430_memory_map()
        with pytest.raises(MemoryFault):
            memory.read_u16(0x0000)
        with pytest.raises(MemoryFault):
            memory.write_u16(0x0002, 0xDEAD)

    def test_gap_between_regions_faults(self):
        memory = make_msp430_memory_map()
        with pytest.raises(MemoryFault):
            memory.read_u8(0x3000)  # between SRAM end and FRAM base

    def test_clear_volatile_preserves_fram(self):
        """Reboot semantics: SRAM cleared, FRAM retained."""
        memory = make_msp430_memory_map()
        memory.write_u16(SRAM_BASE, 0xAAAA)
        memory.write_u16(FRAM_BASE, 0xBBBB)
        memory.clear_volatile()
        assert memory.read_u16(SRAM_BASE) == 0
        assert memory.read_u16(FRAM_BASE) == 0xBBBB

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ValueError):
            MemoryMap(
                [
                    MemoryRegion("a", 0, 16, volatile=True),
                    MemoryRegion("b", 8, 16, volatile=True),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MemoryMap(
                [
                    MemoryRegion("a", 0, 16, volatile=True),
                    MemoryRegion("a", 32, 16, volatile=True),
                ]
            )

    def test_fram_costs_more_cycles_than_sram(self):
        memory = make_msp430_memory_map()
        assert (
            memory.region("fram").read_cycles > memory.region("sram").read_cycles
        )

    @given(data=st.binary(min_size=1, max_size=64), offset=st.integers(0, 100))
    def test_bulk_roundtrip_through_map(self, data, offset):
        memory = make_msp430_memory_map()
        memory.write_bytes(FRAM_BASE + offset, data)
        assert memory.read_bytes(FRAM_BASE + offset, len(data)) == data
