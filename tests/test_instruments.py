"""Unit tests for the bench instruments (oscilloscope)."""

import pytest

from repro.instruments.oscilloscope import Oscilloscope
from repro.sim import units
from repro.sim.kernel import Simulator


@pytest.fixture
def scope_rig():
    sim = Simulator(seed=2)
    scope = Oscilloscope(sim, sample_rate=1 * units.KHZ)
    signal = {"v": 1.0}
    scope.add_channel("vcap", lambda: signal["v"])
    return sim, scope, signal


class TestOscilloscope:
    def test_samples_at_configured_rate(self, scope_rig):
        sim, scope, _ = scope_rig
        scope.start()
        sim.advance(0.01)
        times, values = scope.samples("vcap")
        assert 10 <= len(values) <= 12  # immediate sample + ~10 periodic

    def test_tracks_signal_changes(self, scope_rig):
        sim, scope, signal = scope_rig
        scope.start()
        sim.advance(0.005)
        signal["v"] = 2.0
        sim.advance(0.005)
        _, values = scope.samples("vcap")
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(2.0)

    def test_stop_halts_acquisition(self, scope_rig):
        sim, scope, _ = scope_rig
        scope.start()
        sim.advance(0.005)
        scope.stop()
        count = len(scope.samples("vcap")[0])
        sim.advance(0.01)
        assert len(scope.samples("vcap")[0]) == count

    def test_start_is_idempotent(self, scope_rig):
        sim, scope, _ = scope_rig
        scope.start()
        scope.start()
        sim.advance(0.003)
        assert len(scope.samples("vcap")[0]) <= 5

    def test_digital_channel_stored_as_binary(self, scope_rig):
        sim, scope, _ = scope_rig
        state = {"on": False}
        scope.add_digital_channel("gpio", lambda: state["on"])
        scope.start()
        sim.advance(0.002)
        state["on"] = True
        sim.advance(0.002)
        _, values = scope.samples("gpio")
        assert set(values) <= {0.0, 1.0}
        assert values[-1] == 1.0

    def test_window_filters_by_time(self, scope_rig):
        sim, scope, _ = scope_rig
        scope.start()
        sim.advance(0.01)
        times, _ = scope.window("vcap", 0.004, 0.008)
        assert all(0.004 <= t < 0.008 for t in times)

    def test_single_shot(self, scope_rig):
        _, scope, signal = scope_rig
        signal["v"] = 1.7
        sample = scope.single_shot()
        assert sample["vcap"] == pytest.approx(1.7)

    def test_duplicate_channel_rejected(self, scope_rig):
        _, scope, _ = scope_rig
        with pytest.raises(ValueError):
            scope.add_channel("vcap", lambda: 0.0)

    def test_unknown_channel_rejected(self, scope_rig):
        _, scope, _ = scope_rig
        with pytest.raises(KeyError):
            scope.samples("nope")

    def test_clear_drops_samples_keeps_channels(self, scope_rig):
        sim, scope, _ = scope_rig
        scope.start()
        sim.advance(0.005)
        scope.clear()
        assert scope.samples("vcap") == ([], [])
        sim.advance(0.002)
        assert len(scope.samples("vcap")[0]) >= 1

    def test_last_value(self, scope_rig):
        sim, scope, signal = scope_rig
        with pytest.raises(ValueError):
            scope.last_value("vcap")
        scope.single_shot()
        assert scope.last_value("vcap") == pytest.approx(1.0)

    def test_ascii_render_contains_stats(self, scope_rig):
        sim, scope, signal = scope_rig
        scope.start()
        for v in (1.0, 2.0, 1.5):
            signal["v"] = v
            sim.advance(0.003)
        art = scope.render_ascii("vcap", width=40, height=6)
        assert "vcap" in art
        assert "*" in art

    def test_bad_sample_rate(self):
        with pytest.raises(ValueError):
            Oscilloscope(Simulator(), sample_rate=0.0)

    def test_scope_observes_real_power_system(self, sim):
        """End-to-end: probe a live supply through a discharge."""
        from repro import TargetDevice, make_wisp_power_system

        power = make_wisp_power_system(sim, distance_m=1.6)
        device = TargetDevice(sim, power)
        scope = Oscilloscope(sim, sample_rate=10 * units.KHZ)
        scope.add_channel("vcap", lambda: power.vcap)
        scope.start()
        power.charge_until_on()
        from repro.mcu.device import PowerFailure

        with pytest.raises(PowerFailure):
            while True:
                device.execute_cycles(1000)
        _, values = scope.samples("vcap")
        assert max(values) >= 2.39  # saw the turn-on peak
        assert min(values) <= 1.85  # saw the brown-out trough
