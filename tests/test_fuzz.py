"""Coverage-guided fault fuzzing: determinism, coverage, and search.

Four properties pin the fuzz engine to the campaign contract:

- **Byte-identity.**  For a fixed config the fuzz report is identical
  across snapshot forking on/off, the block translation cache on/off
  (``REPRO_NO_BLOCKCACHE=1``), serial vs parallel execution, and a
  journal resume — the coverage signal must never perturb, or be
  perturbed by, the execution strategy.
- **Signature stability.**  The per-run coverage signature is a
  property of the executed trajectory, not the dispatch mechanism:
  randomly generated branchy programs produce bit-identical block
  lists under ``step_block`` and forced single-stepping.
- **Mutator discipline.**  Mutators are deterministic under seeded
  RNGs and always emit schedulable genotypes (op counts and reboot
  counts inside the config box; stimulus never empty when required).
- **Search beats sampling.**  With the same run budget on the RFID
  dispatch firmware, the guided campaign reaches strictly more unique
  blocks — and at least as many distinct verdicts — than uniform
  random sampling (``fuzz_rounds=1``).
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.campaign.config import CampaignConfig
from repro.campaign.corpus import Corpus
from repro.campaign.fuzz import (
    havoc,
    mutate_stimulus,
    nudge,
    random_schedule,
    splice,
)
from repro.campaign.report import render_json
from repro.campaign.scheduler import run_campaign
from repro.mcu.assembler import assemble
from repro.mcu.coverage import CoverageRecorder
from repro.runtime.isa_executor import IsaIntermittentExecutor
from repro.sim.rng import derive_seed

from repro import Simulator, TargetDevice, make_wisp_power_system
from tests.test_blockcache import _random_branchy, _random_straightline

#: The pinned differential config: small enough to run in seconds,
#: rich enough that the guided search discovers the stimulus-gated
#: handlers (and, at this seed, the paired-counter divergence).
FUZZ_KW = dict(
    app="rfid_firmware", runs=18, seed=1, iterations=10, duration=0.8,
    workers=1, max_ops=120, mode="fuzz", fuzz_rounds=6, shrink_limit=2,
)


@pytest.fixture(autouse=True)
def _fresh_memos():
    """Per-process continuous-leg memos must not leak across variants."""
    import repro.campaign.forking as forking
    import repro.campaign.fuzz as fuzz

    forking._continuous_memo.clear()
    fuzz._continuous_memo.clear()
    yield
    forking._continuous_memo.clear()
    fuzz._continuous_memo.clear()


def _fuzz_report(*, snapshot=True, nocache=False, journal_path=None,
                 resume_from=None, corpus_path=None, **overrides) -> dict:
    config = CampaignConfig(**{**FUZZ_KW, **overrides})
    saved = os.environ.get("REPRO_NO_BLOCKCACHE")
    try:
        if nocache:
            os.environ["REPRO_NO_BLOCKCACHE"] = "1"
        else:
            os.environ.pop("REPRO_NO_BLOCKCACHE", None)
        return run_campaign(
            config, snapshot=snapshot, journal_path=journal_path,
            resume_from=resume_from, corpus_path=corpus_path,
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_BLOCKCACHE", None)
        else:
            os.environ["REPRO_NO_BLOCKCACHE"] = saved


def _canonical(report: dict) -> str:
    """Render with execution-only config knobs normalised.

    ``workers`` legitimately differs between the serial and parallel
    variants of the same campaign (it is echoed in the report's config
    stanza); every record byte must still match.
    """
    report = json.loads(json.dumps(report))
    report["campaign"]["workers"] = 1
    return render_json(report)


# -- mutators ----------------------------------------------------------------
class TestMutators:
    CONFIG = CampaignConfig(**FUZZ_KW)

    def _rng(self, *parts) -> random.Random:
        return random.Random(derive_seed(self.CONFIG.seed, "fuzz", *parts))

    def test_mutators_are_deterministic_under_derived_seeds(self):
        base = [30, 25, 40]
        donor = [80, 15]
        for mutate in (
            lambda r: nudge(r, base, self.CONFIG),
            lambda r: splice(r, base, donor, self.CONFIG),
            lambda r: havoc(r, base, self.CONFIG),
            lambda r: mutate_stimulus(r, b"\x41\x80", require_input=True),
            lambda r: random_schedule(r, self.CONFIG),
        ):
            assert mutate(self._rng(3, 7)) == mutate(self._rng(3, 7))

    def test_mutated_schedules_stay_schedulable(self):
        config = self.CONFIG
        rng = self._rng(0, 0)
        schedule = random_schedule(rng, config)
        for round_no in range(200):
            donor = random_schedule(rng, config)
            op = rng.randrange(3)
            if op == 0:
                schedule = nudge(rng, schedule, config)
            elif op == 1:
                schedule = splice(rng, schedule, donor, config)
            else:
                schedule = havoc(rng, schedule, config)
            assert config.min_reboots <= len(schedule) <= config.max_reboots
            assert all(
                config.min_ops <= entry <= config.max_ops
                for entry in schedule
            )

    def test_stimulus_never_empties_when_input_is_required(self):
        rng = self._rng(1, 1)
        stimulus = b"\x00"
        for _ in range(300):
            stimulus = mutate_stimulus(rng, stimulus, require_input=True)
            assert len(stimulus) >= 1

    def test_stimulus_respects_max_length(self):
        rng = self._rng(2, 2)
        stimulus = bytes(60)
        for _ in range(300):
            stimulus = mutate_stimulus(
                rng, stimulus, require_input=True, max_len=64
            )
            assert len(stimulus) <= 64


# -- coverage-signature stability --------------------------------------------
def _run_with_coverage(source: str, *, block_mode: bool, seed: int = 1234):
    """Run ``source`` intermittently with a recorder attached pre-flash."""
    sim = Simulator(seed=seed)
    power = make_wisp_power_system(sim, distance_m=1.6, fading_sigma=0.0)
    device = TargetDevice(sim, power)
    device.cpu.block_cache_enabled = block_mode
    device.cpu.coverage = CoverageRecorder()
    executor = IsaIntermittentExecutor(sim, device, assemble(source))
    executor.run(duration=1.5)
    return device.cpu.coverage


class TestCoverageSignatureStability:
    @pytest.mark.parametrize("seed", [11, 23, 47, 101])
    def test_branchy_programs_have_dispatch_invariant_signatures(self, seed):
        rng = random.Random(seed)
        source = _random_branchy(rng, iterations=rng.randint(3, 9))
        blocked = _run_with_coverage(source, block_mode=True)
        stepped = _run_with_coverage(source, block_mode=False)
        assert blocked.blocks() == stepped.blocks()
        assert blocked.signature() == stepped.signature()
        assert len(blocked) > 1  # the loop backedge registered

    def test_straightline_records_only_reset_entries(self):
        source = _random_straightline(random.Random(5), length=12)
        blocked = _run_with_coverage(source, block_mode=True)
        stepped = _run_with_coverage(source, block_mode=False)
        assert blocked.blocks() == stepped.blocks()
        # No taken transfer: every recorded PC is a boot's entry point.
        assert len(set(blocked.blocks())) == 1


# -- report byte-identity ----------------------------------------------------
class TestFuzzReportIdentity:
    def test_identical_across_blockcache_snapshot_and_workers(self):
        reference = _canonical(_fuzz_report())
        variants = {
            "no-snapshot": _fuzz_report(snapshot=False),
            "no-blockcache": _fuzz_report(nocache=True),
            "no-both": _fuzz_report(snapshot=False, nocache=True),
            "parallel": _fuzz_report(workers=2),
            "parallel-no-snapshot": _fuzz_report(workers=2, snapshot=False),
        }
        for name, report in variants.items():
            assert _canonical(report) == reference, name

    def test_journal_resume_is_bit_identical(self, tmp_path):
        reference = render_json(_fuzz_report())
        journal = tmp_path / "journal.jsonl"
        full = _fuzz_report(journal_path=str(journal))
        assert render_json(full) == reference
        # Simulate a crash: drop everything past the header and the
        # first half of the chunk lines, then resume.
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: 1 + (len(lines) - 1) // 2]))
        resumed = _fuzz_report(resume_from=str(journal))
        assert render_json(resumed) == reference

    def test_corpus_roundtrip_seeds_the_next_campaign(self, tmp_path):
        corpus_path = tmp_path / "corpus.json"
        first = _fuzz_report(corpus_path=str(corpus_path))
        seeds = Corpus.load_seeds(corpus_path)
        assert len(seeds) == first["coverage"]["corpus"]
        assert all(seed["schedule"] for seed in seeds)
        # A fresh campaign (different seed) warm-started from the
        # corpus reaches in round zero what the cold start needed the
        # whole search to find.
        seeded = _fuzz_report(seed=2, corpus_path=str(corpus_path))
        assert (
            seeded["coverage"]["rounds"][0]["blocks"]
            >= first["coverage"]["blocks"] - 1
        )


# -- the search property -----------------------------------------------------
class TestGuidedSearch:
    def test_fuzz_beats_uniform_sampling_on_rfid_firmware(self):
        """The acceptance pin: same budget, strictly more coverage.

        ``fuzz_rounds=1`` makes the engine degenerate into pure uniform
        sampling over the identical genotype space (same schedule
        distribution, same default stimulus), so the comparison
        isolates the value of the feedback loop.
        """
        guided = _fuzz_report()
        uniform = _fuzz_report(fuzz_rounds=1)
        assert guided["coverage"]["blocks"] > uniform["coverage"]["blocks"]
        assert len(guided["coverage"]["verdicts"]) >= len(
            uniform["coverage"]["verdicts"]
        )

    def test_guided_search_finds_the_paired_counter_bug(self):
        """At the pinned seed the search lands two reboots in the
        vulnerable window of the naive pair handler — a divergence the
        all-zeros uniform baseline cannot reach (its stimulus never
        dispatches into the handler at all)."""
        guided = _fuzz_report(runs=24)
        assert guided["summary"]["diverged"] >= 1
        divergence = guided["divergences"][0]
        assert divergence["fuzz"]["stimulus"] is not None
        stimulus = bytes.fromhex(divergence["fuzz"]["stimulus"])
        assert any(0x40 <= byte <= 0x7F for byte in stimulus)

    def test_coverage_stanza_accounts_every_run(self):
        report = _fuzz_report()
        stanza = report["coverage"]
        assert sum(r["runs"] for r in stanza["rounds"]) == FUZZ_KW["runs"]
        assert stanza["rounds"][-1]["blocks"] == stanza["blocks"]
        assert sum(stanza["verdicts"].values()) == FUZZ_KW["runs"]
        cumulative = [r["blocks"] for r in stanza["rounds"]]
        assert cumulative == sorted(cumulative)


# -- CLI surface -------------------------------------------------------------
class TestFuzzCli:
    def test_mode_fuzz_runs_and_reports_coverage(self, tmp_path, capsys):
        from repro.campaign.cli import main as campaign_main

        out = tmp_path / "report.json"
        code = campaign_main([
            "--app", "rfid_firmware", "--mode", "fuzz", "--runs", "12",
            "--fuzz-rounds", "3", "--seed", "1", "--iterations", "8",
            "--duration", "0.6", "--quiet", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["campaign"]["mode"] == "fuzz"
        assert "coverage" in report
        assert "coverage:" in capsys.readouterr().out

    def test_corpus_requires_fuzz_mode(self, capsys):
        from repro.campaign.cli import main as campaign_main

        code = campaign_main([
            "--app", "rfid_firmware", "--corpus", "corpus.json",
        ])
        assert code == 2


# -- smoke marker ------------------------------------------------------------
@pytest.mark.fuzz_smoke
def test_fuzz_smoke_fibonacci():
    """Three-round fixed-seed fuzz of the Fibonacci app: the CI canary.

    A high-level app exercises the degenerate-but-supported corner —
    no stimulus port, coverage reduced to boot entries — and must still
    produce a complete, deterministic report.
    """
    config = CampaignConfig(
        app="fibonacci", runs=9, seed=7, iterations=12, duration=0.6,
        mode="fuzz", fuzz_rounds=3, workers=1,
    )
    first = run_campaign(config)
    second = run_campaign(config)
    assert render_json(first) == render_json(second)
    assert first["summary"]["runs"] == 9
    assert first["summary"]["errors"] == 0
    assert first["coverage"]["blocks"] >= 1
    assert first["coverage"]["corpus"] >= 1
