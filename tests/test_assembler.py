"""Unit tests for the two-pass assembler."""

import pytest

from repro.mcu.assembler import AssemblyError, assemble, disassemble
from repro.mcu.isa import Mode, Op, decode


def _first_instruction(program):
    image = {program.origin + 2 * i: w for i, w in enumerate(program.words)}
    return decode(lambda a: image.get(a, 0), program.entry)[0]


class TestBasics:
    def test_single_instruction(self):
        program = assemble("mov #5, r4")
        ins = _first_instruction(program)
        assert ins.op is Op.MOV
        assert ins.src.value == 5
        assert ins.dst.reg == 4

    def test_default_origin(self):
        assert assemble("nop").origin == 0xA000

    def test_custom_origin_via_org(self):
        program = assemble("  .org 0xB000\n  nop")
        assert program.origin == 0xB000

    def test_entry_is_start_symbol(self):
        program = assemble("data: .word 7\nstart: nop")
        assert program.entry == program.symbols["start"]
        assert program.entry != program.origin

    def test_entry_defaults_to_origin(self):
        assert assemble("nop").entry == 0xA000

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("; header\n\n   nop ; trailing\n")
        assert len(program.words) == 2

    def test_to_bytes_little_endian(self):
        program = assemble(".word 0x1234")
        assert program.to_bytes() == b"\x34\x12"


class TestSymbols:
    def test_label_resolves_forward(self):
        program = assemble("jmp end\nnop\nend: halt")
        ins = _first_instruction(program)
        assert ins.src.value == program.symbols["end"]

    def test_label_resolves_backward(self):
        program = assemble("loop: nop\njmp loop")
        assert "loop" in program.symbols

    def test_equ_constant(self):
        program = assemble(".equ LIMIT, 10\nmov #LIMIT, r4")
        assert _first_instruction(program).src.value == 10

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere")

    def test_hex_and_binary_literals(self):
        program = assemble("mov #0x10, r4\nmov #0b101, r5")
        assert _first_instruction(program).src.value == 0x10

    def test_negative_immediate_wraps(self):
        program = assemble("mov #-1, r4")
        assert _first_instruction(program).src.value == 0xFFFF


class TestOperandSyntax:
    def test_absolute_with_symbol(self):
        program = assemble("v: .word 0\nstart: mov #1, &v")
        ins = _first_instruction(program)
        assert ins.dst.mode is Mode.ABS
        assert ins.dst.value == program.symbols["v"]

    def test_indexed(self):
        ins = _first_instruction(assemble("mov 4(r5), r6"))
        assert ins.src.mode is Mode.IDX
        assert ins.src.reg == 5
        assert ins.src.value == 4

    def test_indirect(self):
        ins = _first_instruction(assemble("mov @r7, r6"))
        assert ins.src.mode is Mode.IND
        assert ins.src.reg == 7

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mov r20, r1")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError):
            assemble("mov r1")
        with pytest.raises(AssemblyError):
            assemble("nop r1")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("nop\nnop\nbogus r1")
        assert "line 3" in str(excinfo.value)

    def test_aliases(self):
        assert _first_instruction(assemble("jeq 0xA000")).op is Op.JZ
        assert _first_instruction(assemble("jne 0xA000")).op is Op.JNZ
        assert _first_instruction(assemble("br 0xA000")).op is Op.JMP


class TestDirectives:
    def test_word_reserves_and_initialises(self):
        program = assemble("a: .word 1, 2, 3\nstart: nop")
        base = program.symbols["a"]
        index = (base - program.origin) // 2
        assert program.words[index : index + 3] == [1, 2, 3]

    def test_space_reserves_zeroed_bytes(self):
        program = assemble("buf: .space 8\nstart: nop")
        assert program.symbols["start"] - program.symbols["buf"] == 8

    def test_space_must_be_even(self):
        with pytest.raises(AssemblyError):
            assemble(".space 3")

    def test_org_must_be_even(self):
        with pytest.raises(AssemblyError):
            assemble(".org 0xA001")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("; nothing here")

    def test_line_map_points_at_source(self):
        program = assemble("nop\nmov #1, r4")
        lines = sorted(program.line_map.values())
        assert lines == [1, 2]


class TestDisassembler:
    def test_code_only_roundtrip(self):
        source_ops = ["mov #5, r4", "add r4, r5", "push r5", "ret"]
        program = assemble("\n".join(source_ops))
        rendered = [text for _, text in disassemble(program)]
        assert rendered == source_ops

    def test_addresses_are_sequential(self):
        program = assemble("nop\nnop")
        addresses = [addr for addr, _ in disassemble(program)]
        assert addresses == [0xA000, 0xA004]
