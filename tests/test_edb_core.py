"""Integration tests for EDB's core flows: the board + libEDB together.

These exercise the paper's debugging primitives end to end on a live
simulated target: watchpoint tracing, energy-interference-free printf,
keep-alive assertions, energy guards, code/energy/combined breakpoints,
and host memory access through the debug link.
"""

import pytest

from repro import EDB, Simulator, TargetDevice, make_wisp_power_system
from repro.core.board import BreakEvent
from repro.mcu.hlapi import DeviceAPI
from repro.runtime.executor import AssertionHaltSignal
from repro.sim import units


@pytest.fixture
def rig(sim):
    """(device, edb, api-with-libedb) on a charged 47 uF WISP."""
    power = make_wisp_power_system(sim)
    device = TargetDevice(sim, power)
    edb = EDB(sim, device)
    power.charge_until_on()
    api = DeviceAPI(device, edb=edb.libedb())
    return device, edb, api


class TestWatchpoints:
    def test_marker_reaches_monitor(self, rig):
        device, edb, api = rig
        api.edb_watchpoint(2)
        api.edb_watchpoint(2)
        assert edb.monitor.watchpoint_stats(2).hits == 2

    def test_energy_recorded_with_hit(self, rig):
        device, edb, api = rig
        api.edb_watchpoint(1)
        reading = edb.monitor.watchpoint_stats(1).energy_readings[0]
        assert reading == pytest.approx(device.power.vcap, abs=0.01)

    def test_watchpoint_cost_is_tiny(self, rig):
        """Section 4.1.3: marker cost is a single GPIO-holding cycle."""
        device, edb, api = rig
        before = device.cycles_executed
        api.edb_watchpoint(1)
        assert device.cycles_executed - before <= 2


class TestPrintf:
    def test_text_reaches_host(self, rig):
        device, edb, api = rig
        api.edb_printf("hello world")
        assert edb.printf_output[-1][1] == "hello world"

    def test_live_listener(self, rig):
        device, edb, api = rig
        seen = []
        edb.on_printf(seen.append)
        api.edb_printf("live")
        assert seen == ["live"]

    def test_energy_cost_is_small(self, rig):
        """Table 4: EDB printf costs ~0.1% of storage, not percent-scale."""
        device, edb, api = rig
        v0 = device.power.vcap
        api.edb_printf("i=42 m=1")
        v1 = device.power.vcap
        cost = units.cap_energy(47e-6, v0) - units.cap_energy(47e-6, v1)
        assert abs(cost) < 0.01 * device.constants.full_energy

    def test_target_untethered_after(self, rig):
        device, edb, api = rig
        api.edb_printf("x")
        assert not device.power.is_tethered

    def test_many_printfs_do_not_drain(self, rig):
        device, edb, api = rig
        v0 = device.power.vcap
        for i in range(20):
            api.edb_printf(f"line {i}")
        assert device.power.vcap > v0 - 0.1


class TestKeepAliveAssert:
    def test_passing_assert_is_cheap_and_silent(self, rig):
        device, edb, api = rig
        before = device.cycles_executed
        api.edb_assert(True, "fine")
        assert device.cycles_executed - before <= 3
        assert edb.board.break_events == []

    def test_failing_assert_tethers_and_halts(self, rig):
        device, edb, api = rig
        with pytest.raises(AssertionHaltSignal):
            api.edb_assert(False, "tail broken")
        assert device.power.is_tethered  # keep-alive holds the target up

    def test_session_opens_with_live_state(self, rig):
        device, edb, api = rig
        address = api.nv_var("evidence")
        api.store_u16(address, 0xDEAD)
        captured = {}

        def handler(event, session):
            captured["value"] = session.read_u16(address)
            captured["reason"] = event.reason

        edb.on_assert(handler)
        with pytest.raises(AssertionHaltSignal):
            api.edb_assert(False, "inspect me")
        assert captured == {"value": 0xDEAD, "reason": "assert"}

    def test_release_drops_tether(self, rig):
        device, edb, api = rig
        with pytest.raises(AssertionHaltSignal):
            api.edb_assert(False, "x")
        edb.release()
        assert not device.power.is_tethered


class TestEnergyGuards:
    def test_guarded_work_is_free(self, rig):
        device, edb, api = rig
        device.power.source.enabled = False
        v0 = device.power.vcap
        with api.edb_energy_guard():
            api.compute(4_000_000)  # one full second of work
        # The guard restores the level to within millivolts.
        assert abs(device.power.vcap - v0) < 0.02

    def test_unguarded_same_work_browns_out(self, rig):
        from repro.mcu.device import PowerFailure

        device, edb, api = rig
        device.power.source.enabled = False
        with pytest.raises(PowerFailure):
            api.compute(4_000_000)

    def test_tethered_inside_guard(self, rig):
        device, edb, api = rig
        with api.edb_energy_guard():
            assert device.power.is_tethered
        assert not device.power.is_tethered

    def test_nested_guards_restore_once(self, rig):
        device, edb, api = rig
        records_before = len(edb.save_restore_records)
        with api.edb_energy_guard():
            with api.edb_energy_guard():
                api.compute(1000)
        assert len(edb.save_restore_records) == records_before + 1

    def test_guard_records_save_restore(self, rig):
        device, edb, api = rig
        with api.edb_energy_guard():
            api.compute(100)
        record = edb.save_restore_records[-1]
        # Discharge-only restore: lands at or just below the saved level.
        assert record.delta_v_true < 0.01


class TestCodeBreakpoints:
    def test_unarmed_breakpoint_is_nearly_free(self, rig):
        device, edb, api = rig
        before = device.cycles_executed
        api.edb_breakpoint(1)
        assert device.cycles_executed - before <= 4
        assert edb.board.break_events == []

    def test_armed_breakpoint_opens_session(self, rig):
        device, edb, api = rig
        edb.break_at(1)
        hits = []
        edb.on_break(lambda event, session: hits.append(event.reason))
        api.edb_breakpoint(1)
        assert hits == ["breakpoint"]

    def test_target_resumes_after_service(self, rig):
        device, edb, api = rig
        edb.break_at(1)
        api.edb_breakpoint(1)
        assert not device.power.is_tethered
        api.compute(100)  # still alive and running

    def test_session_can_modify_memory(self, rig):
        device, edb, api = rig
        address = api.nv_var("patch")
        api.store_u16(address, 1)
        edb.break_at(7)
        edb.on_break(lambda event, session: session.write_u16(address, 99))
        api.edb_breakpoint(7)
        assert api.load_u16(address) == 99

    def test_combined_breakpoint_gates_on_energy(self, rig):
        device, edb, api = rig
        edb.break_combined(1, threshold_v=2.0)
        hits = []
        edb.on_break(lambda event, session: hits.append(event.vcap))
        api.edb_breakpoint(1)  # vcap ~2.4: no trigger
        assert hits == []
        device.power.capacitor.voltage = 1.95
        api.edb_breakpoint(1)
        assert len(hits) == 1
        assert hits[0] <= 2.0


class TestEnergyBreakpoints:
    def test_fires_when_level_crosses_threshold(self, rig):
        device, edb, api = rig
        device.power.source.enabled = False
        edb.break_on_energy(2.2, one_shot=True)
        hits = []
        edb.on_break(lambda event, session: hits.append(event))
        for _ in range(3000):
            api.compute(400)
            if hits:
                break
        assert len(hits) == 1
        assert hits[0].reason == "energy_breakpoint"
        assert hits[0].vcap <= 2.25

    def test_restores_level_and_resumes(self, rig):
        device, edb, api = rig
        device.power.source.enabled = False
        edb.break_on_energy(2.2, one_shot=True)
        for _ in range(3000):
            api.compute(400)
            if edb.board.break_events:
                break
        record = edb.save_restore_records[-1]
        # Trim-up restore: Table 3's small positive discrepancy.
        assert -0.005 < record.delta_v_true < 0.15


class TestHostMemoryAccess:
    def test_read_write_roundtrip_through_link(self, rig):
        device, edb, api = rig
        address = api.nv_var("blob", 8)
        edb.board.energy.begin_task()
        edb.board.write_target_memory(address, b"\x11\x22\x33\x44")
        data = edb.board.read_target_memory(address, 4)
        edb.board.energy.end_task()
        assert data == b"\x11\x22\x33\x44"

    def test_link_traffic_costs_target_cycles(self, rig):
        device, edb, api = rig
        edb.board.energy.begin_task()
        before = device.cycles_executed
        edb.board.read_target_memory(api.nv_var("x"), 2)
        assert device.cycles_executed > before
        edb.board.energy.end_task()


class TestInterference:
    def test_passive_attachment_injects_nanoamps(self, rig):
        device, edb, api = rig
        api.compute(100)  # let the leakage updater run
        assert abs(device.power.injected_current) < 2 * units.UA

    def test_interference_report_covers_all_connections(self, rig):
        _, edb, _ = rig
        report = edb.interference_report(trials=10)
        assert len(report) == 12

    def test_detach_zeroes_injection(self, rig):
        device, edb, api = rig
        edb.detach()
        assert device.power.injected_current == 0.0


class TestActiveManagerEdgeCases:
    def test_end_without_begin_raises(self, rig):
        device, edb, api = rig
        with pytest.raises(RuntimeError):
            edb.board.energy.end_task()

    def test_depth_tracks_nesting(self, rig):
        device, edb, api = rig
        manager = edb.board.energy
        assert manager.depth == 0
        manager.begin_task()
        manager.begin_task()
        assert manager.depth == 2
        manager.end_task()
        assert manager.depth == 1
        assert device.power.is_tethered  # still inside the outer bracket
        manager.end_task()
        assert manager.depth == 0
        assert not device.power.is_tethered

    def test_tether_time_accounted(self, rig):
        device, edb, api = rig
        manager = edb.board.energy
        manager.begin_task()
        device.execute_cycles(40_000)  # 10 ms tethered
        manager.end_task()
        assert manager.tether_time_total >= 10e-3

    def test_release_is_idempotent(self, rig):
        device, edb, api = rig
        edb.release()
        edb.release()
        assert not device.power.is_tethered


class TestDivergenceContext:
    def test_watchpoint_hits_without_tracing(self, rig):
        """Hit counts come from the monitor's aggregate stats.

        The campaign's capture leg (and any passive-mode attach) counts
        every decoded marker pulse in ``monitor.watchpoints`` whether or
        not the "watchpoints" *stream* is being traced; deriving counts
        from the stream reads zero whenever tracing was off.
        """
        device, edb, api = rig
        api.edb_watchpoint(3)
        api.edb_watchpoint(3)
        api.edb_watchpoint(7)
        context = edb.divergence_context()
        assert context["watchpoint_hits"] == {"3": 2, "7": 1}

    def test_hits_match_trace_derived_counts_when_traced(self, rig):
        """With tracing on from the start, both derivations agree."""
        device, edb, api = rig
        edb.trace("watchpoints")
        for _ in range(4):
            api.edb_watchpoint(1)
        context = edb.divergence_context()
        stream_counts = {}
        for event in edb.monitor.stream_events("watchpoints"):
            key = str(event.value)
            stream_counts[key] = stream_counts.get(key, 0) + 1
        assert context["watchpoint_hits"] == stream_counts == {"1": 4}


class TestEnergySamplingListener:
    def test_arm_energy_sampling_is_idempotent(self, rig):
        """Arming once per energy breakpoint must not stack listeners."""
        device, edb, api = rig
        edb.break_on_energy(2.0)
        edb.break_on_energy(1.9)
        edb.break_on_energy(2.1)
        board = edb.board
        count = sum(
            1
            for listener in edb.monitor.listeners
            if listener == board._energy_sample_listener
        )
        assert count == 1
