"""Chaos suite: the host-fault resilience layer end to end.

Every test here injects a *host* fault — torn or bit-flipped journal
files, a disk that fills mid-campaign, snapshots that rot in memory,
corrupted / truncated / dropped / stalled debug-server wire traffic —
and asserts the recovery contract:

- a campaign that survived injected host faults produces a report
  **byte-identical** to a fault-free run (including the pinned golden
  report in ``tests/data/campaign_golden.json``);
- corrupted journal lines are quarantined and their runs re-executed,
  never surfaced as raw ``JSONDecodeError``;
- a corrupted snapshot is refused at restore time and the affected
  runs silently fall back to the honest from-reset path;
- no wire input kills the debug server or leaks a session, and
  transport failures surface to the client as typed errors
  (``SessionLost``), never hangs.

All injected faults are seed-derived (``repro.resilience.plan``), so a
chaos failure reproduces from its seed like any other campaign bug.
The ``chaos_smoke`` marker names the fixed-seed subset CI runs as its
own step.
"""

from __future__ import annotations

import io
import json
import random
import shutil
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro import Simulator
from repro.campaign import (
    CampaignConfig,
    CampaignWarning,
    run_campaign,
    scan_journal,
)
from repro.campaign import forking, scheduler
from repro.campaign.report import render_json
from repro.debug import errors
from repro.debug.client import DebugClient, DebugRpcError
from repro.debug.errors import SessionLost
from repro.debug.server import (
    MAX_BATCH_ITEMS,
    DebugTCPServer,
    handle_line,
    serve_stdio,
)
from repro.debug.service import DebugService
from repro.resilience import (
    ChaosJournalWriter,
    ChaosTransport,
    HostFaultPlan,
    RpcFaultPlan,
    chaos_capture,
    chaos_client,
    corrupt_journal,
    corrupt_snapshot,
    plan_host_faults,
    tear_file,
    tear_journal,
)
from repro.sim.rng import derive_seed
from repro.snapshot import SnapshotIntegrityError, capture, restore
from repro.testing import make_fast_target

pytestmark = pytest.mark.chaos

#: The pinned campaign report (and the config that renders it) —
#: same pair ``tests/test_hotpath.py`` gates on; the chaos golden test
#: must reproduce the identical bytes *through* injected host faults.
GOLDEN_PATH = Path(__file__).parent / "data" / "campaign_golden.json"
GOLDEN_CONFIG = CampaignConfig(
    app="linked_list",
    runs=16,
    seed=20260806,
    iterations=16,
    duration=0.6,
    workers=1,
    shrink=True,
    shrink_limit=2,
)

#: Cheap campaign every byte-identity test diffs against (same shape as
#: the supervision suite's resume config).
CHAOS_CONFIG = CampaignConfig(
    app="linked_list", runs=8, seed=99, iterations=8, duration=0.4,
    shrink=False, workers=1, chunk=2,
)


@pytest.fixture(scope="module")
def chaos_baseline() -> str:
    """The fault-free report bytes for :data:`CHAOS_CONFIG`."""
    return render_json(run_campaign(CHAOS_CONFIG))


@pytest.fixture(scope="module")
def journaled_campaign(tmp_path_factory, chaos_baseline) -> Path:
    """A complete, healthy journal of :data:`CHAOS_CONFIG` (copy before
    damaging)."""
    path = tmp_path_factory.mktemp("journal") / "campaign.jsonl"
    report = run_campaign(CHAOS_CONFIG, journal_path=str(path))
    assert render_json(report) == chaos_baseline
    return path


def damaged_copy(journal: Path, tmp_path: Path, name: str) -> Path:
    copy = tmp_path / name
    shutil.copy(journal, copy)
    return copy


# -- fault plans --------------------------------------------------------------
class TestHostFaultPlan:
    @pytest.mark.chaos_smoke
    def test_same_seed_same_plan(self):
        assert plan_host_faults(7) == plan_host_faults(7)
        assert plan_host_faults(7) != plan_host_faults(8)

    def test_axis_subset_does_not_shift_other_draws(self):
        full = plan_host_faults(42)
        only_tear = plan_host_faults(42, axes=("journal_tear",))
        assert only_tear.journal_tear_frac == full.journal_tear_frac
        assert only_tear.journal_fail_after is None
        assert only_tear.snapshot_period is None
        assert only_tear.rpc.drop_request is None

    def test_disabled_axes_are_inert(self):
        plan = plan_host_faults(3, axes=())
        assert plan.journal_tear_frac is None
        assert plan.journal_flip_frac is None
        assert plan.journal_fail_after is None
        assert plan.snapshot_period is None
        assert plan.rpc == RpcFaultPlan(
            corrupt_byte_frac=plan.rpc.corrupt_byte_frac,
            corrupt_bit=plan.rpc.corrupt_bit,
            truncate_frac=plan.rpc.truncate_frac,
            stall_s=plan.rpc.stall_s,
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown host-fault axes"):
            plan_host_faults(1, axes=("journal_tear", "meteor_strike"))

    def test_plan_is_json_ready(self):
        json.dumps(plan_host_faults(5).to_dict())


# -- journal damage -----------------------------------------------------------
class TestJournalChaos:
    @pytest.mark.chaos_smoke
    @pytest.mark.parametrize("frac", [0.15, 0.5, 0.9])
    def test_resume_after_tear_is_byte_identical(
        self, frac, tmp_path, journaled_campaign, chaos_baseline
    ):
        copy = damaged_copy(journaled_campaign, tmp_path, "torn.jsonl")
        tear_journal(copy, frac)
        resumed = run_campaign(CHAOS_CONFIG, resume_from=str(copy))
        assert render_json(resumed) == chaos_baseline

    @pytest.mark.parametrize("frac,bit", [(0.2, 0), (0.5, 3), (0.85, 7)])
    def test_resume_after_bitflip_is_byte_identical(
        self, frac, bit, tmp_path, journaled_campaign, chaos_baseline
    ):
        copy = damaged_copy(journaled_campaign, tmp_path, "flipped.jsonl")
        corrupt_journal(copy, frac, bit)
        resumed = run_campaign(CHAOS_CONFIG, resume_from=str(copy))
        assert render_json(resumed) == chaos_baseline

    def test_random_damage_property(
        self, tmp_path, journaled_campaign, chaos_baseline
    ):
        """Seeded property test: kill the journal at a random byte —
        truncating or corrupting — and resume; bytes must match."""
        rng = random.Random(derive_seed(1234, "journal-damage"))
        for round_no in range(4):
            copy = damaged_copy(
                journaled_campaign, tmp_path, f"damaged{round_no}.jsonl"
            )
            frac = rng.uniform(0.02, 0.98)
            if rng.random() < 0.5:
                tear_journal(copy, frac)
            else:
                corrupt_journal(copy, frac, rng.randint(0, 7))
            resumed = run_campaign(CHAOS_CONFIG, resume_from=str(copy))
            assert render_json(resumed) == chaos_baseline, (
                f"round {round_no}: frac={frac}"
            )

    def test_interior_corruption_quarantines_with_warning(
        self, tmp_path, journaled_campaign
    ):
        copy = damaged_copy(journaled_campaign, tmp_path, "interior.jsonl")
        corrupt_journal(copy, 0.3, 2)
        with pytest.warns(CampaignWarning, match="quarantined"):
            scan = scan_journal(copy, CHAOS_CONFIG)
        assert scan.quarantined or scan.truncated_tail
        # Never a raw JSONDecodeError, and the survivors stay valid.
        for record in scan.records.values():
            assert 0 <= record["index"] < CHAOS_CONFIG.runs

    def test_quarantine_names_the_lost_runs(
        self, tmp_path, journaled_campaign
    ):
        """A CRC-failed (but parseable) line reports which runs it took."""
        copy = damaged_copy(journaled_campaign, tmp_path, "crc.jsonl")
        lines = copy.read_text().splitlines(keepends=True)
        entry = json.loads(lines[2])
        entry["crc"] ^= 1  # payload intact, checksum wrong
        lines[2] = json.dumps(entry, sort_keys=True) + "\n"
        copy.write_text("".join(lines))
        with pytest.warns(CampaignWarning):
            scan = scan_journal(copy, CHAOS_CONFIG)
        assert scan.quarantined_indices == entry["data"]["indices"]
        assert all(
            i not in scan.records for i in entry["data"]["indices"]
        )

    def test_disk_full_campaign_finishes_in_memory(
        self, tmp_path, chaos_baseline
    ):
        """ENOSPC mid-campaign: warning, full in-memory report, and the
        torn journal still resumes to the same bytes."""
        path = tmp_path / "enospc.jsonl"
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                scheduler,
                "JournalWriter",
                lambda p, c, fresh=True, fsync=False: ChaosJournalWriter(
                    p, c, fail_after=2, fresh=fresh, fsync=fsync
                ),
            )
            with pytest.warns(CampaignWarning, match="journaling disabled"):
                report = run_campaign(CHAOS_CONFIG, journal_path=str(path))
        assert render_json(report) == chaos_baseline
        # The file ends in torn debris; resume quarantines it and
        # re-executes every run the journal never recorded.
        resumed = run_campaign(CHAOS_CONFIG, resume_from=str(path))
        assert render_json(resumed) == chaos_baseline

    def test_fsync_mode_produces_identical_journals(
        self, tmp_path, journaled_campaign
    ):
        path = tmp_path / "fsynced.jsonl"
        run_campaign(CHAOS_CONFIG, journal_path=str(path), journal_fsync=True)
        assert path.read_bytes() == journaled_campaign.read_bytes()

    def test_tear_file_reports_offset(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789")
        assert tear_file(path, 0.5) == 5
        assert path.read_bytes() == b"01234"


# -- snapshot rot -------------------------------------------------------------
class TestSnapshotChaos:
    def test_restore_refuses_a_rotted_snapshot(self):
        sim = Simulator(seed=5)
        target = make_fast_target(sim)
        pristine = capture(target)
        rotted = capture(target)
        where = corrupt_snapshot(rotted, random.Random(1))
        assert where["region"] in rotted.memory_pages
        with pytest.raises(SnapshotIntegrityError):
            restore(target, rotted)
        # The device was not touched: a fresh capture still matches the
        # pristine snapshot page for page.
        after = capture(target)
        assert after.memory_pages == pristine.memory_pages
        assert after.cpu_registers == pristine.cpu_registers

    def test_campaign_survives_snapshot_rot(
        self, monkeypatch, chaos_baseline
    ):
        """Every other snapshot rots; the fork engine falls back to
        from-reset execution and the report does not move a byte."""
        plan = HostFaultPlan(
            seed=99, axes=("snapshot_corrupt",), snapshot_period=2
        )
        monkeypatch.setattr(forking, "capture", chaos_capture(plan))
        assert render_json(run_campaign(CHAOS_CONFIG)) == chaos_baseline

    def test_chaos_capture_passthrough_when_disabled(self):
        plan = HostFaultPlan(seed=1, axes=())
        sim = Simulator(seed=6)
        target = make_fast_target(sim)
        wrapped = chaos_capture(plan)
        for _ in range(4):  # no period -> never corrupts
            restore(target, wrapped(target))


# -- wire hardening -----------------------------------------------------------
@pytest.fixture
def service():
    svc = DebugService()
    yield svc
    svc.close_all()


@pytest.fixture
def tcp_port(service):
    server = DebugTCPServer(("127.0.0.1", 0), service, max_request_bytes=4096)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address[1]
    server.shutdown()
    server.server_close()


PING = {"jsonrpc": "2.0", "id": 1, "method": "debug.ping"}


class TestWireHardening:
    @pytest.mark.chaos_smoke
    def test_oversized_tcp_line_is_bounded(self, service, tcp_port):
        client = DebugClient.connect_tcp("127.0.0.1", tcp_port)
        try:
            client._send_line('{"pad": "' + "x" * 10000 + '"}\n')
            response = json.loads(client._recv_line())
            assert response["error"]["code"] == errors.INVALID_REQUEST
            assert "exceeds" in response["error"]["message"]
            # The oversized line was drained: framing recovered.
            assert client.ping()["pong"] is True
        finally:
            client.close()

    def test_oversized_stdio_line_is_bounded(self):
        requests = '{"pad": "' + "x" * 2000 + '"}\n' + json.dumps(PING) + "\n"
        out = io.StringIO()
        serve_stdio(
            DebugService(),
            io.StringIO(requests),
            out,
            max_request_bytes=256,
        )
        first, second = out.getvalue().splitlines()
        assert json.loads(first)["error"]["code"] == errors.INVALID_REQUEST
        assert json.loads(second)["result"]["pong"] is True

    def test_oversized_batch_rejected(self, service):
        batch = [dict(PING, id=i) for i in range(MAX_BATCH_ITEMS + 1)]
        response = json.loads(handle_line(service, json.dumps(batch) + "\n"))
        assert response["error"]["code"] == errors.INVALID_REQUEST
        assert str(MAX_BATCH_ITEMS) in response["error"]["message"]

    def test_batch_at_the_limit_is_served(self, service):
        batch = [dict(PING, id=i) for i in range(MAX_BATCH_ITEMS)]
        responses = json.loads(handle_line(service, json.dumps(batch) + "\n"))
        assert len(responses) == MAX_BATCH_ITEMS


# -- session budgets ----------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestSessionReaping:
    def make(self, **kwargs) -> tuple[DebugService, FakeClock]:
        clock = FakeClock()
        return DebugService(clock=clock.now, **kwargs), clock

    def test_ttl_reaps_even_busy_sessions(self):
        svc, clock = self.make(session_ttl_s=10.0)
        sid = svc.dispatch("session.create", {"app": "fibonacci"})["session"]
        clock.advance(9.0)
        svc.dispatch("session.status", {"session": sid})  # busy, still dies
        clock.advance(2.0)
        svc.dispatch("debug.ping", {})
        assert svc.sessions == {}
        with pytest.raises(errors.SessionNotFound, match="expired"):
            svc.dispatch("session.status", {"session": sid})
        svc.close_all()

    def test_idle_budget_resets_on_use(self):
        svc, clock = self.make(session_idle_s=10.0)
        sid = svc.dispatch("session.create", {"app": "fibonacci"})["session"]
        clock.advance(8.0)
        svc.dispatch("session.status", {"session": sid})  # refreshes
        clock.advance(9.0)
        assert svc.dispatch("session.status", {"session": sid})["session"] == sid
        clock.advance(11.0)
        svc.dispatch("debug.ping", {})
        assert sid in svc.expired
        svc.close_all()

    def test_no_budgets_means_no_reaping(self):
        svc, clock = self.make()
        sid = svc.dispatch("session.create", {"app": "fibonacci"})["session"]
        clock.advance(1e9)
        svc.dispatch("debug.ping", {})
        assert sid in svc.sessions
        svc.close_all()

    def test_expired_memory_is_bounded(self):
        svc, clock = self.make(session_ttl_s=1.0)
        from repro.debug.service import EXPIRED_MEMORY

        for _ in range(EXPIRED_MEMORY + 5):
            svc.dispatch("session.create", {"app": "fibonacci"})
            clock.advance(2.0)
            svc.dispatch("debug.ping", {})
        assert len(svc.expired) == EXPIRED_MEMORY
        svc.close_all()


# -- transport chaos ----------------------------------------------------------
class TestTransportChaos:
    def test_corrupt_request_never_kills_the_server(self, service, tcp_port):
        plan = RpcFaultPlan(
            corrupt_request=2, corrupt_byte_frac=0.5, corrupt_bit=4
        )
        with DebugClient.connect_tcp("127.0.0.1", tcp_port) as client:
            wrapped = chaos_client(client, plan)
            assert wrapped.ping()["pong"] is True
            try:
                wrapped.ping()  # damaged on the wire
            except (DebugRpcError, ConnectionError):
                pass  # either outcome is legal; dying is not
        with DebugClient.connect_tcp("127.0.0.1", tcp_port) as fresh:
            assert fresh.ping()["pong"] is True
            assert fresh.list_sessions() == []  # nothing leaked

    def test_truncated_request_merges_then_framing_recovers(
        self, service, tcp_port
    ):
        plan = RpcFaultPlan(truncate_request=1, truncate_frac=0.4)
        client = DebugClient.connect_tcp("127.0.0.1", tcp_port)
        try:
            t = ChaosTransport(
                client._send_line, client._recv_line, client._close, plan
            )
            t.send(json.dumps(dict(PING, id=1)) + "\n")  # sent headless
            t.send(json.dumps(dict(PING, id=2)) + "\n")  # completes the line
            merged = json.loads(t.recv())
            assert merged["error"]["code"] == errors.PARSE_ERROR
            t.send(json.dumps(dict(PING, id=3)) + "\n")
            assert json.loads(t.recv())["id"] == 3
        finally:
            client.close()

    def test_dropped_connection_is_a_typed_terminal_error(
        self, service, tcp_port
    ):
        plan = RpcFaultPlan(drop_request=2)
        client = DebugClient.connect_tcp("127.0.0.1", tcp_port)
        wrapped = chaos_client(client, plan)
        session = wrapped.create_session(app="fibonacci", seed=1)
        with pytest.raises(SessionLost):
            wrapped.call("session.status", session=session.id)
        with pytest.raises(SessionLost):  # dead clients fail fast
            wrapped.ping()
        # The server is untouched; a reconnecting client sees the
        # orphaned session and can clean it up.
        with DebugClient.connect_tcp("127.0.0.1", tcp_port) as fresh:
            listed = fresh.list_sessions()
            assert [s["session"] for s in listed] == [session.id]
            fresh.call("session.close", session=session.id)

    def test_dropped_client_session_is_reaped_with_clean_error(self):
        """The satellite scenario: drop mid-conversation, the server
        reaps the abandoned session, the reconnecting client gets a
        clean 'expired' error instead of a wedge."""
        clock = FakeClock()
        svc = DebugService(session_idle_s=30.0, clock=clock.now)
        server = DebugTCPServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            client = DebugClient.connect_tcp("127.0.0.1", port)
            wrapped = chaos_client(client, RpcFaultPlan(drop_request=2))
            session = wrapped.create_session(app="fibonacci", seed=1)
            with pytest.raises(SessionLost):
                wrapped.call("session.status", session=session.id)
            clock.advance(31.0)
            with DebugClient.connect_tcp("127.0.0.1", port) as fresh:
                assert fresh.ping()["pong"] is True  # triggers the reap
                assert fresh.list_sessions() == []
                with pytest.raises(DebugRpcError) as info:
                    fresh.call("session.status", session=session.id)
                assert info.value.code == errors.SESSION_NOT_FOUND
                assert "expired" in info.value.message
        finally:
            server.shutdown()
            server.server_close()
            svc.close_all()

    def test_stalled_server_times_out_as_session_lost(self):
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            client = DebugClient.connect_tcp(
                "127.0.0.1", silent.getsockname()[1], timeout=0.3, retries=0
            )
            with pytest.raises(SessionLost):
                client.ping()
            with pytest.raises(SessionLost):
                client.ping()  # still dead, still fast
        finally:
            silent.close()

    def test_connect_retries_with_exponential_backoff(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        sleeps: list[float] = []
        with pytest.raises(OSError):
            DebugClient.connect_tcp(
                "127.0.0.1",
                dead_port,
                timeout=0.2,
                retries=3,
                backoff_s=0.01,
                sleep=sleeps.append,
            )
        assert sleeps == [0.01, 0.02, 0.04]

    def test_stall_axis_delays_without_breaking(self, service, tcp_port):
        plan = RpcFaultPlan(stall_request=1, stall_s=0.01)
        stalls: list[float] = []
        client = DebugClient.connect_tcp("127.0.0.1", tcp_port)
        try:
            t = ChaosTransport(
                client._send_line,
                client._recv_line,
                client._close,
                plan,
                sleep=stalls.append,
            )
            t.send(json.dumps(PING) + "\n")
            assert json.loads(t.recv())["result"]["pong"] is True
            assert stalls == [0.01]
        finally:
            client.close()


# -- graceful shutdown --------------------------------------------------------
def _server_env() -> dict[str, str]:
    import os

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.mark.debug_smoke
class TestGracefulShutdown:
    def test_sigterm_drains_the_tcp_server(self):
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.debug.server",
                "--port", "0", "--session-idle", "60",
            ],
            stderr=subprocess.PIPE,
            env=_server_env(),
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "listening on" in banner, banner
            port = int(banner.rsplit(":", 1)[1])
            with DebugClient.connect_tcp("127.0.0.1", port) as client:
                client.create_session(app="fibonacci", seed=1)
                process.send_signal(signal.SIGTERM)
                assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_sigterm_drains_the_stdio_server(self):
        client = DebugClient.spawn_stdio(env=_server_env())
        try:
            assert client.ping()["pong"] is True
            client.process.send_signal(signal.SIGTERM)
            assert client.process.wait(timeout=15) == 0
        finally:
            client.close()


# -- the golden-bytes chaos smoke --------------------------------------------
@pytest.mark.chaos_smoke
class TestChaosGolden:
    def test_chaos_campaign_matches_golden_bytes(self, tmp_path, monkeypatch):
        """The acceptance gate: a campaign run under seed-derived host
        faults — snapshots rotting, the journal's disk filling up, the
        survivor then torn — still reproduces the pinned golden report
        byte for byte, both live and on resume."""
        golden = GOLDEN_PATH.read_text()
        plan = plan_host_faults(
            GOLDEN_CONFIG.seed,
            axes=("journal_tear", "journal_enospc", "snapshot_corrupt"),
        )
        monkeypatch.setattr(forking, "capture", chaos_capture(plan))
        path = tmp_path / "golden_chaos.jsonl"
        # The golden campaign journals 5 lines (header + 4 auto-sized
        # chunks); fold the plan's draw into that window so the
        # injected ENOSPC actually fires.
        fail_after = 1 + plan.journal_fail_after % 4
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                scheduler,
                "JournalWriter",
                lambda p, c, fresh=True, fsync=False: ChaosJournalWriter(
                    p, c, fail_after, fresh=fresh, fsync=fsync
                ),
            )
            with pytest.warns(CampaignWarning, match="journaling disabled"):
                report = run_campaign(GOLDEN_CONFIG, journal_path=str(path))
        assert render_json(report) == golden
        tear_journal(path, plan.journal_tear_frac)
        resumed = run_campaign(GOLDEN_CONFIG, resume_from=str(path))
        assert render_json(resumed) == golden
